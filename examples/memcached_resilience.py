#!/usr/bin/env python3
"""The paper's flagship scenario: a Memcached-like service under attack.

A mixed population (benign clients + an attacker sending exploit payloads)
drives the same request trace against two builds of the server:

* SDRaD build — each connection's parser runs in an isolated domain;
* baseline build — no isolation, mitigations abort the process.

Run:  python examples/memcached_resilience.py
"""

from repro.apps.memcached_server import IsolationMode, MemcachedServer
from repro.sdrad.policy import ProcessCrashed
from repro.sdrad.runtime import SdradRuntime
from repro.sim.rng import RngFactory
from repro.sustainability.report import format_seconds, format_table
from repro.workloads.clients import build_population
from repro.workloads.traces import generate_trace
from repro.workloads.zipf import Keyspace, KeyValueWorkload

N_REQUESTS = 500


def build_trace():
    factory = RngFactory(2023)
    keyspace = Keyspace(150)
    clients = build_population(
        5,
        1,
        lambda cid, rng: KeyValueWorkload(keyspace, 0.99, rng),
        factory,
        attack_fraction=0.3,
    )
    return generate_trace(clients, N_REQUESTS, factory)


def replay(trace, isolation: IsolationMode):
    runtime = SdradRuntime()
    server = MemcachedServer(runtime, isolation=isolation)
    for client in trace.clients:
        server.connect(client)
    served = 0
    crashed_at = None
    for entry in trace:
        try:
            response = server.handle(entry.client_id, entry.payload)
        except ProcessCrashed as crash:
            crashed_at = entry.seq
            print(f"    !! process crashed at request {entry.seq}: "
                  f"{crash.report.mechanism.value}")
            break
        if not response.startswith(b"SERVER_ERROR"):
            served += 1
    return server, served, crashed_at


def main() -> None:
    trace = build_trace()
    print(f"trace: {len(trace)} requests from {len(trace.clients)} clients, "
          f"{trace.malicious_count} attack payloads\n")

    rows = []
    for isolation in (IsolationMode.PER_CONNECTION, IsolationMode.NONE):
        print(f"--- replaying against isolation={isolation.value} ---")
        server, served, crashed_at = replay(trace, isolation)
        rows.append(
            (
                isolation.value,
                "survived" if crashed_at is None else f"crashed @ {crashed_at}",
                served,
                server.metrics.rewinds,
                format_seconds(server.metrics.rewinds * server.runtime.cost.rewind),
                dict(server.metrics.per_client_faults),
            )
        )
        print(f"    served {served}/{len(trace)}; "
              f"rewinds={server.metrics.rewinds}\n")

    print(format_table(
        ("build", "outcome", "served", "rewinds", "total recovery", "faults by"),
        rows,
    ))
    print(
        "\nThe SDRaD build absorbs every exploit with microsecond rewinds and"
        "\nkeeps serving; the baseline dies at the first detected corruption."
    )


if __name__ == "__main__":
    main()
