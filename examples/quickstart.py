#!/usr/bin/env python3
"""Quickstart: domains, faults and rewind-and-discard in ten minutes.

Run:  python examples/quickstart.py
"""

from repro.sdrad import DomainFlags, SdradRuntime
from repro.sustainability.report import format_seconds


def main() -> None:
    # The runtime owns a simulated address space with MPK-style protection
    # keys, a virtual clock, and the SDRaD recovery machinery.
    runtime = SdradRuntime()

    # Create an isolated domain: its heap and stack live behind a dedicated
    # protection key, and faults inside it rewind instead of crashing.
    domain = runtime.domain_init(flags=DomainFlags.RETURN_TO_PARENT)
    print(f"created {domain!r}")

    # --- 1. normal execution -------------------------------------------
    def work(handle):
        addr = handle.malloc(64)
        handle.store(addr, b"hello, isolated world")
        return handle.load(addr, 21)

    result = runtime.execute(domain.udi, work)
    print(f"clean call  -> ok={result.ok} value={result.value!r}")

    # --- 2. a buffer overflow, caught by the stack canary ---------------
    def smash(handle):
        frame = handle.push_frame("vulnerable_function")
        buffer = frame.alloca(16)
        frame.write_buffer(buffer, b"A" * 32)  # 16 bytes too many
        handle.pop_frame(frame)

    result = runtime.execute(domain.udi, smash)
    print(f"stack smash -> ok={result.ok}")
    print(f"  detected by : {result.fault.mechanism.value}")
    print(f"  recovery    : {format_seconds(result.recovery_time)} "
          "(the paper's 3.5 µs rewind)")

    # --- 3. a wild write into another compartment, caught by MPK --------
    def wild_write(handle):
        handle.store(runtime.root.heap_base, b"corruption attempt")

    result = runtime.execute(domain.udi, wild_write)
    print(f"wild write  -> ok={result.ok}")
    print(f"  detected by : {result.fault.mechanism.value}")

    # --- 4. the domain is pristine again ---------------------------------
    result = runtime.execute(domain.udi, work)
    print(f"after rewind-> ok={result.ok} (domain discarded and reusable)")

    # --- 5. what happened, when ------------------------------------------
    print("\nevent trace:")
    for event in runtime.tracer.events:
        print(f"  {event}")
    print(f"\ntotal virtual time: {format_seconds(runtime.clock.now)}")


if __name__ == "__main__":
    main()
