#!/usr/bin/env python3
"""Operations-scale extensions: worker clusters, key virtualisation,
quarantine.

Three deployment questions the paper's §II/§IV raise but leave open, each
answered by an extension module of this reproduction:

1. "Isn't multi-processing already enough?"  — a 4-worker cluster under
   attack, with and without SDRaD (``repro.apps.cluster``).
2. "MPK only has 16 keys — what about 1000 connections?" — libmpk-style
   key virtualisation (``repro.sdrad.keyvirt``).
3. "What stops an attacker spinning the rewind loop?" — the fault watchdog
   (``repro.sdrad.watchdog``).

Run:  python examples/cluster_operations.py
"""

from repro.apps.cluster import NginxCluster
from repro.apps.memcached_server import IsolationMode, MemcachedServer
from repro.sdrad.constants import DomainFlags
from repro.sdrad.runtime import SdradRuntime
from repro.sdrad.watchdog import FaultWatchdog, WatchdogConfig
from repro.sustainability.report import format_seconds

HTTP_ATTACK = b"GET /" + b"A" * 1100 + b" HTTP/1.1\r\nHost: x\r\n\r\n"
HTTP_GOOD = b"GET / HTTP/1.1\r\nHost: x\r\n\r\n"
MC_ATTACK = b"get " + b"K" * 270 + b"\r\n"


def worker_cluster() -> None:
    print("== 1. multi-process blast radius ==")
    for isolation in (IsolationMode.NONE, IsolationMode.PER_CONNECTION):
        cluster = NginxCluster(workers=4, isolation=isolation)
        clients = [f"c{i}" for i in range(12)]
        for client in clients:
            cluster.connect(client)
        cluster.handle(clients[0], HTTP_ATTACK)
        ok = sum(
            cluster.handle(c, HTTP_GOOD).startswith(b"HTTP/1.1 200")
            for c in clients[1:]
        )
        print(
            f"  {isolation.value:15s}: worker crashes={cluster.metrics.worker_crashes}, "
            f"{ok}/11 bystanders served during the incident"
        )
    print()


def key_virtualisation() -> None:
    print("== 2. scaling past 15 domains (key virtualisation) ==")
    runtime = SdradRuntime(key_virtualization=True)
    domains = [
        runtime.domain_init(
            flags=DomainFlags.RETURN_TO_PARENT,
            heap_size=64 * 1024,
            stack_size=16 * 1024,
        )
        for _ in range(100)
    ]
    print(f"  created {len(domains)} isolated domains "
          f"(native MPK caps at 15)")
    start = runtime.clock.now
    for domain in domains:
        runtime.execute(domain.udi, lambda h: None)
    per_entry = (runtime.clock.now - start) / len(domains)
    stats = runtime.keys.stats
    print(f"  first pass (cold): {format_seconds(per_entry)}/entry, "
          f"{stats.evictions} evictions, {stats.pages_retagged} pages retagged")
    # isolation still airtight
    result = runtime.execute(
        domains[3].udi, lambda h: h.store(domains[60].heap_base, b"x")
    )
    print(f"  cross-domain write at scale: contained ({result.fault.mechanism.value})")
    print()


def quarantine() -> None:
    print("== 3. bounding the attacker's CPU with the watchdog ==")
    runtime = SdradRuntime()
    watchdog = FaultWatchdog(
        runtime.clock,
        WatchdogConfig(threshold=5, window=10.0, quarantine_period=120.0),
    )
    server = MemcachedServer(runtime, watchdog=watchdog)
    server.connect("mallory")
    for _ in range(50):
        server.handle("mallory", MC_ATTACK)
    print(f"  50 attack requests -> rewinds={server.metrics.rewinds}, "
          f"refused at the door={server.metrics.quarantine_refusals}")
    print(f"  quarantine remaining: "
          f"{format_seconds(watchdog.quarantine_remaining('mallory'))}")
    print()


def main() -> None:
    worker_cluster()
    key_virtualisation()
    quarantine()
    print("Extensions complete: SDRaD composes with (and outperforms) the")
    print("standard operational mitigations, at any connection scale, with")
    print("bounded attack cost.")


if __name__ == "__main__":
    main()
