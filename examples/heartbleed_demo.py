#!/usr/bin/env python3
"""Heartbleed, twice: once against shared memory, once against SDRaD domains.

The toy TLS stack carries the exact CVE-2014-0160 anatomy — a heartbeat
responder that echoes a *client-declared* number of bytes from a buffer
holding only the *actual* payload. What the over-read can reach depends
entirely on where session secrets live:

* unisolated build: all sessions' secrets sit in one heap → leaked;
* SDRaD build: each session's state lives behind its own protection key →
  the read stops at the domain boundary (MPK) and the domain is rewound.

Run:  python examples/heartbleed_demo.py
"""

from repro.apps.memcached_server import IsolationMode
from repro.apps.openssl_service import TlsServer
from repro.apps.tls import decode_record, make_client_hello, make_heartbeat_request
from repro.sdrad.runtime import SdradRuntime


def attack(isolation: IsolationMode, declared: int = 8000) -> None:
    label = "UNISOLATED" if isolation is IsolationMode.NONE else "SDRaD-ISOLATED"
    print(f"--- {label} server ---")
    runtime = SdradRuntime()
    server = TlsServer(
        runtime,
        isolation=isolation,
        domain_heap_size=16 * 1024,
        domain_stack_size=16 * 1024,
    )
    for client in ("victim-0", "victim-1", "attacker"):
        server.connect(client)
        server.handle_record(client, make_client_hello())
        secret = server.session(client).secret
        print(f"  {client:9s} session secret: {secret[:8].hex()}…")

    print(f"  attacker sends heartbeat: 1-byte payload, declares {declared}")
    response = server.handle_record(
        "attacker", make_heartbeat_request(b"!", declared=declared)
    )
    record = decode_record(response)
    if record.content_type == 21:
        print("  server answered with an ALERT — the over-read crossed the")
        print(f"  domain boundary, MPK trapped it, SDRaD rewound the domain")
        print(f"  (rewinds={server.metrics.rewinds})")
    else:
        print(f"  server echoed {len(record.payload)} bytes")
    victims = server.leaked_secrets(response, exclude="attacker")
    if victims:
        print(f"  *** LEAKED the session secrets of: {', '.join(victims)} ***")
    else:
        print("  no other session's secret appears in the response")
    print()


def main() -> None:
    attack(IsolationMode.NONE)
    attack(IsolationMode.PER_CONNECTION, declared=8000)
    attack(IsolationMode.PER_CONNECTION, declared=60000)
    print("This is §II's claim made concrete: isolation limits the impact of")
    print("malicious clients on other clients, without disrupting service.")


if __name__ == "__main__":
    main()
