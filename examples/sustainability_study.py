#!/usr/bin/env python3
"""The paper's §IV argument, end to end: availability → hardware → carbon.

Walks the full chain for a 10 GiB stateful service (the paper's Memcached
anchor) at three faults per year:

1. simulate one service-year per recovery strategy (discrete events);
2. check each against the five-nines budget;
3. size the smallest compliant deployment per strategy;
4. account operational energy and operational+embodied carbon;
5. apply a rebound-effect sensitivity check.

Run:  python examples/sustainability_study.py
"""

from repro.faultinj.campaign import PeriodicArrivals
from repro.resilience.availability import downtime_budget, max_recoveries
from repro.resilience.simulation import compare_strategies
from repro.resilience.strategy import RecoveryStrategyModel
from repro.sim.clock import YEARS
from repro.sim.cost import GIB
from repro.sustainability.lca import LifecycleAssessment
from repro.sustainability.report import (
    availability_table,
    format_seconds,
    lca_table,
)

DATASET = 10 * GIB
FAULTS_PER_YEAR = 3


def main() -> None:
    model = RecoveryStrategyModel()

    print("== step 0: the paper's arithmetic ==")
    budget = downtime_budget(0.99999)
    print(f"five-nines downtime budget : {format_seconds(budget)}/year")
    restart = model.process_restart(DATASET).downtime_per_fault
    print(f"restart @ 10 GiB           : {format_seconds(restart)}")
    print(f"rewind                     : {format_seconds(model.sdrad_rewind().downtime_per_fault)}")
    print(f"rewinds fitting the budget : {max_recoveries(0.99999, 3.5e-6):.2e} "
          "(paper: >9e7)\n")

    print(f"== step 1-2: one simulated year, {FAULTS_PER_YEAR} faults ==")
    times = list(PeriodicArrivals(FAULTS_PER_YEAR).times(YEARS))
    outcomes = compare_strategies(
        model.all_for(DATASET), times, request_rate=10_000.0
    )
    print(availability_table(outcomes))
    for outcome in outcomes:
        if not outcome.meets_five_nines:
            print(f"  -> {outcome.strategy} violates five nines "
                  f"({outcome.requests_dropped:.0f} requests dropped)")
    print()

    print("== step 3-4: smallest compliant deployment, energy, carbon ==")
    lca = LifecycleAssessment()
    rows = lca.assess(DATASET, FAULTS_PER_YEAR)
    print(lca_table(rows))
    print()

    print("== step 5: rebound sensitivity of the yearly saving ==")
    for rebound in (0.0, 0.3, 0.5, 0.9):
        saving = lca.carbon_saving(rows, rebound_fraction=rebound)
        print(f"  rebound {rebound:>4.0%} -> net saving {saving:7.1f} kgCO2e/yr")
    print()

    print("== step 6: the operator's view — error budget burn ==")
    from repro.resilience.budget import ErrorBudget

    budget = ErrorBudget(0.99999)
    print(f"five-nines error budget    : {format_seconds(budget.total)}/year")
    print(f"faults absorbable, restart : "
          f"{budget.faults_until_breach(restart):.1f}")
    print(f"faults absorbable, rewind  : "
          f"{budget.faults_until_breach(3.5e-6):.2e}")

    print()
    print("== step 7: time-varying grid (diurnal intensity) ==")
    from repro.sustainability.grid import (
        DiurnalIntensity,
        recovery_emissions,
        standby_replica_emissions_g,
    )

    grid = DiurnalIntensity()
    restart_g = recovery_emissions(
        "restart", times, restart, 320.0, grid
    ).recovery_emissions_g
    standby_g = standby_replica_emissions_g(grid, 154.0, YEARS)
    print(f"grid swing                 : {grid.trough():.0f}–{grid.peak():.0f} gCO2e/kWh")
    print(f"restart recovery windows   : {restart_g:.1f} g/yr")
    print(f"avoided standby replica    : {standby_g / 1000:.0f} kg/yr "
          "(the dominant term, by far)")

    print(
        "\nConclusion (reproducing §IV): at equal availability, rewind-based"
        "\nrecovery needs one server where restart-based recovery needs a hot"
        "\nstandby — and the saving survives a moderate rebound effect."
    )


if __name__ == "__main__":
    main()
