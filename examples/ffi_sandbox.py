#!/usr/bin/env python3
"""SDRaD-FFI (§III): sandboxing "unsafe foreign functions" by annotation.

In the paper's vision, a Rust developer writes::

    #[sandboxed(fallback = "default_thumbnail")]
    fn decode_image(data: &[u8]) -> Thumbnail { unsafe { c_decoder(data) } }

and the macro hides domain creation, argument serialization and the
alternate action. This example is the Python realisation of exactly that.

Run:  python examples/ffi_sandbox.py
"""

from repro.errors import SandboxViolation
from repro.ffi import Sandbox, fallback_call, fallback_value
from repro.sdrad.runtime import SdradRuntime
from repro.sustainability.report import format_seconds


def main() -> None:
    runtime = SdradRuntime()
    sandbox = Sandbox(runtime, serializer="bincode")

    # ------------------------------------------------------------------
    # An "unsafe C decoder" with a buffer overflow on crafted input.
    # wants_handle=True gives it simulated memory to corrupt, like real
    # native code.
    # ------------------------------------------------------------------
    @sandbox.sandboxed(fallback=fallback_value({"width": 0, "height": 0}),
                       wants_handle=True)
    def decode_image(handle, data):
        header = handle.malloc(16)
        handle.store(header, data[:32])  # trusts the input size — the bug
        width = data[0] if data else 0
        height = data[1] if len(data) > 1 else 0
        handle.free(header)
        return {"width": width, "height": height}

    ok = decode_image(bytes([64, 48]) + b"\x00" * 8)
    print(f"benign input   -> {ok}")

    # A crafted 200-byte "image" overflows the 16-byte header buffer; SDRaD
    # contains it, rewinds the sandbox, and the alternate action kicks in.
    bad = decode_image(bytes([255, 255]) + b"\xcc" * 200)
    print(f"crafted input  -> {bad}   (alternate action applied)")
    print(f"violations so far: {decode_image.stats.violations} "
          f"({decode_image.stats.mechanisms})")

    # ------------------------------------------------------------------
    # Alternate action as a function: a safe pure-Python reimplementation.
    # ------------------------------------------------------------------
    def safe_checksum(report, data):
        print(f"    [fallback] native checksum faulted "
              f"({report.mechanism.value}); using safe path")
        return sum(data) & 0xFFFF

    @sandbox.sandboxed(fallback=fallback_call(safe_checksum), wants_handle=True)
    def native_checksum(handle, data):
        buf = handle.malloc(8)
        handle.store(buf, data)  # overflows for len(data) > 16
        handle.free(buf)
        return sum(data) & 0xFFFF

    print(f"checksum ok    -> {native_checksum(b'12345678')}")
    print(f"checksum bad   -> {native_checksum(b'x' * 100)}")

    # ------------------------------------------------------------------
    # No fallback configured: the violation surfaces as a typed exception —
    # the Result::Err of the Rust API.
    # ------------------------------------------------------------------
    @sandbox.sandboxed(wants_handle=True)
    def strict_parser(handle, data):
        buf = handle.malloc(8)
        handle.store(buf, data)
        handle.free(buf)
        return len(data)

    try:
        strict_parser(b"y" * 100)
    except SandboxViolation as violation:
        print(f"strict parser  -> raised {type(violation).__name__}: "
              f"{violation}")

    # ------------------------------------------------------------------
    # The serialization-crate choice (E6's axis) is one keyword away.
    # ------------------------------------------------------------------
    for name in ("bincode", "json"):
        rt = SdradRuntime()
        sb = Sandbox(rt, serializer=name)

        @sb.sandboxed
        def echo(value):
            return value

        payload = {"blob": b"\x00" * 32768}
        echo(payload)  # warm-up creates the domain
        before = rt.clock.now
        echo(payload)
        print(f"32 KiB echo via {name:8s}: "
              f"{format_seconds(rt.clock.now - before)} per call")

    # ------------------------------------------------------------------
    # The real-world use case: a native image decoder with two CVE-shaped
    # bugs, retrofitted with one annotation (repro.apps.imagelib).
    # ------------------------------------------------------------------
    from repro.apps.imagelib import (
        ImageService,
        craft_dimension_lie,
        craft_run_overflow,
        encode_image,
        make_test_image,
    )

    service = ImageService(Sandbox(SdradRuntime()))
    honest = encode_image(make_test_image(16, 16, 3))
    image = service.decode(honest)
    print(f"\nimage service  -> decoded {image.width}x{image.height} honestly")
    for attack, label in (
        (craft_dimension_lie(honest, 2, 2), "dimension lie"),
        (craft_run_overflow(), "RLE overrun"),
    ):
        result = service.decode(attack)
        print(f"  {label:14s}-> placeholder {result.width}x{result.height} "
              "(exploit contained, process alive)")
    print(f"  containments: {service.contained}")

    print("\nprocess survived every native fault — that is SDRaD-FFI.")


if __name__ == "__main__":
    main()
