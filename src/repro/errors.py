"""Exception hierarchy shared by every subsystem of the reproduction.

The hierarchy mirrors the fault taxonomy of the SDRaD paper:

* :class:`MemoryError_` and its subclasses model *hardware-detected* faults —
  the simulated MMU/MPK raising what would be a ``SIGSEGV`` on real hardware.
* :class:`DetectedCorruption` and its subclasses model *software-detected*
  faults — stack canaries, heap integrity checks and similar mitigations that
  fire before the corruption is exploited.
* :class:`SdradError` covers misuse of the SDRaD API itself (double init,
  entering an unknown domain, ...), which on the C library would be an error
  return code rather than a signal.

Keeping the split explicit matters because SDRaD's recovery policy treats the
two classes identically (both trigger rewind-and-discard) while the *baseline*
strategies treat them differently: a plain process without SDRaD dies on
either, while a hardened-but-unisolated process dies on the detected ones too
(the mitigations terminate it).
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for every error raised by this library."""


# ---------------------------------------------------------------------------
# Hardware-detected faults (simulated MMU / MPK)
# ---------------------------------------------------------------------------


class MemoryError_(ReproError):
    """Base class for faults raised by the simulated memory subsystem.

    Named with a trailing underscore to avoid shadowing the builtin
    :class:`MemoryError`, which Python reserves for allocator exhaustion.
    """


class SegmentationFault(MemoryError_):
    """Access to an unmapped address — the classic ``SIGSEGV``."""

    def __init__(self, address: int, access: str = "load") -> None:
        super().__init__(f"segmentation fault: {access} at {address:#x}")
        self.address = address
        self.access = access


class ProtectionKeyViolation(MemoryError_):
    """Access denied by the simulated PKRU register (MPK domain violation).

    This is the fault SDRaD relies on to *contain* a compromised domain:
    a wild write that leaves the domain's pkey-tagged pages trips here
    instead of corrupting another domain's memory.
    """

    def __init__(self, address: int, pkey: int, access: str = "load") -> None:
        super().__init__(
            f"protection-key violation: {access} at {address:#x} "
            f"(page tagged pkey={pkey}, PKRU denies)"
        )
        self.address = address
        self.pkey = pkey
        self.access = access


class CapabilityViolation(ProtectionKeyViolation):
    """Access outside the installed capability set (simulated CHERI).

    Subclasses :class:`ProtectionKeyViolation` so fault classification,
    recovery policies and telemetry treat a capability containment fault
    exactly like an MPK one — the substrate changes, the protocol does not.
    """

    def __init__(self, address: int, tag: int, access: str = "load") -> None:
        # Skip the parent constructor: the message names the actual
        # mechanism, but the attribute surface stays identical.
        MemoryError_.__init__(
            self,
            f"capability violation: {access} at {address:#x} "
            f"(page sealed for domain tag {tag}, no installed capability)",
        )
        self.address = address
        self.pkey = tag
        self.access = access


class SfiViolation(ProtectionKeyViolation):
    """Masked access escaped its sandbox region (simulated SFI)."""

    def __init__(self, address: int, tag: int, access: str = "load") -> None:
        MemoryError_.__init__(
            self,
            f"SFI violation: masked {access} at {address:#x} "
            f"(page in region {tag}, outside the active mask)",
        )
        self.address = address
        self.pkey = tag
        self.access = access


class PermissionFault(MemoryError_):
    """Access denied by page permissions (e.g. write to a read-only page)."""

    def __init__(self, address: int, access: str, perms: str) -> None:
        super().__init__(
            f"permission fault: {access} at {address:#x} (page perms '{perms}')"
        )
        self.address = address
        self.access = access
        self.perms = perms


class AllocationFailure(MemoryError_):
    """The simulated allocator ran out of arena space."""


class InvalidFree(MemoryError_):
    """``free`` of a pointer the allocator does not own (double free, wild free)."""

    def __init__(self, address: int, reason: str = "not an allocated block") -> None:
        super().__init__(f"invalid free of {address:#x}: {reason}")
        self.address = address
        self.reason = reason


# ---------------------------------------------------------------------------
# Software-detected corruption (mitigations)
# ---------------------------------------------------------------------------


class DetectedCorruption(ReproError):
    """Base class for corruption caught by a software mitigation."""


class StackCanaryViolation(DetectedCorruption):
    """A function epilogue found its stack canary overwritten."""

    def __init__(self, frame: str, expected: int, found: int) -> None:
        super().__init__(
            f"stack smashing detected in frame '{frame}': "
            f"canary {found:#x} != {expected:#x}"
        )
        self.frame = frame
        self.expected = expected
        self.found = found


class HeapCorruption(DetectedCorruption):
    """Allocator metadata or a heap guard word failed its integrity check."""

    def __init__(self, address: int, detail: str) -> None:
        super().__init__(f"heap corruption at {address:#x}: {detail}")
        self.address = address
        self.detail = detail


# ---------------------------------------------------------------------------
# SDRaD API errors
# ---------------------------------------------------------------------------


class SdradError(ReproError):
    """Misuse of the SDRaD runtime API (would be an errno-style code in C)."""


class DomainNotFound(SdradError):
    """Operation on a user-domain index that was never initialised."""

    def __init__(self, udi: int) -> None:
        super().__init__(f"no such domain: udi={udi}")
        self.udi = udi


class DomainStateError(SdradError):
    """Operation invalid for the domain's current lifecycle state."""


class OutOfDomains(SdradError):
    """All hardware protection keys are in use (MPK provides only 16)."""


class UnsupportedByBackend(SdradError):
    """The selected isolation backend cannot provide this feature.

    Raised eagerly (never silently ignored) so a deployment that asks for,
    say, key virtualisation on a substrate without key scarcity finds out
    at configuration time, not from quietly different behaviour.
    """


# ---------------------------------------------------------------------------
# FFI / sandbox errors
# ---------------------------------------------------------------------------


class FfiError(ReproError):
    """Base class for SDRaD-FFI sandboxing failures."""


class SerializationError(FfiError):
    """A value could not be serialized for the cross-domain copy."""


class SandboxViolation(FfiError):
    """A sandboxed foreign function faulted and no alternate action applied.

    Carries the original fault so callers (and tests) can assert on the
    detection mechanism that fired.
    """

    def __init__(self, function: str, cause: Exception) -> None:
        super().__init__(f"sandboxed function '{function}' faulted: {cause}")
        self.function = function
        self.cause = cause


# ---------------------------------------------------------------------------
# Simulation errors
# ---------------------------------------------------------------------------


class SimulationError(ReproError):
    """Internal inconsistency in the discrete-event engine."""


class ServiceUnavailable(ReproError):
    """A simulated service refused a request because it is down/restarting."""

    def __init__(self, service: str, until: float) -> None:
        super().__init__(f"service '{service}' unavailable until t={until:.6f}s")
        self.service = service
        self.until = until
