"""A Memcached-like server with SDRaD-isolated request parsing.

Mirrors the paper's Memcached retrofit: client input is parsed by
"C-style" code — fixed stack buffers, trust in client-declared lengths —
inside an SDRaD domain, while the database (:class:`~repro.apps.kvstore.
KVStore`) lives in root memory. A malicious request corrupts only its own
domain; SDRaD rewinds it and the server answers ``SERVER_ERROR`` to that
client while every other client proceeds untouched (experiment E4).

Supported protocol subset (text protocol)::

    set <key> <flags> <exptime> <bytes>\r\n<data>\r\n
    get <key>\r\n
    delete <key>\r\n
    stats\r\n

Deliberate parser vulnerabilities (the attack surface):

* the key token is copied into a 256-byte stack buffer without a bounds
  check — an over-long key smashes the stack canary;
* the value buffer is allocated from the *client-declared* ``<bytes>``
  field but filled with the *actual* payload — a length lie overflows the
  heap block and smashes the allocator guard.

Isolation modes (E1's ablation axis):

* ``PER_CONNECTION`` — one persistent domain per client (the paper's
  deployment: cheap, contains clients from each other);
* ``PER_REQUEST``   — a fresh domain per request (strongest discard
  semantics, pays domain setup per request);
* ``NONE``          — parse in the root compartment with abort-on-detect
  (the unprotected baseline: any detected fault kills the process).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Optional

from ..errors import SdradError
from ..sdrad.constants import ROOT_UDI, DomainFlags
from ..sdrad.policy import ProcessCrashed
from ..sdrad.runtime import DomainHandle, SdradRuntime
from ..sdrad.watchdog import FaultWatchdog
from .kvstore import KVStore, MAX_KEY_LEN

KEY_STACK_BUFFER = 256


class IsolationMode(enum.Enum):
    PER_CONNECTION = "per-connection"
    PER_REQUEST = "per-request"
    NONE = "none"


@dataclass
class ServerMetrics:
    requests: int = 0
    ok: int = 0
    client_errors: int = 0
    server_errors: int = 0
    rewinds: int = 0
    crashes: int = 0
    quarantines: int = 0
    quarantine_refusals: int = 0
    per_client_faults: dict[str, int] = field(default_factory=dict)


@dataclass
class _ParsedOp:
    """Trusted-side representation of a parsed command."""

    op: str
    key: bytes = b""
    flags: int = 0
    value: bytes = b""
    #: Multi-key ``get k1 k2 ...`` — empty for every other command.
    keys: tuple = ()


def _response_status(response: bytes) -> str:
    """Span/metric status derived from the wire response.

    ``refused`` — rejected at the front door (quarantine, no domain work);
    ``fault`` — a domain fault was rewound and the request discarded;
    ``ok`` — everything else, including protocol-level CLIENT_ERROR/ERROR
    (those are the *server* working correctly on bad input).
    """
    if response.startswith(b"SERVER_ERROR client quarantined"):
        return "refused"
    if response.startswith(b"SERVER_ERROR"):
        return "fault"
    return "ok"


class MemcachedServer:
    """The server: connection registry + isolated parsing + trusted apply."""

    def __init__(
        self,
        runtime: SdradRuntime,
        store: Optional[KVStore] = None,
        isolation: IsolationMode = IsolationMode.PER_CONNECTION,
        domain_heap_size: int = 128 * 1024,
        watchdog: Optional["FaultWatchdog"] = None,
    ) -> None:
        self.runtime = runtime
        self.store = store if store is not None else KVStore(runtime)
        self.isolation = isolation
        self.domain_heap_size = domain_heap_size
        self.watchdog = watchdog
        self.metrics = ServerMetrics()
        self._connections: dict[str, int] = {}  # client id -> udi
        #: Whether the last batch ran the single-entry pipelined path, in
        #: which case every response is "ok" by construction and the obs
        #: wrapper can skip per-response classification.
        self._batch_pipelined = True
        if runtime.obs is None:
            # With observability off the obs wrappers below are pure
            # dead weight (an extra frame and a ``None`` check per
            # request); bind dispatch straight to the implementations so
            # the off path stays a single attribute lookup.
            self.handle = self._handle
            self.handle_batch = self._handle_batch

    # ------------------------------------------------------------------
    # Connection lifecycle
    # ------------------------------------------------------------------

    def connect(self, client_id: str) -> None:
        if client_id in self._connections:
            raise SdradError(f"client {client_id!r} already connected")
        if self.isolation is IsolationMode.PER_CONNECTION:
            domain = self.runtime.domain_init(
                flags=DomainFlags.RETURN_TO_PARENT,
                heap_size=self.domain_heap_size,
            )
            self._connections[client_id] = domain.udi
        else:
            self._connections[client_id] = ROOT_UDI

    def disconnect(self, client_id: str) -> None:
        udi = self._connections.pop(client_id, None)
        if udi is not None and udi != ROOT_UDI:
            self.runtime.domain_destroy(udi)

    @property
    def connected_clients(self) -> list[str]:
        return list(self._connections)

    # ------------------------------------------------------------------
    # Request handling
    # ------------------------------------------------------------------

    def handle(self, client_id: str, raw: bytes) -> bytes:
        """Process one request from ``client_id``; returns the response.

        Raises :class:`ProcessCrashed` only in ``NONE`` isolation, when a
        fault escapes containment — the resilience layer turns that into
        restart downtime.
        """
        obs = self.runtime.obs
        if obs is None:
            return self._handle(client_id, raw)
        span = obs.start_span("memcached.request", client=client_id)
        started = self.runtime.clock.now
        try:
            response = self._handle(client_id, raw)
        except BaseException:
            obs.record_request(
                "memcached", self.runtime.clock.now - started, status="crash"
            )
            obs.end_span(span, status="crash")
            raise
        status = _response_status(response)
        obs.record_request("memcached", self.runtime.clock.now - started, status)
        obs.end_span(span, status=status)
        return response

    def _handle(self, client_id: str, raw: bytes) -> bytes:
        if client_id not in self._connections:
            raise SdradError(f"client {client_id!r} is not connected")
        self.metrics.requests += 1

        if self.watchdog is not None and self.watchdog.is_quarantined(client_id):
            # Refused at the front door: no parsing, no domain, ~zero cost.
            self.metrics.quarantine_refusals += 1
            return b"SERVER_ERROR client quarantined\r\n"

        if self.isolation is IsolationMode.NONE:
            # Baseline: no domain, no switch cost — and no containment.
            try:
                parsed = self.runtime.execute_unisolated(_parse_in_domain, raw)
            except ProcessCrashed:
                self.metrics.crashes += 1
                self._bump_fault(client_id)
                raise
            return self._apply(parsed)

        udi, ephemeral = self._domain_for_request(client_id)
        try:
            result = self.runtime.execute(udi, _parse_in_domain, raw)
        finally:
            if ephemeral:
                self.runtime.domain_destroy(udi)

        if not result.ok:
            self.metrics.server_errors += 1
            self.metrics.rewinds += 1
            self._bump_fault(client_id)
            if self.watchdog is not None and self.watchdog.record_fault(client_id):
                self.metrics.quarantines += 1
            return b"SERVER_ERROR domain fault (request discarded)\r\n"
        return self._apply(result.value)

    def handle_batch(self, client_id: str, raws: list[bytes]) -> list[bytes]:
        """Process a pipeline of requests in one domain entry.

        Per-connection isolation parses the whole pipeline inside a single
        enter/exit of the connection's domain — the switch cost is amortised
        over ``len(raws)`` requests — and then applies the parsed commands
        trusted-side in order. Nothing is applied until the entire batch has
        parsed, so a fault on any request rewinds a batch that has had no
        effect yet; the server then falls back to per-request handling, in
        which only the offending request answers ``SERVER_ERROR`` and every
        other request is parsed and applied exactly once.

        Isolation modes without a persistent domain (``PER_REQUEST``,
        ``NONE``) have nothing to amortise; the pipeline degenerates to the
        per-request loop, as does a quarantined client.
        """
        obs = self.runtime.obs
        if obs is None:
            return self._handle_batch(client_id, raws)
        clock = self.runtime.clock
        span = obs.start_span("memcached.batch", client=client_id, size=len(raws))
        started = clock.now
        try:
            responses = self._handle_batch(client_id, raws)
        except BaseException:
            obs.record_batch("memcached", len(raws))
            obs.end_span(span, status="crash")
            raise
        elapsed = clock.now - started
        # Per-request accounting with the batch's amortised latency: the
        # whole point of pipelining is that each request's share shrinks.
        if self._batch_pipelined:
            # Steady state: the batch parsed and applied in one pipelined
            # entry, and ``_apply`` never emits SERVER_ERROR, so every
            # status is "ok" by construction — record the batch and all
            # its requests in one fused call without inspecting the
            # responses.
            obs.record_pipeline(
                "memcached",
                len(raws),
                elapsed / len(responses) if responses else 0.0,
                len(responses),
            )
            batch_status = "ok"
        else:
            obs.record_batch("memcached", len(raws))
            share = elapsed / len(responses) if responses else 0.0
            # Fallback or degenerate batch (fault mid-parse, quarantine,
            # non-persistent isolation): classify each response.
            statuses = [_response_status(r) for r in responses]
            obs.record_requests("memcached", share, statuses)
            batch_status = (
                "ok" if all(s == "ok" for s in statuses) else "partial"
            )
        obs.end_span(span, status=batch_status)
        return responses

    def _handle_batch(self, client_id: str, raws: list[bytes]) -> list[bytes]:
        if client_id not in self._connections:
            raise SdradError(f"client {client_id!r} is not connected")
        if not raws:
            return []
        if self.isolation is not IsolationMode.PER_CONNECTION or (
            self.watchdog is not None and self.watchdog.is_quarantined(client_id)
        ):
            self._batch_pipelined = False
            return [self._handle(client_id, raw) for raw in raws]
        udi = self._connections[client_id]
        result = self.runtime.execute(udi, _parse_batch_in_domain, raws)
        if not result.ok:
            # The rewind discarded the whole (unapplied) batch; re-handle
            # each request in its own entry so only the offender errors.
            self._batch_pipelined = False
            return [self._handle(client_id, raw) for raw in raws]
        self._batch_pipelined = True
        self.metrics.requests += len(raws)
        return [self._apply(parsed) for parsed in result.value]

    # ------------------------------------------------------------------
    # Internals
    # ------------------------------------------------------------------

    def _domain_for_request(self, client_id: str) -> tuple[int, bool]:
        if self.isolation is IsolationMode.PER_REQUEST:
            domain = self.runtime.domain_init(
                flags=DomainFlags.RETURN_TO_PARENT,
                heap_size=self.domain_heap_size,
            )
            return domain.udi, True
        return self._connections[client_id], False

    def _bump_fault(self, client_id: str) -> None:
        faults = self.metrics.per_client_faults
        faults[client_id] = faults.get(client_id, 0) + 1

    def _apply(self, parsed: Optional[_ParsedOp]) -> bytes:
        """Trusted-side application of a successfully parsed command."""
        if parsed is None:
            self.metrics.client_errors += 1
            return b"ERROR\r\n"
        if parsed.op in ("set", "add", "replace"):
            try:
                if parsed.op == "set":
                    self.store.set(parsed.key, parsed.value, parsed.flags)
                    stored = True
                elif parsed.op == "add":
                    stored = self.store.add(parsed.key, parsed.value, parsed.flags)
                else:
                    stored = self.store.replace(
                        parsed.key, parsed.value, parsed.flags
                    )
            except SdradError:
                self.metrics.client_errors += 1
                return b"CLIENT_ERROR bad data chunk\r\n"
            self.metrics.ok += 1
            return b"STORED\r\n" if stored else b"NOT_STORED\r\n"
        if parsed.op in ("incr", "decr"):
            delta = parsed.flags if parsed.op == "incr" else -parsed.flags
            try:
                new_value = self.store.incr(parsed.key, delta)
            except SdradError:
                self.metrics.client_errors += 1
                return b"CLIENT_ERROR bad key\r\n"
            self.metrics.ok += 1
            if new_value is None:
                return b"NOT_FOUND\r\n"
            return b"%d\r\n" % new_value
        if parsed.op == "get":
            keys = parsed.keys or (parsed.key,)
            try:
                if len(keys) == 1:
                    hit = self.store.get(keys[0])
                    hits = {} if hit is None else {keys[0]: hit}
                else:
                    # Multi-key get: one batched store lookup for the
                    # whole request (memcached's ``get k1 k2 ...``).
                    hits = self.store.get_many(list(keys))
            except SdradError:
                self.metrics.client_errors += 1
                return b"CLIENT_ERROR bad key\r\n"
            self.metrics.ok += 1
            if not hits:
                return b"END\r\n"
            chunks = []
            for key in keys:
                item = hits.get(key)
                if item is None:
                    continue
                value, flags = item
                chunks.append(
                    b"VALUE %s %d %d\r\n" % (key, flags, len(value))
                    + value
                    + b"\r\n"
                )
            chunks.append(b"END\r\n")
            return b"".join(chunks)
        if parsed.op == "delete":
            try:
                found = self.store.delete(parsed.key)
            except SdradError:
                self.metrics.client_errors += 1
                return b"CLIENT_ERROR bad key\r\n"
            self.metrics.ok += 1
            return b"DELETED\r\n" if found else b"NOT_FOUND\r\n"
        if parsed.op == "stats":
            self.metrics.ok += 1
            stats = self.store.stats
            body = (
                b"STAT cmd_get %d\r\nSTAT cmd_set %d\r\n"
                b"STAT get_hits %d\r\nSTAT get_misses %d\r\n"
                b"STAT evictions %d\r\nEND\r\n"
                % (stats.gets, stats.sets, stats.hits, stats.misses, stats.evictions)
            )
            return body
        self.metrics.client_errors += 1
        return b"ERROR\r\n"


def _parse_in_domain(handle: DomainHandle, raw: bytes) -> Optional[_ParsedOp]:
    """The "unsafe C parser" running inside the client's domain.

    Faithfully unsafe: the key copy trusts token length, the value buffer
    trusts the declared byte count. Both bugs corrupt only domain memory.
    """
    line_end = raw.find(b"\r\n")
    if line_end < 0:
        return None
    parts = raw[:line_end].split(b" ")

    frame = handle.push_frame("process_command")
    try:
        return _parse_parts(handle, frame, None, parts, raw, line_end)
    finally:
        handle.pop_frame(frame)


def _parse_parts(
    handle: DomainHandle,
    frame,
    key_buf: Optional[int],
    parts: list,
    raw: bytes,
    line_end: int,
) -> Optional[_ParsedOp]:
    """Parse one split command line inside an already-open stack frame.

    ``key_buf`` is ``None`` on the per-request path (each command allocas
    its own buffer, the seed behaviour) and a pre-alloca'd buffer on the
    batch path, where every command of the pipeline strcpy's into the same
    stack slot — the same reuse idiom as a multi-key ``get``.
    """
    command = parts[0]
    if command in (b"set", b"add", b"replace"):
        if len(parts) != 5:
            return None
        key = parts[1]
        # BUG 1: strcpy-style copy into a fixed stack buffer.
        if key_buf is None:
            key_buf = frame.alloca(KEY_STACK_BUFFER)
        frame.write_buffer(key_buf, key + b"\x00")
        try:
            flags = int(parts[2])
            int(parts[3])  # exptime parsed but unused in the subset
            declared = int(parts[4])
        except ValueError:
            return None
        if declared < 0:
            return None
        data = raw[line_end + 2 :]
        if data.endswith(b"\r\n"):
            data = data[:-2]
        # BUG 2: allocation sized by the *declared* length, filled with
        # the *actual* payload.
        value_buf = handle.malloc(max(declared, 1))
        handle.store(value_buf, data)
        # Zero-copy read-back: the view runs the same checked-access
        # path as ``load`` (same TLB verdicts, same counters) but the
        # only copy is the one materialising the trusted-side value.
        value = bytes(handle.load_view(value_buf, min(declared, len(data))))
        handle.free(value_buf)
        if len(key) > MAX_KEY_LEN:
            return None  # reached only if the overflow was survivable
        return _ParsedOp(
            op=command.decode("ascii"), key=bytes(key), flags=flags, value=value
        )
    if command in (b"incr", b"decr"):
        if len(parts) != 3:
            return None
        key = parts[1]
        if key_buf is None:
            key_buf = frame.alloca(KEY_STACK_BUFFER)
        frame.write_buffer(key_buf, key + b"\x00")
        try:
            delta = int(parts[2])
        except ValueError:
            return None
        if delta < 0 or len(key) > MAX_KEY_LEN:
            return None
        return _ParsedOp(
            op=command.decode("ascii"), key=bytes(key), flags=delta
        )
    if command == b"get":
        if len(parts) < 2:
            return None
        keys = parts[1:]
        # Each key of a multi-key get is "strcpy'd" into the same fixed
        # stack buffer in turn — BUG 1 fires for any over-long key in
        # the pipeline, exactly as for a single-key get.
        if key_buf is None:
            key_buf = frame.alloca(KEY_STACK_BUFFER)
        for key in keys:
            frame.write_buffer(key_buf, key + b"\x00")
        if any(len(key) > MAX_KEY_LEN for key in keys):
            return None
        if len(keys) == 1:
            return _ParsedOp(op="get", key=bytes(keys[0]))
        return _ParsedOp(
            op="get", key=bytes(keys[0]), keys=tuple(bytes(k) for k in keys)
        )
    if command == b"delete":
        if len(parts) != 2:
            return None
        key = parts[1]
        if key_buf is None:
            key_buf = frame.alloca(KEY_STACK_BUFFER)
        frame.write_buffer(key_buf, key + b"\x00")
        if len(key) > MAX_KEY_LEN:
            return None
        return _ParsedOp(op="delete", key=bytes(key))
    if command == b"stats":
        return _ParsedOp(op="stats")
    return None


def _parse_batch_in_domain(
    handle: DomainHandle, raws: list[bytes]
) -> list[Optional[_ParsedOp]]:
    """Parse a whole request pipeline inside one domain entry.

    The batch parser is one "C function": a single activation record whose
    locals are reused across the pipeline loop, exactly like memcached's
    connection event loop (and like a multi-key ``get`` reuses one key
    buffer). Every command still strcpy's its key into a canary-guarded
    stack buffer and every value still round-trips the domain heap, so the
    per-request attack surface is unchanged — an over-long key anywhere in
    the pipeline smashes the shared frame's canary, the epilogue check
    trips when the batch parse returns, and the whole (unapplied) batch is
    rewound; the server then falls back to per-request handling so only
    the offender errors.
    """
    frame = handle.push_frame("process_batch")
    try:
        key_buf = frame.alloca(KEY_STACK_BUFFER)
        out = []
        append = out.append
        for raw in raws:
            line_end = raw.find(b"\r\n")
            if line_end < 0:
                append(None)
                continue
            parts = raw[:line_end].split(b" ")
            append(_parse_parts(handle, frame, key_buf, parts, raw, line_end))
        return out
    finally:
        handle.pop_frame(frame)
