"""HTTP/1.x request parsing and routing (the NGINX-like use case's core).

The parser is written the way the C parser it stands in for is written:
request line and header values are copied into fixed-size stack buffers,
and the body buffer is sized from the client's ``Content-Length`` header.
Both are classic web-server CVE shapes, and both corrupt only domain memory
when the parser runs inside an SDRaD domain.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from ..sdrad.runtime import DomainHandle

REQUEST_LINE_BUFFER = 1024
HEADER_VALUE_BUFFER = 256
MAX_HEADERS = 64

SUPPORTED_METHODS = (b"GET", b"HEAD", b"POST", b"PUT", b"DELETE")


@dataclass
class HttpRequest:
    """Trusted-side representation of a successfully parsed request."""

    method: str
    path: str
    version: str
    headers: dict[str, str] = field(default_factory=dict)
    body: bytes = b""


@dataclass
class HttpResponse:
    status: int
    reason: str
    body: bytes = b""
    headers: dict[str, str] = field(default_factory=dict)

    def encode(self) -> bytes:
        head = f"HTTP/1.1 {self.status} {self.reason}\r\n"
        headers = dict(self.headers)
        headers.setdefault("Content-Length", str(len(self.body)))
        headers.setdefault("Server", "repro-nginx/1.0")
        for name, value in headers.items():
            head += f"{name}: {value}\r\n"
        return head.encode("ascii") + b"\r\n" + self.body


def parse_request_in_domain(
    handle: DomainHandle, raw: bytes
) -> Optional[HttpRequest]:
    """The "unsafe C parser": runs inside a worker domain.

    Returns ``None`` for requests that are *cleanly* malformed (400); lets
    memory faults raise through the checked access path for requests that
    exploit the parser bugs.
    """
    head_end = raw.find(b"\r\n\r\n")
    if head_end < 0:
        return None
    head = raw[:head_end]
    body = raw[head_end + 4 :]
    lines = head.split(b"\r\n")

    frame = handle.push_frame("ngx_http_process_request_line")
    try:
        # BUG 1: the request line is copied into a fixed stack buffer.
        line_buf = frame.alloca(REQUEST_LINE_BUFFER)
        frame.write_buffer(line_buf, lines[0] + b"\x00")

        parts = lines[0].split(b" ")
        if len(parts) != 3:
            return None
        method, path, version = parts
        if method not in SUPPORTED_METHODS:
            return None
        if not version.startswith(b"HTTP/"):
            return None

        headers: dict[str, str] = {}
        if len(lines) - 1 > MAX_HEADERS:
            return None
        for line in lines[1:]:
            colon = line.find(b":")
            if colon <= 0:
                return None
            name = line[:colon].strip().lower()
            value = line[colon + 1 :].strip()
            # Header processing runs in its own activation record, as in
            # ngx_http_process_request_headers.
            header_frame = handle.push_frame("ngx_http_process_header_line")
            try:
                # BUG 2: the value is staged through a fixed stack buffer.
                value_buf = header_frame.alloca(HEADER_VALUE_BUFFER)
                header_frame.write_buffer(value_buf, value + b"\x00")
                try:
                    headers[name.decode("ascii")] = value.decode("ascii")
                except UnicodeDecodeError:
                    return None
            finally:
                handle.pop_frame(header_frame)

        declared_raw = headers.get("content-length", "0")
        try:
            declared = int(declared_raw)
        except ValueError:
            return None
        if declared < 0:
            return None
        if declared or body:
            # BUG 3: body buffer sized by Content-Length, filled with the
            # actual bytes on the wire.
            body_buf = handle.malloc(max(declared, 1))
            handle.store(body_buf, body)
            # Zero-copy read-back: same checked path and counters as
            # ``load``, one copy instead of two.
            body = bytes(handle.load_view(body_buf, min(declared, len(body))))
            handle.free(body_buf)

        return HttpRequest(
            method=method.decode("ascii"),
            path=path.decode("ascii", "replace"),
            version=version.decode("ascii"),
            headers=headers,
            body=bytes(body),
        )
    finally:
        handle.pop_frame(frame)


def parse_pipeline_in_domain(
    handle: DomainHandle, raws: list[bytes]
) -> list[Optional[HttpRequest]]:
    """Parse an HTTP/1.1 pipeline inside one domain entry.

    Per-request frames, buffers and bugs are identical to
    :func:`parse_request_in_domain`; only the domain enter/exit is shared.
    A fault on any pipelined request aborts (and rewinds) the whole parse.
    """
    return [parse_request_in_domain(handle, raw) for raw in raws]


class Router:
    """Static routing table (NGINX ``location`` blocks, minus the regexes)."""

    def __init__(self) -> None:
        self._routes: dict[tuple[str, str], HttpResponse] = {}
        self._prefixes: list[tuple[str, HttpResponse]] = []

    def add(self, method: str, path: str, response: HttpResponse) -> None:
        self._routes[(method.upper(), path)] = response

    def add_prefix(self, prefix: str, response: HttpResponse) -> None:
        self._prefixes.append((prefix, response))
        self._prefixes.sort(key=lambda p: len(p[0]), reverse=True)

    def route(self, request: HttpRequest) -> HttpResponse:
        exact = self._routes.get((request.method.upper(), request.path))
        if exact is not None:
            return exact
        for prefix, response in self._prefixes:
            if request.path.startswith(prefix):
                return response
        return HttpResponse(status=404, reason="Not Found", body=b"404\n")


def default_router() -> Router:
    """The static site every NGINX experiment serves."""
    router = Router()
    router.add(
        "GET", "/", HttpResponse(status=200, reason="OK", body=b"<h1>repro</h1>\n")
    )
    router.add(
        "GET",
        "/health",
        HttpResponse(status=200, reason="OK", body=b"ok\n"),
    )
    router.add_prefix(
        "/static/",
        HttpResponse(status=200, reason="OK", body=b"x" * 1024),
    )
    return router
