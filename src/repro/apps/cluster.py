"""Multi-worker (multi-process) service cluster.

The paper measures SDRaD "in realistic multi-processing scenarios" (§II):
real NGINX runs N worker processes behind a connection-affine balancer, and
real deployments lean on that as a partial availability mitigation — a
crashed worker takes down only 1/N of the connections while the supervisor
restarts it. This module models exactly that deployment so experiments can
compare three postures on one axis:

* unisolated multi-process — a parser exploit kills one worker: its
  connections reset, its share of traffic is refused for the restart
  window, and the attacker can repeat the kill;
* SDRaD multi-process — the same exploit is rewound inside the worker;
  nothing is lost anywhere;
* (implicitly) the single-process baselines of E4.

All workers share one virtual clock (wall time); each has a private
:class:`~repro.sdrad.runtime.SdradRuntime` (processes share no memory).
"""

from __future__ import annotations

import zlib
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Optional

from ..errors import SdradError

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from ..obs.hub import Observability
from ..sdrad.policy import ProcessCrashed
from ..sdrad.runtime import SdradRuntime
from ..sim.clock import VirtualClock
from ..sim.cost import DEFAULT_COST_MODEL, CostModel
from .memcached_server import IsolationMode
from .nginx_server import NginxServer


@dataclass
class ClusterMetrics:
    requests: int = 0
    served: int = 0
    refused_worker_down: int = 0
    connections_reset: int = 0
    worker_crashes: int = 0
    worker_restarts: int = 0
    per_worker_crashes: dict[int, int] = field(default_factory=dict)


class _Worker:
    """One worker process: private runtime + server, shared clock."""

    def __init__(
        self,
        index: int,
        clock: VirtualClock,
        cost: CostModel,
        isolation: IsolationMode,
        obs: "Optional[Observability]" = None,
    ) -> None:
        self.index = index
        self.clock = clock
        self.cost = cost
        self.isolation = isolation
        self.obs = obs
        self.down_until = 0.0
        self.restarts = 0
        #: Every outage as a real ``(start, end)`` interval, in order.
        #: Downtime accounting walks these instead of assuming each restart
        #: burned one full window inside the horizon.
        self.outages: list[tuple[float, float]] = []
        self._boot()

    def _boot(self) -> None:
        # All workers share the cluster's one obs hub (as real workers
        # would share a metrics endpoint); counters therefore aggregate
        # across workers and survive individual worker restarts.
        self.runtime = SdradRuntime(clock=self.clock, cost=self.cost, obs=self.obs)
        self.server = NginxServer(self.runtime, isolation=self.isolation)

    @property
    def is_down(self) -> bool:
        return self.clock.now < self.down_until

    def crash_and_schedule_restart(self) -> float:
        """Worker died; supervisor restarts it (stateless → base cost)."""
        restart = self.cost.process_restart_time(0)
        started = self.clock.now
        self.down_until = started + restart
        self.outages.append((started, self.down_until))
        self.restarts += 1
        self._boot()  # fresh process image, no connections
        return restart


class NginxCluster:
    """N workers behind a connection-affine (hash) load balancer."""

    def __init__(
        self,
        workers: int = 4,
        isolation: IsolationMode = IsolationMode.PER_CONNECTION,
        clock: Optional[VirtualClock] = None,
        cost: CostModel = DEFAULT_COST_MODEL,
        obs: "Optional[Observability]" = None,
    ) -> None:
        if workers < 1:
            raise SdradError(f"cluster needs at least one worker, got {workers}")
        self.clock = clock if clock is not None else VirtualClock()
        self.obs = obs
        if obs is not None:
            obs.bind_clock(self.clock)
        self.cost = cost
        self.isolation = isolation
        self.workers = [
            _Worker(i, self.clock, cost, isolation, obs=obs)
            for i in range(workers)
        ]
        self.metrics = ClusterMetrics()
        self._clients: dict[str, int] = {}  # client -> worker index

    # ------------------------------------------------------------------

    def _worker_for(self, client_id: str) -> _Worker:
        index = self._clients.get(client_id)
        if index is None:
            index = zlib.crc32(client_id.encode("utf-8")) % len(self.workers)
        return self.workers[index]

    def connect(self, client_id: str) -> None:
        if client_id in self._clients:
            raise SdradError(f"client {client_id!r} already connected")
        worker = self._worker_for(client_id)
        self._clients[client_id] = worker.index
        if not worker.is_down:
            worker.server.connect(client_id)

    def disconnect(self, client_id: str) -> None:
        index = self._clients.pop(client_id, None)
        if index is None:
            return
        worker = self.workers[index]
        if client_id in worker.server.connected_clients:
            worker.server.disconnect(client_id)

    # ------------------------------------------------------------------

    def handle(self, client_id: str, raw: bytes) -> bytes:
        """Route one request; emulates the balancer + supervisor behaviour."""
        obs = self.obs
        if obs is None:
            return self._handle(client_id, raw)
        worker_index = self._clients.get(client_id)
        span = obs.start_span(
            "cluster.request", client=client_id, worker=worker_index
        )
        try:
            response = self._handle(client_id, raw)
        except BaseException:
            obs.end_span(span, status="error")
            raise
        if response.startswith(b"HTTP/1.1 502 "):
            status = "worker-crash"
        elif response.startswith(b"HTTP/1.1 503 "):
            status = "refused"
        else:
            status = "ok"
        obs.registry.counter("cluster_requests_total", status=status).increment()
        obs.end_span(span, status=status)
        return response

    def _handle(self, client_id: str, raw: bytes) -> bytes:
        if client_id not in self._clients:
            raise SdradError(f"client {client_id!r} is not connected")
        worker = self.workers[self._clients[client_id]]
        self.metrics.requests += 1

        if worker.is_down:
            self.metrics.refused_worker_down += 1
            return b"HTTP/1.1 503 Service Unavailable\r\nContent-Length: 0\r\n\r\n"

        if client_id not in worker.server.connected_clients:
            # worker restarted since this client connected: the TCP
            # connection died with the old process; reconnect transparently
            # (what a retrying client/balancer does) but count the reset.
            self.metrics.connections_reset += 1
            worker.server.connect(client_id)

        try:
            response = worker.server.handle(client_id, raw)
        except ProcessCrashed:
            self.metrics.worker_crashes += 1
            self.metrics.per_worker_crashes[worker.index] = (
                self.metrics.per_worker_crashes.get(worker.index, 0) + 1
            )
            restart = worker.crash_and_schedule_restart()
            self.metrics.worker_restarts += 1
            if self.obs is not None:
                self.obs.event(
                    "worker.restart",
                    worker=worker.index,
                    cause="process-crash",
                    duration=restart,
                )
                self.obs.registry.counter("cluster_worker_restarts_total").increment()
            return b"HTTP/1.1 502 Bad Gateway\r\nContent-Length: 0\r\n\r\n"
        self.metrics.served += 1
        return response

    # ------------------------------------------------------------------

    def total_rewinds(self) -> int:
        """Rewinds across all workers (survives worker restarts only for
        currently-live processes, like any in-process counter would)."""
        return sum(worker.server.metrics.rewinds for worker in self.workers)

    def worker_of(self, client_id: str) -> int:
        if client_id not in self._clients:
            raise SdradError(f"client {client_id!r} is not connected")
        return self._clients[client_id]

    def downtime_fraction(self, horizon: float) -> float:
        """Aggregate capacity lost to worker restarts over ``[0, horizon]``.

        Each worker contributes ``1/N`` of capacity. Outages are summed as
        the *recorded* intervals, individually clipped to the horizon — a
        restart window still open at the horizon counts only its elapsed
        part, and a worker can never be "more than down" no matter how its
        windows land. Concurrent outages on different workers add their
        capacity shares (partial capacity, not a binary up/down).
        """
        if horizon <= 0:
            raise SdradError(f"horizon must be positive, got {horizon}")
        total = 0.0
        for worker in self.workers:
            for start, end in worker.outages:
                total += max(0.0, min(end, horizon) - min(start, horizon))
        return total / (len(self.workers) * horizon)

    def capacity_dip(self, horizon: float) -> float:
        """Worst instantaneous capacity loss in ``[0, horizon]``: the peak
        fraction of workers down *at the same moment*.

        ``downtime_fraction`` is the time-averaged loss; this is the depth
        of the worst dip — 0.25 when one of four workers was down, 0.5 if
        two outages ever overlapped, and so on. A sweep over interval
        endpoints is exact because concurrency only changes there.
        """
        if horizon <= 0:
            raise SdradError(f"horizon must be positive, got {horizon}")
        intervals = [
            (min(start, horizon), min(end, horizon))
            for worker in self.workers
            for start, end in worker.outages
        ]
        intervals = [(s, e) for s, e in intervals if e > s]
        if not intervals:
            return 0.0
        peak = 0
        for probe, _ in intervals:
            down = sum(1 for s, e in intervals if s <= probe < e)
            peak = max(peak, down)
        return peak / len(self.workers)
