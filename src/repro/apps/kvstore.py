"""A Memcached-like in-memory key-value store on the simulated memory.

The paper's flagship use case. Items live in a slab arena in *shared/root*
memory (outside every client domain) so that rewinding a compromised client
domain never touches the database — the separation SDRaD's Memcached
retrofit establishes. The store itself is trusted-side code; the *parsing*
of client input happens inside domains (see ``memcached_server``).

Item layout inside a slab chunk::

    +0   u16  key length
    +2   u16  flags
    +4   u32  value length
    +8   ...  key bytes
    +8+klen   value bytes

An LRU list provides Memcached's eviction policy when the slab arena fills.
"""

from __future__ import annotations

import struct
from collections import OrderedDict
from dataclasses import dataclass
from typing import Optional

from ..errors import AllocationFailure, SdradError
from ..memory.slab import CHUNK_HEADER, SlabAllocator, default_size_classes
from ..sdrad.runtime import SdradRuntime

ITEM_HEADER = 8
MAX_KEY_LEN = 250  # memcached protocol limit

_ITEM_STRUCT = struct.Struct("<HHI")  # key length, flags, value length


@dataclass
class StoreStats:
    """Hit/miss/eviction counters (the ``stats`` command's core fields)."""

    gets: int = 0
    sets: int = 0
    deletes: int = 0
    hits: int = 0
    misses: int = 0
    evictions: int = 0
    expired: int = 0

    @property
    def hit_rate(self) -> float:
        return self.hits / self.gets if self.gets else 0.0


class KVStore:
    """Slab-backed key-value store with LRU eviction."""

    def __init__(
        self,
        runtime: SdradRuntime,
        arena_size: int = 4 * 1024 * 1024,
        slab_page_size: int = 64 * 1024,
    ) -> None:
        self.runtime = runtime
        base = runtime.map_shared_region(arena_size)
        # Size classes must fit the configured slab page (memcached caps its
        # largest class the same way).
        largest = min(16 * 1024, slab_page_size - CHUNK_HEADER)
        self.slabs = SlabAllocator(
            runtime.space,
            base,
            arena_size,
            chunk_sizes=default_size_classes(largest=largest),
            slab_page_size=slab_page_size,
        )
        # key -> payload address; ordered by recency (LRU at the front).
        self._index: "OrderedDict[bytes, int]" = OrderedDict()
        self.stats = StoreStats()
        # Compiled kernel window over the slab arena: item headers and
        # bodies are trusted-side reads, all within [base, base+arena_size).
        self._arena_base = base
        self._arena_size = arena_size
        self._plan = None

    def _arena_plan(self):
        plan = self._plan
        if plan is not None and plan.cell[0]:
            return plan
        cache = self.runtime.space.plans
        if cache is None:
            return None
        self._plan = cache.kernel_plan(self._arena_base, self._arena_size)
        return self._plan

    # ------------------------------------------------------------------
    # Operations
    # ------------------------------------------------------------------

    def set(self, key: bytes, value: bytes, flags: int = 0) -> None:
        """Store ``value`` under ``key``, evicting LRU items if needed."""
        self._validate_key(key)
        if len(value) > 0xFFFFFFFF:
            raise SdradError("value too large")
        self.stats.sets += 1
        if key in self._index:
            self._free_item(key)
        needed = ITEM_HEADER + len(key) + len(value)
        addr = self._alloc_with_eviction(needed)
        header = _ITEM_STRUCT.pack(len(key), flags & 0xFFFF, len(value))
        plan = self._arena_plan()
        if plan is not None:
            plan.store(addr, header + key + value)
        else:
            self.runtime.space.raw_store(addr, header + key + value)
        self._index[key] = addr
        self._index.move_to_end(key)
        self.runtime.charge(self.runtime.cost.memcached_op)

    def get(self, key: bytes) -> Optional[tuple[bytes, int]]:
        """Return ``(value, flags)`` or ``None`` on miss."""
        self._validate_key(key)
        self.stats.gets += 1
        addr = self._index.get(key)
        self.runtime.charge(self.runtime.cost.memcached_op)
        if addr is None:
            self.stats.misses += 1
            return None
        self.stats.hits += 1
        self._index.move_to_end(key)
        value, flags = self._read_item(addr, key)
        return value, flags

    def get_many(
        self, keys: list[bytes]
    ) -> dict[bytes, tuple[bytes, int]]:
        """Batched ``get`` (the protocol's multi-key ``get k1 k2 ...``).

        Hit items are read with batched kernel-path loads instead of one
        round-trip per item; stats and LRU behaviour match per-key ``get``.
        """
        hits: list[tuple[bytes, int]] = []
        for key in keys:
            self._validate_key(key)
            self.stats.gets += 1
            addr = self._index.get(key)
            if addr is None:
                self.stats.misses += 1
            else:
                self.stats.hits += 1
                self._index.move_to_end(key)
                hits.append((key, addr))
        self.runtime.charge(len(keys) * self.runtime.cost.memcached_op)
        if not hits:
            return {}
        plan = self._arena_plan()
        if plan is not None:
            unpack = plan.unpack_from
            load = plan.load
            out = {}
            for key, addr in hits:
                klen, flags, vlen = unpack(_ITEM_STRUCT, addr)
                body = load(addr + ITEM_HEADER, klen + vlen)
                if body[:klen] != key:
                    raise SdradError("index/item key mismatch — store corrupted")
                out[key] = (body[klen:], flags)
            return out
        space = self.runtime.space
        headers = [
            _ITEM_STRUCT.unpack(raw)
            for raw in space.raw_load_many((addr, ITEM_HEADER) for _, addr in hits)
        ]
        bodies = space.raw_load_many(
            (addr + ITEM_HEADER, klen + vlen)
            for (_, addr), (klen, _, vlen) in zip(hits, headers)
        )
        out: dict[bytes, tuple[bytes, int]] = {}
        for (key, _), (klen, flags, _), body in zip(hits, headers, bodies):
            if body[:klen] != key:
                raise SdradError("index/item key mismatch — store corrupted")
            out[key] = (body[klen:], flags)
        return out

    def add(self, key: bytes, value: bytes, flags: int = 0) -> bool:
        """Store only if the key is absent (the ``add`` command)."""
        self._validate_key(key)
        self.runtime.charge(self.runtime.cost.memcached_op)
        if key in self._index:
            return False
        self.set(key, value, flags)
        return True

    def replace(self, key: bytes, value: bytes, flags: int = 0) -> bool:
        """Store only if the key exists (the ``replace`` command)."""
        self._validate_key(key)
        self.runtime.charge(self.runtime.cost.memcached_op)
        if key not in self._index:
            return False
        self.set(key, value, flags)
        return True

    def incr(self, key: bytes, delta: int) -> Optional[int]:
        """Increment a decimal-ASCII value (the ``incr``/``decr`` commands).

        Returns the new value, or ``None`` when the key is missing or not a
        number — memcached's exact semantics, including clamping decrements
        at zero.
        """
        self._validate_key(key)
        self.runtime.charge(self.runtime.cost.memcached_op)
        addr = self._index.get(key)
        if addr is None:
            return None
        value, flags = self._read_item(addr, key)
        try:
            current = int(value)
        except ValueError:
            return None
        if current < 0:
            return None
        new = max(0, current + delta)
        self.set(key, b"%d" % new, flags)
        return new

    def delete(self, key: bytes) -> bool:
        self._validate_key(key)
        self.stats.deletes += 1
        self.runtime.charge(self.runtime.cost.memcached_op)
        if key not in self._index:
            return False
        self._free_item(key)
        return True

    def flush_all(self) -> None:
        """Drop every item (the ``flush_all`` command)."""
        self.slabs.reset()
        self._index.clear()

    # ------------------------------------------------------------------
    # Introspection (drives E2's dataset-size axis)
    # ------------------------------------------------------------------

    @property
    def item_count(self) -> int:
        return len(self._index)

    def state_bytes(self) -> int:
        """Bytes of service state a restart would have to reload."""
        return self.slabs.resident_bytes()

    def contains(self, key: bytes) -> bool:
        return key in self._index

    def keys(self) -> list[bytes]:
        return list(self._index)

    # ------------------------------------------------------------------
    # Internals
    # ------------------------------------------------------------------

    def _validate_key(self, key: bytes) -> None:
        if not key:
            raise SdradError("empty key")
        if len(key) > MAX_KEY_LEN:
            raise SdradError(f"key exceeds protocol limit ({len(key)} > {MAX_KEY_LEN})")
        if b" " in key or b"\r" in key or b"\n" in key:
            raise SdradError("key contains protocol delimiters")

    def _alloc_with_eviction(self, needed: int) -> int:
        while True:
            try:
                return self.slabs.alloc(needed)
            except AllocationFailure:
                if not self._index:
                    raise
                # Evict the least recently used item and retry.
                lru_key = next(iter(self._index))
                self._free_item(lru_key)
                self.stats.evictions += 1

    def _free_item(self, key: bytes) -> None:
        addr = self._index.pop(key)
        self.slabs.free(addr)

    def _read_item(self, addr: int, key: bytes) -> tuple[bytes, int]:
        # One header decode plus one fused key+value read, both through the
        # compiled arena window — the hot path of every hit.
        plan = self._arena_plan()
        if plan is not None:
            klen, flags, vlen = plan.unpack_from(_ITEM_STRUCT, addr)
            body = plan.load(addr + ITEM_HEADER, klen + vlen)
        else:
            space = self.runtime.space
            header = space.raw_view(addr, ITEM_HEADER)
            klen, flags, vlen = _ITEM_STRUCT.unpack(header)
            body = space.raw_load(addr + ITEM_HEADER, klen + vlen)
        if body[:klen] != key:
            raise SdradError("index/item key mismatch — store corrupted")
        return body[klen:], flags
