"""A native image-decoding library — the SDRaD-FFI "real-world use case".

§III motivates SDRaD-FFI with Rust applications that call legacy native
libraries; image decoders are the canonical example (libpng/libjpeg CVEs
are a genre of their own). This module provides:

* a toy RLE-compressed image format ("SIF" — simple image format);
* :func:`encode_image` — a safe, trusted-side encoder;
* :func:`decode_image_unsafe` — the "native C decoder": it allocates the
  pixel buffer from *header-declared* dimensions and decompresses RLE runs
  into it trusting the *stream's* run lengths. Two classic bugs:

  1. header dimension lies → undersized buffer → heap overflow while
     decompressing (CVE-shaped: integer-driven allocation mismatch);
  2. RLE run overrun → writes past the buffer even with honest dimensions;

* :class:`ImageService` — the application: decodes untrusted images through
  a ``@sandboxed`` decoder with a placeholder-image alternate action.

SIF layout::

    +0   4s   magic   b"SIF1"
    +4   u16  width
    +6   u16  height
    +8   u8   channels (1 or 3)
    +9   ...  RLE stream: (count:u8, value:u8 × channels) repeated
"""

from __future__ import annotations

import struct
from dataclasses import dataclass
from typing import Optional

from ..errors import SdradError
from ..ffi.fallback import fallback_call
from ..ffi.sandbox import Sandbox
from ..sdrad.runtime import DomainHandle

MAGIC = b"SIF1"
HEADER = struct.Struct(">4sHHB")
MAX_DIMENSION = 4096


@dataclass(frozen=True)
class Image:
    """A decoded image (trusted-side representation)."""

    width: int
    height: int
    channels: int
    pixels: bytes

    def __post_init__(self) -> None:
        expected = self.width * self.height * self.channels
        if len(self.pixels) != expected:
            raise SdradError(
                f"pixel buffer is {len(self.pixels)} bytes, expected {expected}"
            )

    @property
    def size_bytes(self) -> int:
        return len(self.pixels)


def encode_image(image: Image) -> bytes:
    """Encode with per-pixel-run RLE (trusted-side, safe)."""
    out = bytearray(HEADER.pack(MAGIC, image.width, image.height, image.channels))
    stride = image.channels
    pixels = image.pixels
    i = 0
    total = image.width * image.height
    while i < total:
        run_value = pixels[i * stride : (i + 1) * stride]
        run_length = 1
        while (
            run_length < 255
            and i + run_length < total
            and pixels[(i + run_length) * stride : (i + run_length + 1) * stride]
            == run_value
        ):
            run_length += 1
        out.append(run_length)
        out += run_value
        i += run_length
    return bytes(out)


def make_test_image(width: int = 8, height: int = 8, channels: int = 3) -> Image:
    """A deterministic gradient image for tests and examples."""
    pixels = bytearray()
    for y in range(height):
        for x in range(width):
            for c in range(channels):
                pixels.append((x * 31 + y * 17 + c * 77) & 0xFF)
    return Image(width=width, height=height, channels=channels, pixels=bytes(pixels))


def craft_dimension_lie(data: bytes, width: int, height: int) -> bytes:
    """Attack 1: rewrite the header dimensions without touching the stream."""
    magic, _w, _h, channels = HEADER.unpack_from(data)
    return HEADER.pack(magic, width, height, channels) + data[HEADER.size :]


def craft_run_overflow(channels: int = 3, runs: int = 64) -> bytes:
    """Attack 2: honest tiny dimensions, but far more RLE data than fits."""
    header = HEADER.pack(MAGIC, 2, 2, channels)
    stream = (bytes([255]) + b"\xee" * channels) * runs
    return header + stream


def decode_image_unsafe(handle: DomainHandle, data: bytes) -> dict:
    """The "native C decoder": runs inside the sandbox domain.

    Returns a dict (the FFI data model) rather than an :class:`Image`;
    the trusted side re-validates and constructs the typed object.
    """
    if len(data) < HEADER.size:
        return {"error": "truncated header"}
    magic, width, height, channels = HEADER.unpack_from(data)
    if magic != MAGIC:
        return {"error": "bad magic"}
    if channels not in (1, 3):
        return {"error": "bad channel count"}
    # BUG 1 enabler: the buffer is sized from header fields with no
    # plausibility check against the stream.
    buffer_size = width * height * channels
    buf = handle.malloc(max(buffer_size, 1))
    offset = 0
    position = HEADER.size
    while position < len(data):
        count = data[position]
        value = data[position + 1 : position + 1 + channels]
        if len(value) < channels:
            break
        position += 1 + channels
        # BUG 2: the run is written without checking it fits the buffer.
        handle.store(buf + offset, value * count)
        offset += count * channels
    pixels = handle.load(buf, buffer_size) if buffer_size else b""
    handle.free(buf)
    return {
        "width": width,
        "height": height,
        "channels": channels,
        "pixels": bytes(pixels),
    }


PLACEHOLDER = Image(width=1, height=1, channels=3, pixels=b"\x7f\x7f\x7f")


class ImageService:
    """The application: decode untrusted images, never crash.

    The decoder is retrofitted with exactly one annotation (§III's pitch);
    a crafted image costs one domain rewind and yields the placeholder.
    """

    def __init__(self, sandbox: Sandbox, max_result_bytes: int = 2 * 1024 * 1024) -> None:
        self.sandbox = sandbox
        self.decoded = 0
        self.rejected = 0
        self.contained = 0

        def placeholder_action(report, data):
            self.contained += 1
            return {
                "width": PLACEHOLDER.width,
                "height": PLACEHOLDER.height,
                "channels": PLACEHOLDER.channels,
                "pixels": PLACEHOLDER.pixels,
            }

        self._decode = sandbox.sandboxed(
            decode_image_unsafe,
            wants_handle=True,
            fallback=fallback_call(placeholder_action),
            heap_size=4 * 1024 * 1024,
            max_result_bytes=max_result_bytes,
        )

    def decode(self, data: bytes) -> Optional[Image]:
        """Decode untrusted bytes; placeholder on exploit, None on garbage."""
        result = self._decode(data)
        if "error" in result:
            self.rejected += 1
            return None
        if not (
            0 < result["width"] <= MAX_DIMENSION
            and 0 < result["height"] <= MAX_DIMENSION
        ):
            self.rejected += 1
            return None
        self.decoded += 1
        return Image(
            width=result["width"],
            height=result["height"],
            channels=result["channels"],
            pixels=result["pixels"],
        )
