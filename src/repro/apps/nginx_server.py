"""An NGINX-like HTTP server with SDRaD-isolated worker parsing.

The second of the paper's three use cases. NGINX's architecture maps onto
SDRaD naturally: each worker's request-processing runs in a domain, the
routing table and accounting stay in root memory. A crafted request that
smashes the parser is rewound and answered with ``500``; in the unisolated
baseline it kills the worker process.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from ..errors import SdradError
from ..sdrad.constants import DomainFlags
from ..sdrad.policy import ProcessCrashed
from ..sdrad.runtime import SdradRuntime
from ..sdrad.watchdog import FaultWatchdog
from .http import (
    HttpResponse,
    Router,
    default_router,
    parse_pipeline_in_domain,
    parse_request_in_domain,
)
from .memcached_server import IsolationMode


@dataclass
class NginxMetrics:
    requests: int = 0
    responses_2xx: int = 0
    responses_4xx: int = 0
    responses_5xx: int = 0
    rewinds: int = 0
    crashes: int = 0
    quarantines: int = 0
    quarantine_refusals: int = 0
    per_client_faults: dict[str, int] = field(default_factory=dict)


def _response_status(response: bytes) -> str:
    """Span/metric status from the wire bytes of an encoded response.

    ``refused`` — quarantine 429 (no domain work happened); ``fault`` — a
    rewound parser fault answered 500; ``ok`` — everything else (4xx for
    bad input is the server working correctly).
    """
    if response.startswith(b"HTTP/1.1 429 "):
        return "refused"
    if response.startswith(b"HTTP/1.1 500 "):
        return "fault"
    return "ok"


class NginxServer:
    """Connection-oriented HTTP server over the SDRaD runtime."""

    def __init__(
        self,
        runtime: SdradRuntime,
        router: Optional[Router] = None,
        isolation: IsolationMode = IsolationMode.PER_CONNECTION,
        domain_heap_size: int = 128 * 1024,
        watchdog: Optional["FaultWatchdog"] = None,
    ) -> None:
        self.runtime = runtime
        self.router = router if router is not None else default_router()
        self.isolation = isolation
        self.domain_heap_size = domain_heap_size
        self.watchdog = watchdog
        self.metrics = NginxMetrics()
        self._connections: dict[str, int] = {}

    # ------------------------------------------------------------------

    def connect(self, client_id: str) -> None:
        if client_id in self._connections:
            raise SdradError(f"client {client_id!r} already connected")
        if self.isolation is IsolationMode.PER_CONNECTION:
            domain = self.runtime.domain_init(
                flags=DomainFlags.RETURN_TO_PARENT,
                heap_size=self.domain_heap_size,
            )
            self._connections[client_id] = domain.udi
        else:
            self._connections[client_id] = -1

    def disconnect(self, client_id: str) -> None:
        udi = self._connections.pop(client_id, None)
        if udi is not None and udi >= 0:
            self.runtime.domain_destroy(udi)

    @property
    def connected_clients(self) -> list[str]:
        return list(self._connections)

    # ------------------------------------------------------------------

    def handle(self, client_id: str, raw: bytes) -> bytes:
        """Process one HTTP request; returns the encoded response."""
        obs = self.runtime.obs
        if obs is None:
            return self._handle(client_id, raw)
        span = obs.start_span("nginx.request", client=client_id)
        started = self.runtime.clock.now
        try:
            response = self._handle(client_id, raw)
        except BaseException:
            obs.record_request(
                "nginx", self.runtime.clock.now - started, status="crash"
            )
            obs.end_span(span, status="crash")
            raise
        status = _response_status(response)
        obs.record_request("nginx", self.runtime.clock.now - started, status)
        obs.end_span(span, status=status)
        return response

    def _handle(self, client_id: str, raw: bytes) -> bytes:
        if client_id not in self._connections:
            raise SdradError(f"client {client_id!r} is not connected")
        self.metrics.requests += 1
        if self.watchdog is not None and self.watchdog.is_quarantined(client_id):
            self.metrics.quarantine_refusals += 1
            return HttpResponse(
                status=429, reason="Too Many Requests", body=b"quarantined\n"
            ).encode()
        self.runtime.charge(self.runtime.cost.nginx_request)

        if self.isolation is IsolationMode.NONE:
            try:
                request = self.runtime.execute_unisolated(
                    parse_request_in_domain, raw
                )
            except ProcessCrashed:
                self.metrics.crashes += 1
                self._bump_fault(client_id)
                raise
            return self._respond(request)

        udi, ephemeral = self._domain_for_request(client_id)
        try:
            result = self.runtime.execute(udi, parse_request_in_domain, raw)
        finally:
            if ephemeral:
                self.runtime.domain_destroy(udi)
        if not result.ok:
            self.metrics.rewinds += 1
            self.metrics.responses_5xx += 1
            self._bump_fault(client_id)
            if self.watchdog is not None and self.watchdog.record_fault(client_id):
                self.metrics.quarantines += 1
            return HttpResponse(
                status=500,
                reason="Internal Server Error",
                body=b"request discarded\n",
            ).encode()
        return self._respond(result.value)

    def handle_batch(self, client_id: str, raws: list[bytes]) -> list[bytes]:
        """Process an HTTP/1.1 pipeline in one domain entry.

        Mirrors :meth:`MemcachedServer.handle_batch`: the whole pipeline is
        parsed inside a single enter/exit of the connection's domain and
        routed trusted-side afterwards. A fault while parsing rewinds the
        (side-effect-free) batch and the server falls back to per-request
        handling, so only the offending request answers 500.
        """
        obs = self.runtime.obs
        if obs is None:
            return self._handle_batch(client_id, raws)
        span = obs.start_span("nginx.batch", client=client_id, size=len(raws))
        started = self.runtime.clock.now
        try:
            responses = self._handle_batch(client_id, raws)
        except BaseException:
            obs.record_batch("nginx", len(raws))
            obs.end_span(span, status="crash")
            raise
        elapsed = self.runtime.clock.now - started
        obs.record_batch("nginx", len(raws))
        share = elapsed / len(responses) if responses else 0.0
        statuses = [_response_status(response) for response in responses]
        for status in statuses:
            obs.record_request("nginx", share, status)
        batch_status = "ok" if all(s == "ok" for s in statuses) else "partial"
        obs.end_span(span, status=batch_status)
        return responses

    def _handle_batch(self, client_id: str, raws: list[bytes]) -> list[bytes]:
        if client_id not in self._connections:
            raise SdradError(f"client {client_id!r} is not connected")
        if not raws:
            return []
        if self.isolation is not IsolationMode.PER_CONNECTION or (
            self.watchdog is not None and self.watchdog.is_quarantined(client_id)
        ):
            return [self._handle(client_id, raw) for raw in raws]
        udi = self._connections[client_id]
        self.runtime.charge(len(raws) * self.runtime.cost.nginx_request)
        result = self.runtime.execute(udi, parse_pipeline_in_domain, raws)
        if not result.ok:
            # Nothing was routed before the fault; re-handle individually.
            return [self._handle(client_id, raw) for raw in raws]
        self.metrics.requests += len(raws)
        return [self._respond(request) for request in result.value]

    # ------------------------------------------------------------------

    def _domain_for_request(self, client_id: str) -> tuple[int, bool]:
        if self.isolation is IsolationMode.PER_REQUEST:
            domain = self.runtime.domain_init(
                flags=DomainFlags.RETURN_TO_PARENT,
                heap_size=self.domain_heap_size,
            )
            return domain.udi, True
        return self._connections[client_id], False

    def _respond(self, request) -> bytes:
        if request is None:
            self.metrics.responses_4xx += 1
            return HttpResponse(
                status=400, reason="Bad Request", body=b"bad request\n"
            ).encode()
        response = self.router.route(request)
        if 200 <= response.status < 300:
            self.metrics.responses_2xx += 1
        elif 400 <= response.status < 500:
            self.metrics.responses_4xx += 1
        else:
            self.metrics.responses_5xx += 1
        return response.encode()

    def _bump_fault(self, client_id: str) -> None:
        faults = self.metrics.per_client_faults
        faults[client_id] = faults.get(client_id, 0) + 1
