"""A toy TLS record/handshake layer with a Heartbleed-shaped vulnerability.

The third use case (OpenSSL). The record layer and heartbeat responder are
modelled closely enough that the *vulnerability has the same anatomy* as
CVE-2014-0160: the heartbeat request carries a client-declared payload
length, and the responder echoes ``declared`` bytes starting from a buffer
that only holds the *actual* payload — an over-read into whatever lies
after the buffer.

What the over-read can reach is exactly the experiment: run unisolated, the
buffer sits in root memory next to *every session's secrets*; run inside a
per-client SDRaD domain, it can reach only that client's own domain memory,
and reading past the domain trips MPK.

Record format (TLS 1.2-flavoured)::

    +0  u8   content type   (22 handshake, 23 appdata, 24 heartbeat)
    +1  u16  version        (0x0303)
    +3  u16  length
    +5  ...  payload

Heartbeat payload::

    +0  u8   hb type        (1 request, 2 response)
    +1  u16  declared payload length     <-- attacker-controlled
    +3  ...  payload bytes  (actual)
    ...      padding (>= 16 bytes on requests)
"""

from __future__ import annotations

import enum
import struct
from dataclasses import dataclass

from ..sdrad.runtime import DomainHandle

VERSION_TLS12 = 0x0303
HEARTBEAT_PADDING = 16


class ContentType(enum.IntEnum):
    HANDSHAKE = 22
    APPLICATION_DATA = 23
    HEARTBEAT = 24


class HandshakeType(enum.IntEnum):
    CLIENT_HELLO = 1
    SERVER_HELLO = 2
    FINISHED = 20


class HeartbeatType(enum.IntEnum):
    REQUEST = 1
    RESPONSE = 2


@dataclass(frozen=True)
class TlsRecord:
    content_type: int
    version: int
    payload: bytes

    def encode(self) -> bytes:
        if len(self.payload) > 0xFFFF:
            raise ValueError("TLS record payload exceeds 2^16-1 bytes")
        return (
            struct.pack(">BHH", self.content_type, self.version, len(self.payload))
            + self.payload
        )


def decode_record(raw: bytes) -> TlsRecord | None:
    """Parse one record; ``None`` for truncated/garbage input.

    Note the decode is honest about the length field: a record whose
    declared length exceeds the bytes on the wire is rejected *here* — the
    heartbeat bug lives one layer up, in the heartbeat payload's own
    declared length, exactly as in OpenSSL.
    """
    if len(raw) < 5:
        return None
    content_type, version, length = struct.unpack(">BHH", raw[:5])
    payload = raw[5 : 5 + length]
    if len(payload) != length:
        return None
    return TlsRecord(content_type=content_type, version=version, payload=payload)


def make_client_hello(client_random: bytes = b"\x00" * 32) -> bytes:
    payload = struct.pack(">B", HandshakeType.CLIENT_HELLO) + client_random
    return TlsRecord(ContentType.HANDSHAKE, VERSION_TLS12, payload).encode()


def make_finished() -> bytes:
    payload = struct.pack(">B", HandshakeType.FINISHED)
    return TlsRecord(ContentType.HANDSHAKE, VERSION_TLS12, payload).encode()


def make_appdata(data: bytes) -> bytes:
    return TlsRecord(ContentType.APPLICATION_DATA, VERSION_TLS12, data).encode()


def make_heartbeat_request(payload: bytes, declared: int | None = None) -> bytes:
    """Build a heartbeat request. ``declared != len(payload)`` is the attack."""
    if declared is None:
        declared = len(payload)
    hb = (
        struct.pack(">BH", HeartbeatType.REQUEST, declared)
        + payload
        + b"\x10" * HEARTBEAT_PADDING
    )
    return TlsRecord(ContentType.HEARTBEAT, VERSION_TLS12, hb).encode()


def mask_record_in_domain(
    handle: DomainHandle, data: bytes, secret: bytes
) -> bytes:
    """Application-record processing inside the session's domain.

    Models the record layer's work on in-domain buffers: the ciphertext is
    staged into domain memory, transformed with the session secret (a toy
    XOR standing in for AES-GCM), and the result read back out. Running
    this in-domain is what puts record parsing — Heartbleed's neighbourhood
    — behind the protection key.
    """
    buf = handle.malloc(max(len(data), 1))
    handle.store(buf, data)
    staged = bytes(handle.load_view(buf, len(data))) if data else b""
    if staged:
        # Wide XOR over the whole record instead of a per-byte loop; the
        # keystream repeats the secret to cover the record, as before.
        keystream = secret * (len(staged) // len(secret) + 1)
        masked = (
            int.from_bytes(staged, "little")
            ^ int.from_bytes(keystream[: len(staged)], "little")
        ).to_bytes(len(staged), "little")
    else:
        masked = b""
    handle.store(buf, masked or b"\x00")
    out = bytes(handle.load_view(buf, len(masked))) if masked else b""
    handle.free(buf)
    return out


def process_heartbeat_in_domain(handle: DomainHandle, hb_payload: bytes) -> bytes:
    """The vulnerable heartbeat responder (``tls1_process_heartbeat``).

    Copies the *actual* payload into a heap buffer, then builds the response
    by reading ``declared`` bytes from that buffer — the over-read. Returns
    the heartbeat-response payload (possibly containing leaked memory).
    """
    if len(hb_payload) < 3:
        return b""
    hb_type, declared = struct.unpack(">BH", hb_payload[:3])
    if hb_type != HeartbeatType.REQUEST:
        return b""
    actual = hb_payload[3:]
    if len(actual) > HEARTBEAT_PADDING:
        actual = actual[: len(actual) - HEARTBEAT_PADDING]
    # The response record must still be encodable (type + length prefix),
    # so the echo is capped at what one record can carry — the OpenSSL bug
    # had the same ~64 KiB-per-request ceiling.
    echo_len = max(min(declared, 0xFFFF - 3), 1)
    # memcpy(buffer, request.payload, actual_length) ...
    buf = handle.malloc(max(len(actual), 1))
    handle.store(buf, actual)
    # ... then memcpy(response, buffer, DECLARED length). The bug: the view
    # covers ``declared`` bytes from the buffer's start, checked (and
    # containable) exactly like the copying load it replaces.
    echoed = bytes(handle.load_view(buf, echo_len))
    handle.free(buf)
    return struct.pack(">BH", HeartbeatType.RESPONSE, declared) + echoed
