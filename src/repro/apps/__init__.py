"""Use-case applications: the paper's Memcached, NGINX and OpenSSL replicas."""

from .cluster import ClusterMetrics, NginxCluster
from .imagelib import (
    Image,
    ImageService,
    craft_dimension_lie,
    craft_run_overflow,
    decode_image_unsafe,
    encode_image,
    make_test_image,
)
from .http import (
    HttpRequest,
    HttpResponse,
    Router,
    default_router,
    parse_request_in_domain,
)
from .kvstore import KVStore, StoreStats
from .memcached_server import IsolationMode, MemcachedServer, ServerMetrics
from .nginx_server import NginxMetrics, NginxServer
from .openssl_service import TlsMetrics, TlsServer, TlsSession
from .tls import (
    ContentType,
    HandshakeType,
    HeartbeatType,
    TlsRecord,
    decode_record,
    make_appdata,
    make_client_hello,
    make_finished,
    make_heartbeat_request,
    process_heartbeat_in_domain,
)

__all__ = [
    "ClusterMetrics",
    "NginxCluster",
    "Image",
    "ImageService",
    "craft_dimension_lie",
    "craft_run_overflow",
    "decode_image_unsafe",
    "encode_image",
    "make_test_image",
    "HttpRequest",
    "HttpResponse",
    "Router",
    "default_router",
    "parse_request_in_domain",
    "KVStore",
    "StoreStats",
    "IsolationMode",
    "MemcachedServer",
    "ServerMetrics",
    "NginxMetrics",
    "NginxServer",
    "TlsMetrics",
    "TlsServer",
    "TlsSession",
    "ContentType",
    "HandshakeType",
    "HeartbeatType",
    "TlsRecord",
    "decode_record",
    "make_appdata",
    "make_client_hello",
    "make_finished",
    "make_heartbeat_request",
    "process_heartbeat_in_domain",
]
