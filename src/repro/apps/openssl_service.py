"""A TLS termination service (the OpenSSL use case) over SDRaD domains.

Each client session holds a 48-byte *session secret* (the TLS master-secret
analogue). Where that secret physically lives is the whole experiment:

* ``PER_CONNECTION`` isolation — the secret is copied into the client's own
  domain heap; the (vulnerable) record processing for that client runs in
  the same domain. A Heartbleed over-read can leak at most the client's
  *own* session state, and past the domain boundary it trips MPK and the
  domain is rewound.
* ``NONE`` — all sessions' secrets live side by side in root memory, the
  responder runs unisolated, and one malicious heartbeat exfiltrates other
  clients' secrets (the 2014 disaster, reproduced).
"""

from __future__ import annotations

import struct
from dataclasses import dataclass, field
from typing import Optional

from ..errors import SdradError
from ..sdrad.constants import DomainFlags
from ..sdrad.policy import ProcessCrashed, RewindPolicy
from ..sdrad.runtime import SdradRuntime
from .memcached_server import IsolationMode
from .tls import (
    ContentType,
    HandshakeType,
    TlsRecord,
    VERSION_TLS12,
    decode_record,
    mask_record_in_domain,
    process_heartbeat_in_domain,
)

SECRET_LEN = 48


@dataclass
class TlsSession:
    client_id: str
    udi: int  # -1 when unisolated
    established: bool = False
    secret: bytes = b""
    secret_addr: int = 0  # where the secret lives in simulated memory
    records_processed: int = 0


@dataclass
class TlsMetrics:
    handshakes: int = 0
    heartbeats: int = 0
    appdata_records: int = 0
    rewinds: int = 0
    crashes: int = 0
    alerts: int = 0
    per_client_faults: dict[str, int] = field(default_factory=dict)


class TlsServer:
    """Session manager + record dispatcher for the toy TLS stack."""

    def __init__(
        self,
        runtime: SdradRuntime,
        isolation: IsolationMode = IsolationMode.PER_CONNECTION,
        domain_heap_size: int = 128 * 1024,
        domain_stack_size: int = 64 * 1024,
    ) -> None:
        self.runtime = runtime
        self.isolation = isolation
        self.domain_heap_size = domain_heap_size
        self.domain_stack_size = domain_stack_size
        self.metrics = TlsMetrics()
        self._sessions: dict[str, TlsSession] = {}
        self._secret_rng = runtime.rng.stream("tls/secrets")
        # Model the heap churn Heartbleed exploited: in the unisolated
        # build, connection scratch buffers come and go at low heap
        # addresses, so a later heartbeat buffer reuses a hole *below* the
        # resident session secrets and its over-read sweeps across them.
        self._scratch_addr: Optional[int] = None
        if isolation is IsolationMode.NONE:
            self._scratch_addr = self.runtime.root.heap.malloc(256)

    # ------------------------------------------------------------------
    # Session lifecycle
    # ------------------------------------------------------------------

    def connect(self, client_id: str) -> None:
        if client_id in self._sessions:
            raise SdradError(f"client {client_id!r} already connected")
        udi = -1
        if self.isolation is IsolationMode.PER_CONNECTION:
            domain = self.runtime.domain_init(
                flags=DomainFlags.RETURN_TO_PARENT,
                heap_size=self.domain_heap_size,
                stack_size=self.domain_stack_size,
            )
            udi = domain.udi
        self._sessions[client_id] = TlsSession(client_id=client_id, udi=udi)

    def disconnect(self, client_id: str) -> None:
        session = self._sessions.pop(client_id, None)
        if session is not None and session.udi >= 0:
            self.runtime.domain_destroy(session.udi)

    def session(self, client_id: str) -> TlsSession:
        try:
            return self._sessions[client_id]
        except KeyError:
            raise SdradError(f"client {client_id!r} is not connected") from None

    # ------------------------------------------------------------------
    # Record dispatch
    # ------------------------------------------------------------------

    def handle_record(self, client_id: str, raw: bytes) -> bytes:
        """Process one TLS record from the wire; returns the response bytes."""
        obs = self.runtime.obs
        if obs is None:
            return self._handle_record(client_id, raw)
        span = obs.start_span("tls.record", client=client_id)
        started = self.runtime.clock.now
        rewinds_before = self.metrics.rewinds
        try:
            response = self._handle_record(client_id, raw)
        except BaseException:
            obs.record_request(
                "tls", self.runtime.clock.now - started, status="crash"
            )
            obs.end_span(span, status="crash")
            raise
        # The TLS alert wire format does not distinguish "your heartbeat
        # faulted" from other internal errors, so the fault signal is the
        # server's own rewind count moving during this record.
        status = "fault" if self.metrics.rewinds > rewinds_before else "ok"
        obs.record_request("tls", self.runtime.clock.now - started, status)
        obs.end_span(span, status=status)
        return response

    def _handle_record(self, client_id: str, raw: bytes) -> bytes:
        session = self.session(client_id)
        record = decode_record(raw)
        if record is None:
            self.metrics.alerts += 1
            return self._alert(50)  # decode_error
        if record.content_type == ContentType.HANDSHAKE:
            return self._handle_handshake(session, record)
        if not session.established:
            self.metrics.alerts += 1
            return self._alert(10)  # unexpected_message
        if record.content_type == ContentType.HEARTBEAT:
            return self._handle_heartbeat(session, record)
        if record.content_type == ContentType.APPLICATION_DATA:
            return self._handle_appdata(session, record)
        self.metrics.alerts += 1
        return self._alert(10)

    # ------------------------------------------------------------------
    # Handshake
    # ------------------------------------------------------------------

    def _handle_handshake(self, session: TlsSession, record: TlsRecord) -> bytes:
        if not record.payload:
            self.metrics.alerts += 1
            return self._alert(50)
        hs_type = record.payload[0]
        if hs_type == HandshakeType.CLIENT_HELLO:
            self.runtime.charge(self.runtime.cost.tls_handshake)
            self.metrics.handshakes += 1
            session.secret = bytes(
                self._secret_rng.getrandbits(8) for _ in range(SECRET_LEN)
            )
            session.secret_addr = self._place_secret(session)
            session.established = True
            payload = struct.pack(">B", HandshakeType.SERVER_HELLO) + b"\x00" * 32
            return TlsRecord(ContentType.HANDSHAKE, VERSION_TLS12, payload).encode()
        if hs_type == HandshakeType.FINISHED:
            return TlsRecord(
                ContentType.HANDSHAKE,
                VERSION_TLS12,
                struct.pack(">B", HandshakeType.FINISHED),
            ).encode()
        self.metrics.alerts += 1
        return self._alert(10)

    def _place_secret(self, session: TlsSession) -> int:
        """Write the session secret into the memory its isolation dictates.

        Per-connection: the client's own domain. Per-request: nowhere
        resident (it is staged into each ephemeral domain on use). None:
        root memory, beside every other session's secret — the Heartbleed
        precondition.
        """
        if session.udi >= 0:
            return self.runtime.copy_into(session.udi, session.secret)
        if self.isolation is IsolationMode.PER_REQUEST:
            return 0
        addr = self.runtime.root.heap.malloc(SECRET_LEN)
        self.runtime.space.raw_store(addr, session.secret)
        return addr

    # ------------------------------------------------------------------
    # Heartbeat (the vulnerable path)
    # ------------------------------------------------------------------

    def _run_isolated(self, session: TlsSession, fn, *args):
        """Execute record processing in the session's (or an ephemeral)
        domain; returns the DomainResult."""
        if self.isolation is IsolationMode.PER_REQUEST:
            domain = self.runtime.domain_init(
                flags=DomainFlags.RETURN_TO_PARENT,
                heap_size=self.domain_heap_size,
                stack_size=self.domain_stack_size,
            )
            try:
                self.runtime.copy_into(domain.udi, session.secret)
                return self.runtime.execute(domain.udi, fn, *args, policy=RewindPolicy())
            finally:
                self.runtime.domain_destroy(domain.udi)
        return self.runtime.execute(session.udi, fn, *args, policy=RewindPolicy())

    def _handle_heartbeat(self, session: TlsSession, record: TlsRecord) -> bytes:
        self.metrics.heartbeats += 1
        session.records_processed += 1
        if self.isolation is IsolationMode.NONE:
            if self._scratch_addr is not None:
                # The connection scratch buffer is returned to the heap,
                # leaving a reusable hole below the session secrets.
                self.runtime.root.heap.free(self._scratch_addr)
                self._scratch_addr = None
            try:
                payload = self.runtime.execute_unisolated(
                    process_heartbeat_in_domain, record.payload
                )
            except ProcessCrashed:
                self.metrics.crashes += 1
                self._bump_fault(session.client_id)
                raise
            return TlsRecord(ContentType.HEARTBEAT, VERSION_TLS12, payload).encode()
        result = self._run_isolated(
            session, process_heartbeat_in_domain, record.payload
        )
        if not result.ok:
            # Rewind discarded the domain — including the staged secret.
            self.metrics.rewinds += 1
            self._bump_fault(session.client_id)
            self._restage_secret(session)
            return self._alert(80)  # internal_error, session survives
        return TlsRecord(ContentType.HEARTBEAT, VERSION_TLS12, result.value).encode()

    def _restage_secret(self, session: TlsSession) -> None:
        """After a rewind the domain heap is empty; re-stage session state.

        This is SDRaD's "reconstruct domain state from the trusted side"
        step, and its cost is charged through :meth:`copy_into`. Per-request
        sessions have nothing resident to restage.
        """
        if session.udi >= 0:
            session.secret_addr = self.runtime.copy_into(session.udi, session.secret)

    # ------------------------------------------------------------------
    # Application data
    # ------------------------------------------------------------------

    def _handle_appdata(self, session: TlsSession, record: TlsRecord) -> bytes:
        self.metrics.appdata_records += 1
        session.records_processed += 1
        kib = (len(record.payload) + 1023) // 1024
        self.runtime.charge(kib * self.runtime.cost.tls_record_per_kib)
        # Record processing happens on in-domain buffers (the toy XOR stands
        # in for AES-GCM); in the unisolated build it runs on root memory.
        if self.isolation is IsolationMode.NONE:
            body = self.runtime.execute_unisolated(
                mask_record_in_domain, record.payload, session.secret
            )
        else:
            result = self._run_isolated(
                session, mask_record_in_domain, record.payload, session.secret
            )
            if not result.ok:
                self.metrics.rewinds += 1
                self._bump_fault(session.client_id)
                self._restage_secret(session)
                return self._alert(80)
            body = result.value
        return TlsRecord(ContentType.APPLICATION_DATA, VERSION_TLS12, body).encode()

    # ------------------------------------------------------------------

    def _alert(self, code: int) -> bytes:
        return TlsRecord(21, VERSION_TLS12, bytes([2, code])).encode()

    def _bump_fault(self, client_id: str) -> None:
        faults = self.metrics.per_client_faults
        faults[client_id] = faults.get(client_id, 0) + 1

    # ------------------------------------------------------------------
    # Experiment helper
    # ------------------------------------------------------------------

    def leaked_secrets(self, response: bytes, exclude: str) -> list[str]:
        """Which *other* clients' secrets appear in ``response``?

        The E4/Heartbleed assertion: unisolated servers leak victims'
        secrets; per-connection isolation never does.
        """
        victims = []
        for client_id, session in self._sessions.items():
            if client_id == exclude or not session.secret:
                continue
            if session.secret in response:
                victims.append(client_id)
        return victims
