"""A small discrete-event simulation engine (SimPy-flavoured, self-contained).

Experiments E3–E5 simulate a service over long horizons (up to a year of
virtual time) with stochastic fault arrivals and client workloads. The engine
supports two styles:

* **callback events** — :meth:`Engine.schedule` a plain callable at an
  absolute time; and
* **process coroutines** — generator functions that ``yield`` either a float
  delay (sleep) or another :class:`Process` (join), scheduled with
  :meth:`Engine.spawn`.

The engine is single-threaded and deterministic: ties in event time are
broken by insertion order, so a given seed always produces the same history.
"""

from __future__ import annotations

import heapq
import itertools
from typing import TYPE_CHECKING, Callable, Generator, Optional, Union

from ..errors import SimulationError
from .clock import VirtualClock

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from ..obs.hub import Observability

#: What a process generator may yield: a delay in seconds, or a process to
#: join (resume when it finishes).
ProcessYield = Union[float, int, "Process"]
ProcessGenerator = Generator[ProcessYield, object, object]


class Process:
    """A simulated process driven by a generator.

    The generator's ``yield`` values control scheduling; its return value is
    captured in :attr:`result` when it finishes. Exceptions escaping the
    generator are stored in :attr:`error` and re-raised by :meth:`Engine.run`
    unless the process was spawned with ``daemon=True`` — including errors
    from invalid yields (negative delays, unsupported values). A process
    joining one that failed has the error thrown into it at the join point.
    """

    _ids = itertools.count()

    def __init__(self, generator: ProcessGenerator, name: str = "", daemon: bool = False) -> None:
        self.pid = next(Process._ids)
        self.name = name or f"process-{self.pid}"
        self.daemon = daemon
        self.generator = generator
        self.finished = False
        self.result: object = None
        self.error: Optional[BaseException] = None
        self._waiters: list[Process] = []

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = "finished" if self.finished else "running"
        return f"Process({self.name!r}, {state})"


class Engine:
    """The event loop: owns the clock and the pending-event heap."""

    def __init__(
        self,
        clock: Optional[VirtualClock] = None,
        obs: Optional["Observability"] = None,
    ) -> None:
        self.clock = clock if clock is not None else VirtualClock()
        self.obs = obs
        if obs is not None:
            obs.bind_clock(self.clock)
        self._heap: list[tuple[float, int, Callable[[], None]]] = []
        self._sequence = itertools.count()
        self._running = False
        self._live_processes = 0

    @property
    def now(self) -> float:
        return self.clock.now

    @property
    def pending_events(self) -> int:
        return len(self._heap)

    # ------------------------------------------------------------------
    # Scheduling primitives
    # ------------------------------------------------------------------

    def schedule(self, delay: float, callback: Callable[[], None]) -> None:
        """Run ``callback`` ``delay`` seconds from now."""
        if delay < 0:
            raise SimulationError(f"cannot schedule event {delay}s in the past")
        self.schedule_at(self.clock.now + delay, callback)

    def schedule_at(self, timestamp: float, callback: Callable[[], None]) -> None:
        """Run ``callback`` at absolute virtual time ``timestamp``."""
        if timestamp < self.clock.now:
            raise SimulationError(
                f"cannot schedule event at {timestamp} before now={self.clock.now}"
            )
        heapq.heappush(self._heap, (timestamp, next(self._sequence), callback))

    def spawn(
        self,
        generator: ProcessGenerator,
        name: str = "",
        daemon: bool = False,
        delay: float = 0.0,
    ) -> Process:
        """Start a process coroutine after ``delay`` seconds."""
        process = Process(generator, name=name, daemon=daemon)
        self._live_processes += 1
        if self.obs is not None:
            self.obs.registry.counter("engine_processes_spawned_total").increment()
            self.obs.registry.gauge("engine_live_processes").set(
                self._live_processes
            )
        self.schedule(delay, lambda: self._step(process, None))
        return process

    # ------------------------------------------------------------------
    # Execution
    # ------------------------------------------------------------------

    def run(self, until: Optional[float] = None) -> float:
        """Drain events (optionally only up to time ``until``).

        Returns the final clock value. Raises the first non-daemon process
        error encountered, after the failing event has been consumed.
        """
        if self._running:
            raise SimulationError("engine.run() is not reentrant")
        self._running = True
        try:
            dispatched = self.obs.registry.counter(
                "engine_events_dispatched_total"
            ) if self.obs is not None else None
            while self._heap:
                timestamp, _seq, callback = self._heap[0]
                if until is not None and timestamp > until:
                    break
                heapq.heappop(self._heap)
                self.clock.advance_to(timestamp)
                if dispatched is not None:
                    dispatched.increment()
                callback()
            if until is not None and self.clock.now < until:
                self.clock.advance_to(until)
        finally:
            self._running = False
        return self.clock.now

    def _step(
        self,
        process: Process,
        send_value: object,
        throw: Optional[BaseException] = None,
    ) -> None:
        """Advance one process coroutine by one yield.

        With ``throw`` set, the exception is thrown into the generator at
        its suspension point instead of sending a value — how a joined
        process's failure reaches its waiters.
        """
        try:
            if throw is not None:
                yielded = process.generator.throw(throw)
            else:
                yielded = process.generator.send(send_value)
        except StopIteration as stop:
            self._finish(process, result=stop.value)
            return
        except BaseException as exc:  # noqa: BLE001 - engine must capture all
            self._finish(process, error=exc)
            if not process.daemon:
                raise
            return
        self._dispatch_yield(process, yielded)

    def _dispatch_yield(self, process: Process, yielded: ProcessYield) -> None:
        if isinstance(yielded, Process):
            target = yielded
            if target.finished:
                if target.error is not None:
                    self.schedule(
                        0.0,
                        lambda: self._step(process, None, throw=target.error),
                    )
                else:
                    self.schedule(0.0, lambda: self._step(process, target.result))
            else:
                target._waiters.append(process)
            return
        if isinstance(yielded, (int, float)):
            delay = float(yielded)
            if delay < 0:
                self._bad_yield(
                    process,
                    SimulationError(
                        f"process {process.name!r} yielded negative delay {delay}"
                    ),
                )
                return
            self.schedule(delay, lambda: self._step(process, None))
            return
        self._bad_yield(
            process,
            SimulationError(
                f"process {process.name!r} yielded unsupported value {yielded!r}"
            ),
        )

    def _bad_yield(self, process: Process, error: SimulationError) -> None:
        """Kill a process over an invalid yield, honouring daemon status.

        Mirrors :meth:`_step`: a daemon's error is captured on the process
        without crashing the event loop; a non-daemon error propagates out
        of :meth:`run`.
        """
        self._finish(process, error=error)
        if not process.daemon:
            raise error

    def _finish(
        self,
        process: Process,
        result: object = None,
        error: Optional[BaseException] = None,
    ) -> None:
        process.finished = True
        process.result = result
        process.error = error
        self._live_processes -= 1
        if self.obs is not None:
            self.obs.registry.gauge("engine_live_processes").set(
                self._live_processes
            )
        for waiter in process._waiters:
            if error is not None:
                # A join on a failed process must not look like success:
                # the error is thrown into the waiter at its yield, where
                # it can be caught (try/except around the join) or, if
                # uncaught, fails the waiter in turn.
                self.schedule(
                    0.0, lambda w=waiter: self._step(w, None, throw=error)
                )
            else:
                self.schedule(0.0, lambda w=waiter: self._step(w, result))
        process._waiters.clear()
