"""Discrete-event simulation substrate.

Everything the reproduction measures runs against this package's virtual
clock and cost model; see ``DESIGN.md`` §2 for why wall-clock measurement is
substituted out.
"""

from .clock import (
    DAYS,
    HOURS,
    MICROSECONDS,
    MILLISECONDS,
    MINUTES,
    NANOSECONDS,
    SECONDS,
    YEARS,
    Stopwatch,
    VirtualClock,
)
from .cost import DEFAULT_COST_MODEL, GIB, CostModel
from .engine import Engine, Process
from .metrics import Counter, Gauge, Histogram, MetricsRegistry, Summary
from .rng import RngFactory, ZipfSampler, zipf_weights
from .trace import TraceEvent, Tracer

__all__ = [
    "DAYS",
    "HOURS",
    "MICROSECONDS",
    "MILLISECONDS",
    "MINUTES",
    "NANOSECONDS",
    "SECONDS",
    "YEARS",
    "Stopwatch",
    "VirtualClock",
    "DEFAULT_COST_MODEL",
    "GIB",
    "CostModel",
    "Engine",
    "Process",
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "Summary",
    "RngFactory",
    "ZipfSampler",
    "zipf_weights",
    "TraceEvent",
    "Tracer",
]
