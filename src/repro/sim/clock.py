"""Virtual time for the discrete-event simulation substrate.

The paper's evaluation spans eleven orders of magnitude of latency — from a
~30 ns ``WRPKRU`` instruction to a ~2 minute Memcached restart to a full year
of service operation. Wall-clock measurement in Python cannot resolve (or
afford) any of that, so every experiment runs against a :class:`VirtualClock`
whose time only moves when a simulated cost is charged to it.

Time is kept in *seconds* as a float; helper constants make cost tables
readable (``30 * NANOSECONDS`` rather than ``3e-8``).
"""

from __future__ import annotations

from ..errors import SimulationError

#: One second, the base unit of virtual time.
SECONDS = 1.0
MILLISECONDS = 1e-3
MICROSECONDS = 1e-6
NANOSECONDS = 1e-9
MINUTES = 60.0
HOURS = 3600.0
DAYS = 86400.0
#: A non-leap year, used by availability budgets (99.999 % of a year etc.).
YEARS = 365.0 * DAYS


class VirtualClock:
    """A monotonically non-decreasing simulated clock.

    The clock is deliberately dumb: it has no scheduling knowledge. The
    event engine owns *when* to advance it; components that model costs
    call :meth:`advance` directly when they execute synchronously.
    """

    __slots__ = ("_now",)

    def __init__(self, start: float = 0.0) -> None:
        if start < 0:
            raise SimulationError(f"clock cannot start at negative time {start}")
        self._now = float(start)

    @property
    def now(self) -> float:
        """Current virtual time in seconds."""
        return self._now

    def advance(self, delta: float) -> float:
        """Move time forward by ``delta`` seconds and return the new time.

        Negative deltas are rejected: simulated time never flows backwards,
        and a negative cost is always a bug in a cost model.
        """
        if delta < 0:
            raise SimulationError(f"cannot advance clock by negative delta {delta}")
        self._now += delta
        return self._now

    def advance_to(self, timestamp: float) -> float:
        """Jump directly to ``timestamp`` (used by the event engine)."""
        if timestamp < self._now:
            raise SimulationError(
                f"cannot rewind clock from {self._now} to {timestamp}"
            )
        self._now = timestamp
        return self._now

    def reset(self, start: float = 0.0) -> None:
        """Reset the clock; only experiments should do this, between runs."""
        if start < 0:
            raise SimulationError(f"clock cannot reset to negative time {start}")
        self._now = float(start)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"VirtualClock(now={self._now:.9f})"


class Stopwatch:
    """Measures elapsed *virtual* time between two points.

    Usage::

        watch = Stopwatch(clock)
        watch.start()
        ... simulated work that advances the clock ...
        elapsed = watch.stop()
    """

    __slots__ = ("_clock", "_started_at", "_elapsed")

    def __init__(self, clock: VirtualClock) -> None:
        self._clock = clock
        self._started_at: float | None = None
        self._elapsed = 0.0

    def start(self) -> None:
        if self._started_at is not None:
            raise SimulationError("stopwatch already running")
        self._started_at = self._clock.now

    def stop(self) -> float:
        if self._started_at is None:
            raise SimulationError("stopwatch not running")
        self._elapsed = self._clock.now - self._started_at
        self._started_at = None
        return self._elapsed

    @property
    def elapsed(self) -> float:
        """Elapsed time of the last completed measurement."""
        return self._elapsed

    def __enter__(self) -> "Stopwatch":
        self.start()
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.stop()
