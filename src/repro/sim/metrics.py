"""Lightweight metrics primitives used by every experiment.

The benchmark harness reports the same *kinds* of rows the paper reports:
throughput deltas (E1), latency distributions (E2, E6), availability
percentages (E3), per-client success rates (E4) and energy totals (E5).

As of the ``repro.obs`` subsystem there is **one** set of metric
primitives: :class:`Counter` and :class:`Gauge` live in
:mod:`repro.obs.metrics` and are re-exported here so historic imports
keep working, and :class:`MetricsRegistry` registers everything it
creates into a backing :class:`~repro.obs.metrics.ObsRegistry` — so
experiment metrics surface through the same snapshot and Prometheus
exporters as the serving-path metrics.

The exact-sample :class:`Histogram` stays here: experiments record at
most a few hundred thousand observations, so exact storage is affordable
and avoids the bucketing-error caveats a fixed-bucket histogram would
add to result interpretation. (The serving path uses
:class:`repro.obs.metrics.BucketHistogram` instead, which is O(1) per
observation.)
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Iterable, Optional

from ..obs.metrics import Counter, Gauge, ObsRegistry

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "Summary",
]


@dataclass
class Summary:
    """Summary statistics of a sample set."""

    count: int
    mean: float
    stdev: float
    minimum: float
    maximum: float
    p50: float
    p95: float
    p99: float

    def as_dict(self) -> dict[str, float]:
        return {
            "count": self.count,
            "mean": self.mean,
            "stdev": self.stdev,
            "min": self.minimum,
            "max": self.maximum,
            "p50": self.p50,
            "p95": self.p95,
            "p99": self.p99,
        }


class Histogram:
    """Stores raw observations and computes exact quantiles on demand."""

    def __init__(self, name: str) -> None:
        self.name = name
        self._samples: list[float] = []

    def observe(self, value: float) -> None:
        self._samples.append(float(value))

    def observe_many(self, values: Iterable[float]) -> None:
        self._samples.extend(float(v) for v in values)

    @property
    def count(self) -> int:
        return len(self._samples)

    @property
    def samples(self) -> list[float]:
        return list(self._samples)

    def percentile(self, q: float) -> float:
        """Exact sample percentile ``q`` in [0, 100] (linear interpolation)."""
        if not self._samples:
            raise ValueError(f"histogram {self.name!r} is empty")
        if not 0.0 <= q <= 100.0:
            raise ValueError(f"percentile must be in [0, 100], got {q}")
        ordered = sorted(self._samples)
        if len(ordered) == 1:
            return ordered[0]
        rank = (q / 100.0) * (len(ordered) - 1)
        lower = math.floor(rank)
        upper = math.ceil(rank)
        if lower == upper:
            return ordered[lower]
        frac = rank - lower
        return ordered[lower] * (1.0 - frac) + ordered[upper] * frac

    def summary(self) -> Summary:
        if not self._samples:
            raise ValueError(f"histogram {self.name!r} is empty")
        n = len(self._samples)
        mean = sum(self._samples) / n
        if n > 1:
            var = sum((s - mean) ** 2 for s in self._samples) / (n - 1)
        else:
            var = 0.0
        return Summary(
            count=n,
            mean=mean,
            stdev=math.sqrt(var),
            minimum=min(self._samples),
            maximum=max(self._samples),
            p50=self.percentile(50),
            p95=self.percentile(95),
            p99=self.percentile(99),
        )


class MetricsRegistry:
    """A namespace of counters, gauges and histograms for one simulation run.

    A thin veneer over :class:`ObsRegistry` preserving the historic
    unlabelled API and snapshot format. Metrics created here land in the
    backing obs registry too (counters/gauges directly, exact histograms
    via adoption), so one Prometheus snapshot covers both worlds. Pass an
    existing ``ObsRegistry`` (e.g. ``Observability().registry``) to share
    a namespace with the serving-path metrics.
    """

    def __init__(self, obs_registry: Optional[ObsRegistry] = None) -> None:
        self.obs_registry = obs_registry if obs_registry is not None else ObsRegistry()
        self.counters: dict[str, Counter] = {}
        self.gauges: dict[str, Gauge] = {}
        self.histograms: dict[str, Histogram] = {}

    def counter(self, name: str) -> Counter:
        if name not in self.counters:
            self.counters[name] = self.obs_registry.counter(name)
        return self.counters[name]

    def gauge(self, name: str) -> Gauge:
        if name not in self.gauges:
            self.gauges[name] = self.obs_registry.gauge(name)
        return self.gauges[name]

    def histogram(self, name: str) -> Histogram:
        if name not in self.histograms:
            histogram = Histogram(name)
            self.histograms[name] = histogram
            self.obs_registry.adopt_histogram(histogram)
        return self.histograms[name]

    def snapshot(self) -> dict[str, object]:
        """Flatten everything into a JSON-friendly dict for reports."""
        out: dict[str, object] = {}
        for name, counter in self.counters.items():
            out[f"counter/{name}"] = counter.value
        for name, gauge in self.gauges.items():
            out[f"gauge/{name}"] = gauge.value
        for name, histogram in self.histograms.items():
            if histogram.count:
                out[f"histogram/{name}"] = histogram.summary().as_dict()
            else:
                out[f"histogram/{name}"] = {"count": 0}
        return out
