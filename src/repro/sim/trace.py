"""Structured event tracing for simulations.

A :class:`Tracer` records typed events (fault injected, fault detected,
rewind performed, restart started/finished, request served/refused) with
their virtual timestamps. Experiments use traces for two purposes:

* assertions in integration tests ("every injected fault was followed by a
  detection and a recovery before the next request was accepted"), and
* computing availability from first principles (sum of down intervals)
  instead of trusting the strategy's own bookkeeping — an independent check
  the paper's availability arithmetic is reproduced against.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Iterator, Optional


@dataclass(frozen=True)
class TraceEvent:
    """One timestamped, typed event with free-form details."""

    timestamp: float
    kind: str
    details: dict[str, object] = field(default_factory=dict)

    def __str__(self) -> str:  # pragma: no cover - debugging aid
        detail = " ".join(f"{k}={v}" for k, v in sorted(self.details.items()))
        return f"[{self.timestamp:.9f}] {self.kind} {detail}".rstrip()


class Tracer:
    """Appends events; supports filtered iteration and interval extraction."""

    def __init__(self, capacity: Optional[int] = None) -> None:
        self._events: list[TraceEvent] = []
        self._capacity = capacity
        self._subscribers: list[Callable[[TraceEvent], None]] = []

    def record(self, timestamp: float, kind: str, **details: object) -> TraceEvent:
        # ``details`` is already a fresh dict built for this call — no copy.
        event = TraceEvent(timestamp=timestamp, kind=kind, details=details)
        if self._capacity is None or len(self._events) < self._capacity:
            self._events.append(event)
        for subscriber in self._subscribers:
            subscriber(event)
        return event

    def subscribe(self, callback: Callable[[TraceEvent], None]) -> None:
        """Invoke ``callback`` on every future event (live monitoring)."""
        self._subscribers.append(callback)

    @property
    def events(self) -> list[TraceEvent]:
        return list(self._events)

    def __len__(self) -> int:
        return len(self._events)

    def of_kind(self, *kinds: str) -> Iterator[TraceEvent]:
        wanted = set(kinds)
        return (e for e in self._events if e.kind in wanted)

    def count(self, kind: str) -> int:
        return sum(1 for e in self._events if e.kind == kind)

    def first(self, kind: str) -> Optional[TraceEvent]:
        for event in self._events:
            if event.kind == kind:
                return event
        return None

    def last(self, kind: str) -> Optional[TraceEvent]:
        for event in reversed(self._events):
            if event.kind == kind:
                return event
        return None

    def down_intervals(
        self,
        down_kind: str = "service.down",
        up_kind: str = "service.up",
        horizon: Optional[float] = None,
    ) -> list[tuple[float, float]]:
        """Extract ``(down_at, up_at)`` intervals from down/up event pairs.

        A trailing ``down`` with no matching ``up`` is closed at ``horizon``
        (when provided) or dropped (when not), so availability computed from
        a truncated trace is conservative rather than optimistic.
        """
        intervals: list[tuple[float, float]] = []
        down_at: Optional[float] = None
        for event in self._events:
            if event.kind == down_kind and down_at is None:
                down_at = event.timestamp
            elif event.kind == up_kind and down_at is not None:
                intervals.append((down_at, event.timestamp))
                down_at = None
        if down_at is not None and horizon is not None and horizon > down_at:
            intervals.append((down_at, horizon))
        return intervals

    def downtime(
        self,
        horizon: float,
        down_kind: str = "service.down",
        up_kind: str = "service.up",
    ) -> float:
        """Total seconds down within ``[0, horizon]``."""
        total = 0.0
        for start, end in self.down_intervals(down_kind, up_kind, horizon=horizon):
            total += min(end, horizon) - min(start, horizon)
        return total
