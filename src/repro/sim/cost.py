"""Centralised latency/cost model for every simulated mechanism.

Design decision D4 (see ``DESIGN.md``): *no experiment hard-codes a latency*.
Every timing constant an experiment depends on lives here, so that the entire
calibration against the paper is auditable in one file and ablations can swap
a single :class:`CostModel` instance.

Calibration sources
-------------------

* ``wrpkru`` ≈ 30 ns — the cost of writing the PKRU register, consistent with
  the libmpk (ATC'19) and ERIM (Security'19) measurements the SDRaD paper
  builds on.
* ``rewind`` ≈ 3.5 µs — the paper's headline in-process rewind latency
  (§II/§IV: "in-process rewinding takes only 3.5 µs").
* Memcached restart ≈ 2 minutes at 10 GB (§II). We model restart as a fixed
  process-start cost plus data reload at a warm-up bandwidth chosen so a
  10 GB dataset yields ~120 s, matching the paper's anchor point.
* Domain enter/exit ≈ a few hundred ns — two PKRU writes plus a stack switch
  and bookkeeping; sized so that per-request isolation of a ~10–50 µs request
  produces the paper's reported 2–4 % end-to-end overhead.
* Service times (Memcached op, NGINX request, TLS handshake) are typical
  published single-node numbers; only their *ratio* to the isolation costs
  matters for reproducing the overhead shape.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace

from .clock import MICROSECONDS, MILLISECONDS, NANOSECONDS, SECONDS

#: Bytes in one gibibyte; dataset sizes in experiments use GiB.
GIB = 1024 ** 3


@dataclass(frozen=True)
class CostModel:
    """Latency constants (seconds) for every simulated mechanism.

    Instances are frozen: an experiment that wants to ablate a constant
    derives a new model via :meth:`scaled` or :func:`dataclasses.replace`.
    """

    # --- MPK / domain-switch primitives -----------------------------------
    #: One WRPKRU instruction (change the thread-local protection-key rights).
    wrpkru: float = 30 * NANOSECONDS
    #: ``pkey_alloc``/``pkey_mprotect`` syscall (domain setup only, not
    #: per-request).
    pkey_syscall: float = 1 * MICROSECONDS
    #: Per-page cost of retagging inside one ``pkey_mprotect`` (page-table
    #: walk); paid by key virtualisation rebinds (libmpk-style, see
    #: ``repro.sdrad.keyvirt``).
    pkey_mprotect_per_page: float = 15 * NANOSECONDS
    #: SDRaD domain entry: save context + switch stack + WRPKRU + bookkeeping.
    domain_enter: float = 150 * NANOSECONDS
    #: SDRaD domain exit: restore context + WRPKRU + bookkeeping.
    domain_exit: float = 150 * NANOSECONDS
    #: Rewind-and-discard after a detected fault (paper: 3.5 µs).
    rewind: float = 3.5 * MICROSECONDS

    # --- alternative isolation substrates ----------------------------------
    # (consumed through the backend cost hooks, repro.memory.backends)
    #: CHERI/Morello compartment entry: install the compartment's
    #: capabilities (two capability-register writes, no syscall) — sized
    #: from the Morello compartment-switch measurements of the follow-on
    #: SDRaD work, slightly under the MPK enter path.
    cheri_domain_enter: float = 120 * NANOSECONDS
    #: CHERI compartment exit: reinstall the caller's capability set.
    cheri_domain_exit: float = 120 * NANOSECONDS
    #: Derive + seal one region capability (domain setup, not per-request).
    cheri_cap_derive: float = 500 * NANOSECONDS
    #: SFI sandbox setup: install the region mask and bind instrumented
    #: entry points (domain creation only).
    sfi_domain_setup: float = 400 * NANOSECONDS
    #: SFI per-access instrumentation: mask/compare on every checked
    #: load/store executed inside a sandbox (the substrate's whole cost —
    #: SFI has no gate to pay for).
    sfi_access_check: float = 2 * NANOSECONDS
    #: Extra per-page cost when discarding with explicit scrubbing (ablation
    #: D2) — a memset of one 4 KiB page.
    scrub_page: float = 250 * NANOSECONDS

    # --- per-domain memory management --------------------------------------
    #: Allocate/initialise a fresh per-domain heap arena.
    domain_heap_init: float = 2 * MICROSECONDS
    #: malloc/free inside a domain heap (amortised).
    domain_alloc: float = 50 * NANOSECONDS

    # --- cross-domain data movement (SDRaD-FFI) ----------------------------
    #: Fixed cost per sandboxed call (trampoline + argument frame setup).
    ffi_call_fixed: float = 400 * NANOSECONDS
    #: Copy bandwidth for moving serialized bytes between domain heaps.
    copy_bandwidth_bytes_per_s: float = 8e9  # ~8 GB/s memcpy
    #: Serializer throughput (bytes/s) per built-in serializer; calibrated to
    #: the relative speeds of the Rust crates the paper plans to evaluate
    #: (bincode ≫ serde_json; a self-describing format in between).
    serializer_bandwidth: dict[str, float] = field(
        default_factory=lambda: {
            "bincode": 4.0e9,
            "msgpack": 1.5e9,
            "json": 0.4e9,
            "pickle": 0.8e9,
        }
    )
    #: Fixed per-call serializer overhead (seconds).
    serializer_fixed: dict[str, float] = field(
        default_factory=lambda: {
            "bincode": 60 * NANOSECONDS,
            "msgpack": 120 * NANOSECONDS,
            "json": 250 * NANOSECONDS,
            "pickle": 400 * NANOSECONDS,
        }
    )

    # --- baseline recovery mechanisms --------------------------------------
    #: Minimum process restart (fork/exec, config parse, listen sockets).
    process_restart_base: float = 800 * MILLISECONDS
    #: Container restart adds image/runtime/namespace setup on top.
    container_restart_base: float = 3.2 * SECONDS
    #: Warm-up bandwidth for reloading service state after a restart. Chosen
    #: so a 10 GiB dataset reloads in ~119 s, matching the paper's "about
    #: 2 minutes" anchor: 10 GiB / 90 MiB/s ≈ 114 s + base ≈ 115 s.
    reload_bandwidth_bytes_per_s: float = 90 * 1024 * 1024
    #: Failover to a hot replica (detect + virtual-IP move), used by the
    #: replication baseline.
    failover: float = 2.0 * SECONDS

    # --- service request costs ---------------------------------------------
    #: Memcached-class GET/SET service time (single op, in-memory).
    memcached_op: float = 10 * MICROSECONDS
    #: NGINX-class static HTTP request service time.
    nginx_request: float = 50 * MICROSECONDS
    #: OpenSSL-class handshake (asymmetric crypto dominated).
    tls_handshake: float = 1 * MILLISECONDS
    #: TLS application record processing per KiB.
    tls_record_per_kib: float = 2 * MICROSECONDS

    # --- derived helpers ----------------------------------------------------

    def domain_roundtrip(self) -> float:
        """Enter + exit cost of one isolated call (no fault)."""
        return self.domain_enter + self.domain_exit

    def rewind_time(self, *, scrub_pages: int = 0) -> float:
        """Recovery latency of SDRaD rewind-and-discard."""
        return self.rewind + scrub_pages * self.scrub_page

    def process_restart_time(self, dataset_bytes: int) -> float:
        """Recovery latency of a full process restart with state reload."""
        if dataset_bytes < 0:
            raise ValueError(f"dataset size cannot be negative: {dataset_bytes}")
        return self.process_restart_base + dataset_bytes / self.reload_bandwidth_bytes_per_s

    def container_restart_time(self, dataset_bytes: int) -> float:
        """Recovery latency of a container restart with state reload."""
        if dataset_bytes < 0:
            raise ValueError(f"dataset size cannot be negative: {dataset_bytes}")
        return (
            self.container_restart_base
            + dataset_bytes / self.reload_bandwidth_bytes_per_s
        )

    def copy_time(self, nbytes: int) -> float:
        """Cross-domain memcpy cost for ``nbytes``."""
        if nbytes < 0:
            raise ValueError(f"byte count cannot be negative: {nbytes}")
        return nbytes / self.copy_bandwidth_bytes_per_s

    def serialize_time(self, serializer: str, nbytes: int) -> float:
        """One-way serialization cost for ``nbytes`` with ``serializer``."""
        if serializer not in self.serializer_bandwidth:
            raise KeyError(f"unknown serializer {serializer!r} in cost model")
        if nbytes < 0:
            raise ValueError(f"byte count cannot be negative: {nbytes}")
        return (
            self.serializer_fixed[serializer]
            + nbytes / self.serializer_bandwidth[serializer]
        )

    def scaled(self, factor: float) -> "CostModel":
        """A model with every scalar latency multiplied by ``factor``.

        Used by sensitivity analyses ("what if isolation were 10× more
        expensive — does the paper's conclusion still hold?").
        """
        if factor <= 0:
            raise ValueError(f"scale factor must be positive, got {factor}")
        scalar_fields = {
            name: getattr(self, name) * factor
            for name in (
                "wrpkru",
                "pkey_syscall",
                "pkey_mprotect_per_page",
                "domain_enter",
                "domain_exit",
                "rewind",
                "cheri_domain_enter",
                "cheri_domain_exit",
                "cheri_cap_derive",
                "sfi_domain_setup",
                "sfi_access_check",
                "scrub_page",
                "domain_heap_init",
                "domain_alloc",
                "ffi_call_fixed",
            )
        }
        return replace(self, **scalar_fields)


#: The default calibrated model used by all experiments unless overridden.
DEFAULT_COST_MODEL = CostModel()
