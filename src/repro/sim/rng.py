"""Deterministic randomness for reproducible experiments.

Every stochastic component (workload generators, fault-arrival processes,
malicious-client payloads) draws from a :class:`SeedSequence`-style hierarchy
so that (a) a whole experiment is reproducible from one root seed and (b)
changing how many draws one component makes does not perturb any other
component — the classic "stream splitting" discipline for simulation studies.
"""

from __future__ import annotations

import random
from typing import Iterator


class RngFactory:
    """Derives independent, named random streams from a single root seed.

    Streams are identified by string labels; the same ``(root_seed, label)``
    pair always yields an identically-seeded :class:`random.Random`. Labels
    should name the consumer, e.g. ``"faults"``, ``"keys/client-3"``.
    """

    def __init__(self, root_seed: int = 0) -> None:
        self._root_seed = int(root_seed)
        self._issued: dict[str, int] = {}

    @property
    def root_seed(self) -> int:
        return self._root_seed

    def stream(self, label: str) -> random.Random:
        """Return a fresh deterministic generator for ``label``."""
        seed = self._derive(label)
        self._issued[label] = seed
        return random.Random(seed)

    def child(self, label: str) -> "RngFactory":
        """Return a sub-factory whose streams are independent of this one's."""
        return RngFactory(self._derive(f"factory/{label}"))

    def issued_streams(self) -> dict[str, int]:
        """Labels and derived seeds handed out so far (for trace metadata)."""
        return dict(self._issued)

    def _derive(self, label: str) -> int:
        # Stable across processes and Python versions: hash() is salted, so
        # use a simple FNV-1a over the label mixed with the root seed instead.
        h = 0xCBF29CE484222325
        for byte in label.encode("utf-8"):
            h ^= byte
            h = (h * 0x100000001B3) & 0xFFFFFFFFFFFFFFFF
        return (h ^ (self._root_seed * 0x9E3779B97F4A7C15)) & 0xFFFFFFFFFFFFFFFF


def zipf_weights(n: int, skew: float) -> list[float]:
    """Normalised Zipf(``skew``) popularity weights for ranks ``1..n``.

    ``skew == 0`` degenerates to the uniform distribution; typical key-value
    cache studies (including the Memcached literature the paper's use case
    comes from) use skew around 0.99.
    """
    if n <= 0:
        raise ValueError(f"need at least one rank, got n={n}")
    if skew < 0:
        raise ValueError(f"skew must be non-negative, got {skew}")
    raw = [1.0 / (rank ** skew) for rank in range(1, n + 1)]
    total = sum(raw)
    return [w / total for w in raw]


class ZipfSampler:
    """Samples integer ranks ``0..n-1`` with Zipfian popularity.

    Uses the alias method for O(1) draws, which matters because workload
    benchmarks draw hundreds of thousands of keys.
    """

    def __init__(self, n: int, skew: float, rng: random.Random) -> None:
        self._n = n
        self._rng = rng
        weights = zipf_weights(n, skew)
        self._prob, self._alias = _build_alias_table(weights)

    @property
    def n(self) -> int:
        return self._n

    def sample(self) -> int:
        column = self._rng.randrange(self._n)
        if self._rng.random() < self._prob[column]:
            return column
        return self._alias[column]

    def samples(self, count: int) -> Iterator[int]:
        for _ in range(count):
            yield self.sample()


def _build_alias_table(weights: list[float]) -> tuple[list[float], list[int]]:
    """Vose's alias method initialisation."""
    n = len(weights)
    prob = [0.0] * n
    alias = [0] * n
    scaled = [w * n for w in weights]
    small = [i for i, w in enumerate(scaled) if w < 1.0]
    large = [i for i, w in enumerate(scaled) if w >= 1.0]
    while small and large:
        s = small.pop()
        l = large.pop()
        prob[s] = scaled[s]
        alias[s] = l
        scaled[l] = (scaled[l] + scaled[s]) - 1.0
        if scaled[l] < 1.0:
            small.append(l)
        else:
            large.append(l)
    for leftover in large + small:
        prob[leftover] = 1.0
    return prob, alias
