"""Plain-text report rendering for experiment outputs.

Benchmarks and examples print paper-style tables through these helpers so
every experiment's output reads the same way and EXPERIMENTS.md can quote
them directly.
"""

from __future__ import annotations

from typing import Sequence

from ..resilience.simulation import ServiceOutcome
from .lca import LcaRow


def format_table(headers: Sequence[str], rows: Sequence[Sequence[object]]) -> str:
    """Fixed-width table with a separator line under the header."""
    cells = [[str(h) for h in headers]] + [[str(c) for c in row] for row in rows]
    widths = [max(len(row[i]) for row in cells) for i in range(len(headers))]
    lines = []
    for index, row in enumerate(cells):
        line = "  ".join(cell.ljust(width) for cell, width in zip(row, widths))
        lines.append(line.rstrip())
        if index == 0:
            lines.append("  ".join("-" * width for width in widths))
    return "\n".join(lines)


def format_seconds(seconds: float) -> str:
    """Human-scale duration: 3.5e-6 → '3.5 µs', 119.8 → '2.0 min'."""
    if seconds < 0:
        raise ValueError(f"duration cannot be negative, got {seconds}")
    if seconds == 0:
        return "0 s"
    if seconds < 1e-6:
        return f"{seconds * 1e9:.1f} ns"
    if seconds < 1e-3:
        return f"{seconds * 1e6:.1f} µs"
    if seconds < 1.0:
        return f"{seconds * 1e3:.1f} ms"
    if seconds < 120.0:
        return f"{seconds:.1f} s"
    if seconds < 7200.0:
        return f"{seconds / 60.0:.1f} min"
    return f"{seconds / 3600.0:.1f} h"


def format_availability(availability: float) -> str:
    """99.999 %-style rendering with enough digits to see the nines."""
    return f"{availability * 100:.6f} %"


def availability_table(outcomes: Sequence[ServiceOutcome]) -> str:
    rows = [
        (
            o.strategy,
            o.faults_injected,
            format_seconds(o.downtime),
            format_availability(o.availability),
            f"{o.achieved_nines:.2f}",
            "yes" if o.meets_five_nines else "NO",
        )
        for o in outcomes
    ]
    return format_table(
        ("strategy", "faults", "downtime", "availability", "nines", "5-nines"),
        rows,
    )


def lca_table(rows: Sequence[LcaRow]) -> str:
    formatted = [
        (
            r.strategy,
            r.replicas,
            "yes" if r.meets_target else "NO",
            format_seconds(r.expected_downtime),
            f"{r.operational_kwh:.0f}",
            f"{r.operational_kg:.1f}",
            f"{r.embodied_kg:.1f}",
            f"{r.total_kg:.1f}",
        )
        for r in rows
    ]
    return format_table(
        (
            "strategy",
            "replicas",
            "meets-SLO",
            "downtime/yr",
            "kWh/yr",
            "op-kgCO2e",
            "emb-kgCO2e",
            "total-kgCO2e",
        ),
        formatted,
    )
