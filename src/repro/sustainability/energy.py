"""Operational energy accounting for deployments.

Turns a recovery strategy's deployment shape (replica count, runtime
overhead) and a service load into kWh over a horizon. This is the
"over-provisioning costs energy" half of the paper's §IV argument: an
N-way replicated deployment pays N servers' power around the clock, while
SDRaD pays one server plus a few percent of CPU.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..resilience.strategy import StrategySpec
from ..sim.clock import YEARS
from .power import ServerPowerModel


@dataclass(frozen=True)
class DeploymentEnergy:
    """Energy breakdown for one strategy's deployment over a horizon."""

    strategy: str
    replicas: int
    horizon: float
    base_utilization: float
    effective_utilization: float
    operational_kwh: float
    kwh_per_replica: float

    @property
    def operational_joules(self) -> float:
        return self.operational_kwh * 3.6e6


class EnergyModel:
    """Computes deployment energy from power model + strategy spec."""

    def __init__(self, power: ServerPowerModel | None = None) -> None:
        self.power = power if power is not None else ServerPowerModel()

    def deployment_energy(
        self,
        spec: StrategySpec,
        base_utilization: float = 0.30,
        horizon: float = YEARS,
        standby_utilization: float = 0.05,
    ) -> DeploymentEnergy:
        """Energy of running ``spec``'s deployment for ``horizon`` seconds.

        * the primary replica runs at ``base_utilization`` inflated by the
          strategy's runtime overhead (isolation costs CPU);
        * standby replicas idle at ``standby_utilization`` (hot standbys
          still burn most of their idle power — the inefficiency §IV
          targets).
        """
        if not 0.0 <= base_utilization <= 1.0:
            raise ValueError(
                f"base utilization must be in [0, 1], got {base_utilization}"
            )
        effective = min(1.0, base_utilization * (1.0 + spec.runtime_overhead))
        primary_kwh = self.power.energy_kwh(effective, horizon)
        standby_kwh = self.power.energy_kwh(standby_utilization, horizon)
        total = primary_kwh + (spec.replicas - 1) * standby_kwh
        return DeploymentEnergy(
            strategy=spec.name,
            replicas=spec.replicas,
            horizon=horizon,
            base_utilization=base_utilization,
            effective_utilization=effective,
            operational_kwh=total,
            kwh_per_replica=total / spec.replicas,
        )

    def energy_per_request(
        self,
        spec: StrategySpec,
        requests_per_second: float,
        base_utilization: float = 0.30,
    ) -> float:
        """Joules per served request (a per-unit sustainability metric)."""
        if requests_per_second <= 0:
            raise ValueError(
                f"request rate must be positive, got {requests_per_second}"
            )
        energy = self.deployment_energy(spec, base_utilization, horizon=1.0)
        return energy.operational_joules / requests_per_second

    def savings_vs(
        self,
        ours: StrategySpec,
        baseline: StrategySpec,
        base_utilization: float = 0.30,
        horizon: float = YEARS,
    ) -> float:
        """Fractional operational-energy saving of ``ours`` vs ``baseline``."""
        a = self.deployment_energy(ours, base_utilization, horizon).operational_kwh
        b = self.deployment_energy(
            baseline, base_utilization, horizon
        ).operational_kwh
        if b == 0:
            raise ValueError("baseline consumes zero energy; nothing to compare")
        return 1.0 - a / b
