"""Fleet-scale case-study scenarios (§IV's telecom / smart-grid domains).

The paper closes §IV with: "specifically in critical application scenarios,
e.g., in telecommunications or smart grids, high levels of availability are
normally achieved by means of redundancy, which our approach can alleviate."
These scenarios scale the per-service LCA to realistic fleet sizes so the
aggregate stakes become visible: a national telecom edge is thousands of
stateful nodes, each of which the redundancy-vs-rewind decision multiplies.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..sim.clock import YEARS
from ..sim.cost import GIB
from .lca import LcaRow, LifecycleAssessment


@dataclass(frozen=True)
class FleetScenario:
    """One deployment archetype."""

    name: str
    description: str
    #: Independent service instances in the fleet.
    nodes: int
    #: Stateful data per node (drives restart time).
    state_bytes_per_node: int
    #: Memory-fault incidents per node-year (attacks + latent bugs).
    faults_per_node_year: float
    #: Availability class the domain regulates to.
    availability_target: float


#: Archetypes with magnitudes from public network-function and AMI sizing
#: figures; all knobs are dataclass fields, so studies can vary them.
TELECOM_EDGE = FleetScenario(
    name="telecom-edge",
    description="regional 5G core user-plane functions (carrier grade)",
    nodes=2000,
    state_bytes_per_node=8 * GIB,
    faults_per_node_year=4.0,
    availability_target=0.99999,
)

SMART_GRID = FleetScenario(
    name="smart-grid",
    description="distribution-grid head-end systems aggregating AMI meters",
    nodes=300,
    state_bytes_per_node=16 * GIB,
    faults_per_node_year=3.0,
    availability_target=0.99999,
)

CDN_CACHE = FleetScenario(
    name="cdn-cache",
    description="metro cache tier (four nines is contractual, not five)",
    nodes=5000,
    state_bytes_per_node=32 * GIB,
    faults_per_node_year=6.0,
    availability_target=0.9999,
)

DEFAULT_SCENARIOS = [TELECOM_EDGE, SMART_GRID, CDN_CACHE]


@dataclass(frozen=True)
class FleetAssessment:
    """Fleet-level roll-up of the per-node LCA."""

    scenario: FleetScenario
    per_node_rows: list[LcaRow]
    fleet_servers_sdrad: int
    fleet_servers_restart: int
    fleet_kwh_saving: float
    fleet_carbon_saving_kg: float

    @property
    def servers_avoided(self) -> int:
        return self.fleet_servers_restart - self.fleet_servers_sdrad


def assess_fleet(
    scenario: FleetScenario,
    lca: LifecycleAssessment | None = None,
    rebound_fraction: float = 0.0,
    horizon: float = YEARS,
) -> FleetAssessment:
    """Run the per-node LCA and scale it to the fleet."""
    lca = lca or LifecycleAssessment()
    rows = lca.assess(
        dataset_bytes=scenario.state_bytes_per_node,
        faults_per_year=scenario.faults_per_node_year,
        availability_target=scenario.availability_target,
        horizon=horizon,
    )
    by_name = {row.strategy: row for row in rows}
    sdrad = by_name["sdrad-rewind"]
    restart = by_name["process-restart"]
    kwh_saving = (restart.operational_kwh - sdrad.operational_kwh) * scenario.nodes
    carbon_saving = (restart.total_kg - sdrad.total_kg) * scenario.nodes
    carbon_saving = max(0.0, carbon_saving) * (1.0 - rebound_fraction)
    return FleetAssessment(
        scenario=scenario,
        per_node_rows=rows,
        fleet_servers_sdrad=sdrad.replicas * scenario.nodes,
        fleet_servers_restart=restart.replicas * scenario.nodes,
        fleet_kwh_saving=max(0.0, kwh_saving),
        fleet_carbon_saving_kg=carbon_saving,
    )


def summarize(assessments: list[FleetAssessment]) -> list[tuple]:
    """Rows for the fleet comparison table."""
    return [
        (
            a.scenario.name,
            a.scenario.nodes,
            a.fleet_servers_restart,
            a.fleet_servers_sdrad,
            a.servers_avoided,
            f"{a.fleet_kwh_saving / 1e6:.2f} GWh"
            if a.fleet_kwh_saving > 1e6
            else f"{a.fleet_kwh_saving / 1e3:.1f} MWh",
            f"{a.fleet_carbon_saving_kg / 1000:.1f} t",
        )
        for a in assessments
    ]
