"""Server power models.

The sustainability argument needs watts. We use the standard linear
utilisation model (SPECpower-style): ``P(u) = P_idle + (P_max - P_idle)·u``,
multiplied by datacentre PUE. Defaults describe a mainstream dual-socket
1U server of the paper's era; every constant is a constructor argument so
E5's sensitivity sweeps can vary them.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..sim.clock import HOURS


@dataclass(frozen=True)
class ServerPowerModel:
    """Linear power-vs-utilisation model for one server."""

    idle_watts: float = 110.0
    max_watts: float = 320.0
    pue: float = 1.4

    def __post_init__(self) -> None:
        if self.idle_watts < 0 or self.max_watts < self.idle_watts:
            raise ValueError(
                f"need 0 <= idle <= max, got idle={self.idle_watts}, "
                f"max={self.max_watts}"
            )
        if self.pue < 1.0:
            raise ValueError(f"PUE cannot be below 1.0, got {self.pue}")

    def watts(self, utilization: float) -> float:
        """Facility draw (watts) at a CPU utilisation in [0, 1]."""
        if not 0.0 <= utilization <= 1.0:
            raise ValueError(f"utilization must be in [0, 1], got {utilization}")
        server = self.idle_watts + (self.max_watts - self.idle_watts) * utilization
        return server * self.pue

    def energy_joules(self, utilization: float, seconds: float) -> float:
        """Energy for a steady utilisation over a duration."""
        if seconds < 0:
            raise ValueError(f"duration cannot be negative, got {seconds}")
        return self.watts(utilization) * seconds

    def energy_kwh(self, utilization: float, seconds: float) -> float:
        return self.energy_joules(utilization, seconds) / (1000.0 * HOURS)


def joules_to_kwh(joules: float) -> float:
    return joules / (1000.0 * HOURS)


def kwh_to_joules(kwh: float) -> float:
    return kwh * 1000.0 * HOURS
