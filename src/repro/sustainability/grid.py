"""Time-varying grid carbon intensity and carbon-aware recovery analysis.

§IV calls for "further life-cycle assessment approaches with a focus on
environmental sustainability through energy efficiency". A static
gCO₂e/kWh figure (as in :mod:`repro.sustainability.carbon`) hides a
dimension that matters for *recovery scheduling*: grid intensity swings by
2–3× over a day (solar valleys, evening peaks). Two consequences this
module quantifies:

* **Restart-based recovery is exposed to when faults happen.** A 2-minute
  restart at the evening peak emits at peak intensity; an operator can only
  shift *planned* restarts, not fault-triggered ones.
* **Rewind is indifferent.** Microsecond recoveries emit nothing
  measurable regardless of when the fault lands, and the avoided standby
  replica would otherwise draw power around the clock — including every
  peak.

The intensity model is a two-harmonic sinusoid fitted to the typical shape
of a mixed European grid (overnight trough, midday solar dip, evening
peak); all parameters are constructor arguments.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Callable, Sequence

from ..sim.clock import DAYS, HOURS


@dataclass(frozen=True)
class DiurnalIntensity:
    """Grid carbon intensity as a function of time-of-day.

    ``intensity(t) = mean · (1 + a₁·cos(ω(t−peak₁)) + a₂·cos(2ω(t−peak₂)))``
    with ω = 2π/day. Defaults give ≈190–420 gCO₂e/kWh around a 300 mean,
    peaking in the evening with a secondary morning shoulder and a midday
    solar dip.
    """

    mean_g_per_kwh: float = 300.0
    primary_amplitude: float = 0.30
    primary_peak_hour: float = 19.0
    secondary_amplitude: float = 0.10
    secondary_peak_hour: float = 8.0

    def __post_init__(self) -> None:
        if self.mean_g_per_kwh < 0:
            raise ValueError("mean intensity cannot be negative")
        if self.primary_amplitude + self.secondary_amplitude >= 1.0:
            raise ValueError("amplitudes would drive intensity negative")

    def at(self, t: float) -> float:
        """Intensity (gCO₂e/kWh) at absolute simulation time ``t``."""
        omega = 2 * math.pi / DAYS
        primary = self.primary_amplitude * math.cos(
            omega * (t - self.primary_peak_hour * HOURS)
        )
        secondary = self.secondary_amplitude * math.cos(
            2 * omega * (t - self.secondary_peak_hour * HOURS)
        )
        return self.mean_g_per_kwh * (1.0 + primary + secondary)

    def peak(self) -> float:
        """Maximum intensity over a day (scanned at minute resolution)."""
        return max(self.at(m * 60.0) for m in range(24 * 60))

    def trough(self) -> float:
        return min(self.at(m * 60.0) for m in range(24 * 60))

    def mean_over(self, start: float, duration: float, steps: int = 64) -> float:
        """Average intensity over ``[start, start+duration]`` (midpoint rule)."""
        if duration <= 0:
            raise ValueError("duration must be positive")
        if steps < 1:
            raise ValueError("need at least one step")
        step = duration / steps
        return (
            sum(self.at(start + (i + 0.5) * step) for i in range(steps)) / steps
        )


def interval_emissions_g(
    intensity: DiurnalIntensity,
    power_watts: float,
    start: float,
    duration: float,
) -> float:
    """gCO₂e emitted by ``power_watts`` over ``[start, start+duration]``."""
    if power_watts < 0:
        raise ValueError("power cannot be negative")
    if duration <= 0:
        return 0.0
    kwh = power_watts * duration / (1000.0 * HOURS)
    return kwh * intensity.mean_over(start, duration)


@dataclass(frozen=True)
class RecoveryEmissions:
    """Emissions attributable to recovering from one year's faults."""

    strategy: str
    fault_count: int
    recovery_emissions_g: float
    worst_case_g: float  # every fault at peak intensity
    best_case_g: float  # every fault at the trough


def recovery_emissions(
    strategy: str,
    fault_times: Sequence[float],
    recovery_duration: float,
    recovery_power_watts: float,
    intensity: DiurnalIntensity,
) -> RecoveryEmissions:
    """Emissions of the *recovery windows themselves* for a fault schedule.

    For restart strategies the window is minutes of a busy server (state
    reload pegs CPU and disk); for rewind it is microseconds. The worst/best
    columns bound what fault-timing luck can do — which is the operator's
    exposure, since fault times are not schedulable.
    """
    total = sum(
        interval_emissions_g(intensity, recovery_power_watts, t, recovery_duration)
        for t in fault_times
    )
    kwh_per_recovery = recovery_power_watts * recovery_duration / (1000.0 * HOURS)
    return RecoveryEmissions(
        strategy=strategy,
        fault_count=len(fault_times),
        recovery_emissions_g=total,
        worst_case_g=len(fault_times) * kwh_per_recovery * intensity.peak(),
        best_case_g=len(fault_times) * kwh_per_recovery * intensity.trough(),
    )


def standby_replica_emissions_g(
    intensity: DiurnalIntensity,
    standby_power_watts: float,
    horizon: float,
    steps_per_day: int = 24,
) -> float:
    """Emissions of a hot standby drawing constant power over ``horizon``.

    Integrated against the diurnal curve (the standby runs through every
    peak); this is the number the avoided replica saves.
    """
    if horizon <= 0:
        raise ValueError("horizon must be positive")
    day_steps = max(1, steps_per_day)
    step = DAYS / day_steps
    total = 0.0
    t = 0.0
    while t < horizon:
        duration = min(step, horizon - t)
        total += interval_emissions_g(intensity, standby_power_watts, t, duration)
        t += duration
    return total


def best_maintenance_window(
    intensity: DiurnalIntensity,
    duration: float,
    resolution_minutes: int = 15,
) -> tuple[float, float]:
    """Lowest-emission start-of-day offset for a *planned* window.

    Returns ``(start_offset_seconds, mean_intensity)``. Relevant to
    restart-based operations (planned reloads can chase the trough);
    rewind-based recovery has nothing to schedule.
    """
    if duration <= 0:
        raise ValueError("duration must be positive")
    best_start, best_mean = 0.0, float("inf")
    step = resolution_minutes * 60.0
    t = 0.0
    while t < DAYS:
        mean = intensity.mean_over(t, duration)
        if mean < best_mean:
            best_start, best_mean = t, mean
        t += step
    return best_start, best_mean


IntensityFn = Callable[[float], float]
