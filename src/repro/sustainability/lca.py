"""Lifecycle comparison at equal availability: the paper's §IV end-to-end.

The central question: *to meet a given availability target under a given
fault rate, what deployment does each recovery strategy need, and what does
that deployment cost in energy and carbon?*

The answer reproduces the paper's argument quantitatively: restart-based
recovery cannot meet five nines under even a handful of yearly faults with
large state, so it must add replicas (energy + embodied carbon), while
SDRaD meets the target with one instance and a few percent CPU overhead.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from ..resilience.availability import downtime_budget
from ..resilience.strategy import RecoveryStrategyModel, StrategySpec
from ..sim.clock import YEARS
from .carbon import CarbonModel, rebound_adjusted
from .energy import EnergyModel

MAX_REPLICAS = 8


@dataclass(frozen=True)
class SizedDeployment:
    """The smallest deployment of a strategy that meets the target."""

    spec: StrategySpec
    meets_target: bool
    expected_downtime: float
    budget: float


@dataclass(frozen=True)
class LcaRow:
    """One strategy's row in the E5 comparison table."""

    strategy: str
    replicas: int
    meets_target: bool
    expected_downtime: float
    operational_kwh: float
    operational_kg: float
    embodied_kg: float
    total_kg: float


def size_deployment(
    base_spec: StrategySpec,
    faults_per_year: float,
    availability_target: float,
    model: RecoveryStrategyModel,
    horizon: float = YEARS,
) -> SizedDeployment:
    """Grow a deployment until it meets the availability target.

    A single instance is tried first; when its per-fault downtime blows the
    budget, hot-standby replicas are added (failover replaces restart as
    the fault response) until the target holds or :data:`MAX_REPLICAS` is
    reached.
    """
    faults = faults_per_year * (horizon / YEARS)
    budget = downtime_budget(availability_target, horizon)

    single_downtime = faults * base_spec.downtime_per_fault
    if single_downtime <= budget:
        return SizedDeployment(
            spec=base_spec,
            meets_target=True,
            expected_downtime=single_downtime,
            budget=budget,
        )
    # Single instance fails: escalate to replication with failover.
    for replicas in range(2, MAX_REPLICAS + 1):
        spec = model.replicated_failover(replicas)
        downtime = faults * spec.downtime_per_fault
        if downtime <= budget:
            return SizedDeployment(
                spec=spec, meets_target=True, expected_downtime=downtime, budget=budget
            )
    spec = model.replicated_failover(MAX_REPLICAS)
    return SizedDeployment(
        spec=spec,
        meets_target=False,
        expected_downtime=faults * spec.downtime_per_fault,
        budget=budget,
    )


class LifecycleAssessment:
    """Builds the energy/carbon comparison table for E5."""

    def __init__(
        self,
        strategy_model: Optional[RecoveryStrategyModel] = None,
        energy_model: Optional[EnergyModel] = None,
        carbon_model: Optional[CarbonModel] = None,
    ) -> None:
        self.strategies = strategy_model or RecoveryStrategyModel()
        self.energy = energy_model or EnergyModel()
        self.carbon = carbon_model or CarbonModel()

    def assess(
        self,
        dataset_bytes: int,
        faults_per_year: float,
        availability_target: float = 0.99999,
        base_utilization: float = 0.30,
        horizon: float = YEARS,
    ) -> list[LcaRow]:
        """One row per candidate strategy, sized to meet the target."""
        candidates = [
            self.strategies.sdrad_rewind(),
            self.strategies.process_restart(dataset_bytes),
            self.strategies.container_restart(dataset_bytes),
        ]
        rows = []
        for base in candidates:
            sized = size_deployment(
                base, faults_per_year, availability_target, self.strategies, horizon
            )
            spec = sized.spec
            energy = self.energy.deployment_energy(
                spec, base_utilization=base_utilization, horizon=horizon
            )
            op_kg = self.carbon.operational_kg(energy.operational_kwh)
            em_kg = self.carbon.embodied_kg(spec.replicas, horizon)
            rows.append(
                LcaRow(
                    strategy=base.name,
                    replicas=spec.replicas,
                    meets_target=sized.meets_target,
                    expected_downtime=sized.expected_downtime,
                    operational_kwh=energy.operational_kwh,
                    operational_kg=op_kg,
                    embodied_kg=em_kg,
                    total_kg=op_kg + em_kg,
                )
            )
        return rows

    def carbon_saving(
        self,
        rows: list[LcaRow],
        ours: str = "sdrad-rewind",
        rebound_fraction: float = 0.0,
    ) -> float:
        """kgCO₂e saved by ``ours`` vs the worst compliant alternative.

        Applies the rebound adjustment the paper says any honest assessment
        must consider.
        """
        our_row = next(r for r in rows if r.strategy == ours)
        others = [r for r in rows if r.strategy != ours]
        if not others:
            raise ValueError("nothing to compare against")
        baseline = max(others, key=lambda r: r.total_kg)
        nominal = max(0.0, baseline.total_kg - our_row.total_kg)
        return rebound_adjusted(nominal, rebound_fraction)
