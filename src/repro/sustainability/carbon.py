"""Carbon accounting: operational (grid) and embodied (manufacturing).

The embodied term is what makes replication doubly expensive: a hot standby
burns grid power *and* carries the manufacturing footprint of a whole extra
server. Defaults follow commonly cited LCA figures (≈1300 kgCO₂e embodied
per rack server, 4-year service life, ~300 gCO₂e/kWh for a mixed European
grid); all are constructor arguments for sensitivity analysis.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..sim.clock import YEARS


@dataclass(frozen=True)
class CarbonModel:
    """Carbon-intensity constants."""

    #: Grid carbon intensity in gCO₂e per kWh.
    grid_intensity_g_per_kwh: float = 300.0
    #: Embodied manufacturing carbon per server, kgCO₂e.
    embodied_kg_per_server: float = 1300.0
    #: Amortisation lifetime of a server, seconds.
    server_lifetime: float = 4 * YEARS

    def __post_init__(self) -> None:
        if self.grid_intensity_g_per_kwh < 0:
            raise ValueError("grid intensity cannot be negative")
        if self.embodied_kg_per_server < 0:
            raise ValueError("embodied carbon cannot be negative")
        if self.server_lifetime <= 0:
            raise ValueError("server lifetime must be positive")

    def operational_kg(self, kwh: float) -> float:
        """kgCO₂e from grid electricity."""
        if kwh < 0:
            raise ValueError(f"energy cannot be negative, got {kwh}")
        return kwh * self.grid_intensity_g_per_kwh / 1000.0

    def embodied_kg(self, servers: int, horizon: float) -> float:
        """Amortised manufacturing carbon for a fleet over a horizon."""
        if servers < 0:
            raise ValueError(f"server count cannot be negative, got {servers}")
        if horizon < 0:
            raise ValueError(f"horizon cannot be negative, got {horizon}")
        share = horizon / self.server_lifetime
        return servers * self.embodied_kg_per_server * share

    def total_kg(self, kwh: float, servers: int, horizon: float) -> float:
        return self.operational_kg(kwh) + self.embodied_kg(servers, horizon)


def rebound_adjusted(savings_kg: float, rebound_fraction: float) -> float:
    """Apply a rebound effect to a claimed saving.

    The paper cites Gossart's ICT rebound-effect review [4]: efficiency
    gains are partially (sometimes wholly) eaten by induced demand. A
    ``rebound_fraction`` of 0.3 keeps 70 % of the nominal saving; values
    ≥ 1 model backfire.
    """
    if savings_kg < 0:
        raise ValueError(f"savings cannot be negative, got {savings_kg}")
    if rebound_fraction < 0:
        raise ValueError(f"rebound fraction cannot be negative, got {rebound_fraction}")
    return savings_kg * (1.0 - rebound_fraction)
