"""Sustainability models: power, energy, carbon, lifecycle comparison."""

from .carbon import CarbonModel, rebound_adjusted
from .energy import DeploymentEnergy, EnergyModel
from .lca import (
    MAX_REPLICAS,
    LcaRow,
    LifecycleAssessment,
    SizedDeployment,
    size_deployment,
)
from .power import ServerPowerModel, joules_to_kwh, kwh_to_joules
from .grid import (
    DiurnalIntensity,
    RecoveryEmissions,
    best_maintenance_window,
    interval_emissions_g,
    recovery_emissions,
    standby_replica_emissions_g,
)
from .scenarios import (
    CDN_CACHE,
    DEFAULT_SCENARIOS,
    SMART_GRID,
    TELECOM_EDGE,
    FleetAssessment,
    FleetScenario,
    assess_fleet,
    summarize,
)
from .report import (
    availability_table,
    format_availability,
    format_seconds,
    format_table,
    lca_table,
)

__all__ = [
    "CarbonModel",
    "rebound_adjusted",
    "DeploymentEnergy",
    "EnergyModel",
    "MAX_REPLICAS",
    "LcaRow",
    "LifecycleAssessment",
    "SizedDeployment",
    "size_deployment",
    "DiurnalIntensity",
    "RecoveryEmissions",
    "best_maintenance_window",
    "interval_emissions_g",
    "recovery_emissions",
    "standby_replica_emissions_g",
    "CDN_CACHE",
    "DEFAULT_SCENARIOS",
    "SMART_GRID",
    "TELECOM_EDGE",
    "FleetAssessment",
    "FleetScenario",
    "assess_fleet",
    "summarize",
    "ServerPowerModel",
    "joules_to_kwh",
    "kwh_to_joules",
    "availability_table",
    "format_availability",
    "format_seconds",
    "format_table",
    "lca_table",
]
