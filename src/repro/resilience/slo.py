"""Service-level objective classes and classification helpers.

Telecom and smart-grid systems — the paper's target domains — specify
availability as "nines" classes. This module names the standard ladder and
classifies operating points against it, which E3/E8 use to find where each
recovery strategy's sustainable fault rate crosses each class boundary.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..sim.clock import YEARS
from .availability import downtime_budget, max_fault_rate


@dataclass(frozen=True)
class SloClass:
    """One availability class."""

    name: str
    availability: float

    @property
    def yearly_budget(self) -> float:
        """Allowed downtime per year in seconds."""
        return downtime_budget(self.availability, YEARS)

    def sustainable_fault_rate(self, recovery_time: float) -> float:
        """Faults/second this class tolerates at a given recovery time."""
        return max_fault_rate(self.availability, recovery_time, YEARS)

    def sustainable_faults_per_year(self, recovery_time: float) -> float:
        return self.sustainable_fault_rate(recovery_time) * YEARS


#: The standard ladder, two to six nines. "Five nines" (99.999 %) is the
#: carrier-grade class the paper's argument is built around.
SLO_LADDER: list[SloClass] = [
    SloClass("two-nines", 0.99),
    SloClass("three-nines", 0.999),
    SloClass("four-nines", 0.9999),
    SloClass("five-nines", 0.99999),
    SloClass("six-nines", 0.999999),
]

FIVE_NINES = SLO_LADDER[3]


def classify(availability: float) -> SloClass | None:
    """Best (highest) class an achieved availability satisfies."""
    best: SloClass | None = None
    for slo in SLO_LADDER:
        if availability >= slo.availability:
            best = slo
    return best


def crossover_faults(
    recovery_time: float, slo: SloClass = FIVE_NINES
) -> float:
    """Yearly fault count at which a strategy starts violating ``slo``.

    For process restart at 2 minutes this is ≈2.6 — i.e. the paper's
    "three faults per year" example is just past the five-nines cliff.
    """
    if recovery_time <= 0:
        return float("inf")
    return slo.yearly_budget / recovery_time
