"""Recovery strategies, availability math, and service-level simulation."""

from .availability import (
    AvailabilityReport,
    availability_from_downtime,
    downtime_budget,
    max_fault_rate,
    max_recoveries,
    nines,
    violates_target,
)
from .budget import BudgetEvent, ErrorBudget
from .markov import (
    AnalyticComparison,
    MarkovChain,
    availability_from_rates,
    expected_yearly_downtime,
    steady_state_availability,
    two_replica_availability,
)
from .simulation import (
    ServiceAvailabilitySimulation,
    ServiceOutcome,
    compare_strategies,
)
from .slo import FIVE_NINES, SLO_LADDER, SloClass, classify, crossover_faults
from .strategy import RecoveryStrategyModel, StrategySpec

__all__ = [
    "BudgetEvent",
    "ErrorBudget",
    "AnalyticComparison",
    "MarkovChain",
    "availability_from_rates",
    "expected_yearly_downtime",
    "steady_state_availability",
    "two_replica_availability",
    "AvailabilityReport",
    "availability_from_downtime",
    "downtime_budget",
    "max_fault_rate",
    "max_recoveries",
    "nines",
    "violates_target",
    "ServiceAvailabilitySimulation",
    "ServiceOutcome",
    "compare_strategies",
    "FIVE_NINES",
    "SLO_LADDER",
    "SloClass",
    "classify",
    "crossover_faults",
    "RecoveryStrategyModel",
    "StrategySpec",
]
