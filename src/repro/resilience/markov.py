"""Analytic availability models (CTMC), cross-validating the simulation.

The discrete-event results of E3 should not be taken on faith: classical
dependability theory predicts the same numbers in closed form, and this
module computes them so tests can check simulation against theory.

* :func:`steady_state_availability` — the renewal-theory identity
  ``A = MTBF / (MTBF + MTTR)`` for a single repairable instance.
* :class:`MarkovChain` — a generic continuous-time Markov chain with a
  numpy-based stationary-distribution solver.
* :func:`two_replica_availability` — the standard 3-state birth–death model
  of a duplexed system with independent (parallel) repair.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

import numpy as np

from ..sim.clock import YEARS


def steady_state_availability(mtbf: float, mttr: float) -> float:
    """``A = MTBF / (MTBF + MTTR)`` — single repairable component."""
    if mtbf <= 0:
        raise ValueError(f"MTBF must be positive, got {mtbf}")
    if mttr < 0:
        raise ValueError(f"MTTR cannot be negative, got {mttr}")
    return mtbf / (mtbf + mttr)


def availability_from_rates(fault_rate: float, recovery_time: float) -> float:
    """Availability of one instance at ``fault_rate`` faults/second.

    Equivalent to :func:`steady_state_availability` with
    ``MTBF = 1 / fault_rate``: ``A = 1 / (1 + λ·MTTR)``.
    """
    if fault_rate < 0:
        raise ValueError(f"fault rate cannot be negative, got {fault_rate}")
    if recovery_time < 0:
        raise ValueError(f"recovery time cannot be negative, got {recovery_time}")
    if fault_rate == 0:
        return 1.0
    return 1.0 / (1.0 + fault_rate * recovery_time)


class MarkovChain:
    """A finite CTMC described by its generator matrix.

    ``rates[i][j]`` is the transition rate from state ``i`` to state ``j``
    (diagonal entries are ignored and rebuilt so rows sum to zero).
    """

    def __init__(self, rates: Sequence[Sequence[float]], labels: Sequence[str]) -> None:
        matrix = np.asarray(rates, dtype=float)
        if matrix.ndim != 2 or matrix.shape[0] != matrix.shape[1]:
            raise ValueError(f"rate matrix must be square, got {matrix.shape}")
        if len(labels) != matrix.shape[0]:
            raise ValueError("one label per state required")
        if (matrix < 0).any() and not np.allclose(
            matrix[matrix < 0], np.diag(matrix)[np.diag(matrix) < 0]
        ):
            raise ValueError("off-diagonal rates must be non-negative")
        generator = matrix.copy()
        np.fill_diagonal(generator, 0.0)
        np.fill_diagonal(generator, -generator.sum(axis=1))
        self.generator = generator
        self.labels = list(labels)

    def stationary_distribution(self) -> dict[str, float]:
        """Solve ``πQ = 0`` with ``Σπ = 1`` (least squares, well-posed for
        irreducible chains)."""
        n = self.generator.shape[0]
        # augment with the normalisation constraint
        a = np.vstack([self.generator.T, np.ones(n)])
        b = np.zeros(n + 1)
        b[-1] = 1.0
        pi, *_ = np.linalg.lstsq(a, b, rcond=None)
        pi = np.clip(pi, 0.0, None)
        pi = pi / pi.sum()
        return dict(zip(self.labels, pi.tolist()))

    def probability(self, *states: str) -> float:
        distribution = self.stationary_distribution()
        return sum(distribution[s] for s in states)


def two_replica_availability(
    node_fault_rate: float,
    node_repair_time: float,
    failover_time: float = 0.0,
) -> float:
    """Availability of a duplexed deployment with parallel repair.

    States: ``2up → 1up`` at ``2λ``, ``1up → 0up`` at ``λ``; repairs
    ``1up → 2up`` at ``µ`` and ``0up → 1up`` at ``2µ``. Service is up in
    states ``2up``/``1up`` minus the transient failover window charged per
    node-failure event (rate ``2λ·π₂ + λ·π₁`` ≈ downtime ``rate × failover``).
    """
    if node_fault_rate < 0 or node_repair_time <= 0:
        raise ValueError("need non-negative fault rate and positive repair time")
    if node_fault_rate == 0:
        return 1.0
    lam = node_fault_rate
    mu = 1.0 / node_repair_time
    chain = MarkovChain(
        [
            [0.0, 2 * lam, 0.0],
            [mu, 0.0, lam],
            [0.0, 2 * mu, 0.0],
        ],
        labels=["2up", "1up", "0up"],
    )
    distribution = chain.stationary_distribution()
    base_availability = distribution["2up"] + distribution["1up"]
    failure_event_rate = 2 * lam * distribution["2up"]
    failover_unavailability = min(1.0, failure_event_rate * failover_time)
    return max(0.0, base_availability - failover_unavailability)


@dataclass(frozen=True)
class AnalyticComparison:
    """Analytic vs simulated availability for one operating point."""

    strategy: str
    analytic: float
    simulated: float

    @property
    def absolute_error(self) -> float:
        return abs(self.analytic - self.simulated)


def expected_yearly_downtime(fault_rate_per_year: float, recovery_time: float) -> float:
    """E[downtime] per year for a single instance (small-unavailability
    regime, matching the paper's back-of-envelope)."""
    if fault_rate_per_year < 0 or recovery_time < 0:
        raise ValueError("rates and times must be non-negative")
    availability = availability_from_rates(fault_rate_per_year / YEARS, recovery_time)
    return (1.0 - availability) * YEARS
