"""Long-horizon service availability simulation (discrete-event).

E3/E5 simulate a service for up to a year of virtual time under a fault
arrival process and a recovery strategy. Faults are discrete events; request
traffic is integrated analytically (``rate × uptime``) because a year of
per-request events is neither tractable nor necessary — downtime intervals
are what decide availability.

Semantics:

* a fault arriving while the service is already down is *absorbed* (the
  restart in progress also clears it), matching how a supervisor restart
  handles a crash storm;
* zero-downtime strategies (SDRaD rewind) still lose the faulted request(s)
  and accumulate their microscopic recovery latencies, which is exactly the
  accounting behind the paper's ">9·10⁷ recoveries" headroom number.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Sequence

from ..sim.clock import YEARS
from ..sim.engine import Engine
from ..sim.trace import Tracer
from .availability import availability_from_downtime, nines
from .strategy import StrategySpec


@dataclass
class ServiceOutcome:
    """Result of one simulated (strategy × fault-arrival) run."""

    strategy: str
    horizon: float
    faults_injected: int
    faults_recovered: int
    faults_absorbed: int
    downtime: float
    availability: float
    achieved_nines: float
    requests_offered: float
    requests_served: float
    requests_dropped: float

    @property
    def meets_five_nines(self) -> bool:
        return self.availability >= 0.99999


class ServiceAvailabilitySimulation:
    """Drives one strategy through a fault schedule on the event engine."""

    def __init__(
        self,
        spec: StrategySpec,
        fault_times: Sequence[float],
        horizon: float = YEARS,
        request_rate: float = 0.0,
        tracer: Optional[Tracer] = None,
    ) -> None:
        if horizon <= 0:
            raise ValueError(f"horizon must be positive, got {horizon}")
        if request_rate < 0:
            raise ValueError(f"request rate cannot be negative, got {request_rate}")
        self.spec = spec
        self.fault_times = sorted(t for t in fault_times if 0 <= t < horizon)
        self.horizon = horizon
        self.request_rate = request_rate
        self.tracer = tracer if tracer is not None else Tracer()
        self._down_until = -1.0
        self._recovered = 0
        self._absorbed = 0
        self._requests_lost = 0
        self._micro_downtime = 0.0

    def run(self) -> ServiceOutcome:
        engine = Engine()
        self.tracer.record(0.0, "service.start", strategy=self.spec.name)
        for t in self.fault_times:
            engine.schedule_at(t, lambda t=t: self._on_fault(t))
        engine.run(until=self.horizon)

        downtime = self.tracer.downtime(self.horizon) + self._micro_downtime
        availability = availability_from_downtime(downtime, self.horizon)
        offered = self.request_rate * self.horizon
        dropped = self.request_rate * downtime + self._requests_lost
        dropped = min(dropped, offered)
        return ServiceOutcome(
            strategy=self.spec.name,
            horizon=self.horizon,
            faults_injected=len(self.fault_times),
            faults_recovered=self._recovered,
            faults_absorbed=self._absorbed,
            downtime=downtime,
            availability=availability,
            achieved_nines=nines(availability),
            requests_offered=offered,
            requests_served=offered - dropped,
            requests_dropped=dropped,
        )

    # ------------------------------------------------------------------

    def _on_fault(self, now: float) -> None:
        if now < self._down_until:
            self._absorbed += 1
            self.tracer.record(now, "fault.absorbed")
            return
        self._recovered += 1
        self._requests_lost += self.spec.requests_lost_per_fault
        dt = self.spec.downtime_per_fault
        self.tracer.record(now, "fault.detected", strategy=self.spec.name)
        # In-process recovery is so short that modelling it as a service
        # down/up pair would drown the trace; account it directly instead.
        if dt < 1e-3:
            self._micro_downtime += dt
            self.tracer.record(now, "fault.rewound", recovery=dt)
            return
        self._down_until = min(now + dt, self.horizon)
        self.tracer.record(now, "service.down")
        # The matching "up" event may land beyond the horizon; downtime()
        # then truncates the interval at the horizon.
        if self._down_until < self.horizon:
            self.tracer.record(self._down_until, "service.up")


def compare_strategies(
    specs: Sequence[StrategySpec],
    fault_times: Sequence[float],
    horizon: float = YEARS,
    request_rate: float = 0.0,
) -> list[ServiceOutcome]:
    """Run the same fault schedule through several strategies (E3's rows)."""
    return [
        ServiceAvailabilitySimulation(
            spec, fault_times, horizon=horizon, request_rate=request_rate
        ).run()
        for spec in specs
    ]
