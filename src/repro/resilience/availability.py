"""Availability arithmetic: downtime budgets, nines, recovery headroom.

Reproduces the paper's §IV arithmetic exactly:

* 99.999 % availability over a year allows ≈315.4 s of downtime;
* three process restarts of ~2 minutes each (≈360 s) blow that budget;
* at 3.5 µs per rewind the same budget admits >9×10⁷ recoveries.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from ..sim.clock import YEARS


def downtime_budget(availability: float, horizon: float = YEARS) -> float:
    """Seconds of allowed downtime for an availability target.

    ``availability`` is a fraction (0.99999 for "five nines").
    """
    if not 0.0 < availability <= 1.0:
        raise ValueError(f"availability must be in (0, 1], got {availability}")
    return (1.0 - availability) * horizon


def availability_from_downtime(downtime: float, horizon: float = YEARS) -> float:
    """Achieved availability given total downtime over a horizon."""
    if horizon <= 0:
        raise ValueError(f"horizon must be positive, got {horizon}")
    if downtime < 0:
        raise ValueError(f"downtime cannot be negative, got {downtime}")
    return max(0.0, 1.0 - downtime / horizon)


def nines(availability: float) -> float:
    """Number of nines: 0.999 → 3.0, 0.9995 → 3.3...

    Defined as ``-log10(1 - availability)``; infinite for perfect
    availability.
    """
    if not 0.0 <= availability <= 1.0:
        raise ValueError(f"availability must be in [0, 1], got {availability}")
    if availability == 1.0:
        return math.inf
    return -math.log10(1.0 - availability)


def max_recoveries(
    availability: float, recovery_time: float, horizon: float = YEARS
) -> float:
    """Faults recoverable per horizon without violating the target.

    The paper's "more than 9·10⁷ recoveries" for five nines at 3.5 µs.
    """
    if recovery_time < 0:
        raise ValueError(f"recovery time cannot be negative, got {recovery_time}")
    budget = downtime_budget(availability, horizon)
    if recovery_time == 0:
        return math.inf
    return budget / recovery_time


def max_fault_rate(
    availability: float, recovery_time: float, horizon: float = YEARS
) -> float:
    """Highest sustainable fault rate (faults/second) for the target."""
    recoveries = max_recoveries(availability, recovery_time, horizon)
    if math.isinf(recoveries):
        return math.inf
    return recoveries / horizon


def violates_target(
    faults: int, recovery_time: float, availability: float, horizon: float = YEARS
) -> bool:
    """Does ``faults`` × ``recovery_time`` downtime break the target?"""
    if faults < 0:
        raise ValueError(f"fault count cannot be negative, got {faults}")
    return faults * recovery_time > downtime_budget(availability, horizon)


@dataclass(frozen=True)
class AvailabilityReport:
    """Summary of one (strategy, fault-rate) operating point."""

    strategy: str
    faults: int
    downtime: float
    horizon: float
    availability: float
    achieved_nines: float
    meets_five_nines: bool

    @classmethod
    def compute(
        cls, strategy: str, faults: int, downtime_per_fault: float, horizon: float = YEARS
    ) -> "AvailabilityReport":
        downtime = faults * downtime_per_fault
        availability = availability_from_downtime(downtime, horizon)
        return cls(
            strategy=strategy,
            faults=faults,
            downtime=downtime,
            horizon=horizon,
            availability=availability,
            achieved_nines=nines(availability),
            meets_five_nines=availability >= 0.99999,
        )
