"""Recovery strategies: SDRaD rewind vs the baselines it is compared to.

The paper's availability argument (§II/§IV) compares four ways a service can
come back after a detected memory fault:

* **rewind** (SDRaD) — discard the faulted domain, ~3.5 µs, process keeps
  serving; one request is lost, the service never goes down;
* **process restart** — the mitigation-only baseline: detection aborts, the
  supervisor restarts the process and it reloads its state (≈2 minutes for
  the paper's 10 GB Memcached);
* **container restart** — same plus container/runtime setup;
* **replicated failover** — an N-way redundant deployment fails over to a
  hot replica in seconds, at the cost of N× hardware (the over-provisioning
  §IV argues is environmentally unsustainable).

A strategy answers two questions: how long is the service unavailable after
one fault (:meth:`downtime_per_fault`) and how much hardware it needs
(:attr:`replicas`). The second feeds the sustainability model (E5).
"""

from __future__ import annotations

from dataclasses import dataclass

from ..sim.cost import DEFAULT_COST_MODEL, CostModel


@dataclass(frozen=True)
class StrategySpec:
    """Static description of a recovery strategy's costs."""

    name: str
    #: Service-visible downtime caused by one detected fault (seconds).
    downtime_per_fault: float
    #: Interactive requests lost per fault beyond the downtime window
    #: (the faulted request itself, for in-process recovery).
    requests_lost_per_fault: int
    #: Server instances the deployment keeps powered.
    replicas: int
    #: Steady-state relative runtime overhead (fraction, e.g. 0.03).
    runtime_overhead: float

    def recoveries_per_budget(self, downtime_budget: float) -> float:
        """How many faults fit in a downtime budget (the paper's 9·10⁷)."""
        if self.downtime_per_fault <= 0:
            return float("inf")
        return downtime_budget / self.downtime_per_fault


class RecoveryStrategyModel:
    """Factory for :class:`StrategySpec` given a cost model and service size."""

    def __init__(self, cost: CostModel = DEFAULT_COST_MODEL) -> None:
        self.cost = cost

    def sdrad_rewind(
        self,
        *,
        scrub_pages: int = 0,
        runtime_overhead: float = 0.03,
    ) -> StrategySpec:
        """SDRaD: rewind-and-discard in-process.

        ``runtime_overhead`` defaults to the middle of the paper's measured
        2–4 % band; E1 measures it instead of assuming it.
        """
        return StrategySpec(
            name="sdrad-rewind",
            downtime_per_fault=self.cost.rewind_time(scrub_pages=scrub_pages),
            requests_lost_per_fault=1,
            replicas=1,
            runtime_overhead=runtime_overhead,
        )

    def checkpoint_restore(
        self,
        domain_bytes: int,
        request_time: float | None = None,
    ) -> StrategySpec:
        """In-process checkpoint/restore — the design SDRaD rejected (D2/D3).

        Restoring a snapshot recovers in one domain-sized memcpy, but the
        checkpoint must be *taken before every entry*, so the steady-state
        overhead is a full domain copy per request — catastrophic next to a
        0.3 µs domain switch. E2c quantifies this ablation.
        """
        if domain_bytes <= 0:
            raise ValueError(f"domain size must be positive, got {domain_bytes}")
        copy = self.cost.copy_time(domain_bytes)
        per_request = request_time if request_time is not None else self.cost.memcached_op
        if per_request <= 0:
            raise ValueError(f"request time must be positive, got {per_request}")
        return StrategySpec(
            name="checkpoint-restore",
            downtime_per_fault=copy,
            requests_lost_per_fault=1,
            replicas=1,
            runtime_overhead=copy / per_request,
        )

    def process_restart(self, dataset_bytes: int) -> StrategySpec:
        return StrategySpec(
            name="process-restart",
            downtime_per_fault=self.cost.process_restart_time(dataset_bytes),
            requests_lost_per_fault=0,
            replicas=1,
            runtime_overhead=0.0,
        )

    def container_restart(self, dataset_bytes: int) -> StrategySpec:
        return StrategySpec(
            name="container-restart",
            downtime_per_fault=self.cost.container_restart_time(dataset_bytes),
            requests_lost_per_fault=0,
            replicas=1,
            runtime_overhead=0.0,
        )

    def replicated_failover(self, replicas: int = 2) -> StrategySpec:
        """Hot-standby replication: fast failover, N× hardware.

        The failed instance restarts in the background; service downtime is
        only the failover window, which is why redundancy is the classic
        high-availability answer the paper wants to displace.
        """
        if replicas < 2:
            raise ValueError(f"failover needs at least 2 replicas, got {replicas}")
        return StrategySpec(
            name=f"replicated-{replicas}x",
            downtime_per_fault=self.cost.failover,
            requests_lost_per_fault=0,
            replicas=replicas,
            runtime_overhead=0.0,
        )

    def all_for(
        self, dataset_bytes: int, replicas: int = 2
    ) -> list[StrategySpec]:
        """The standard comparison set used by E2/E3/E5."""
        return [
            self.sdrad_rewind(),
            self.process_restart(dataset_bytes),
            self.container_restart(dataset_bytes),
            self.replicated_failover(replicas),
        ]
