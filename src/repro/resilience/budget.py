"""Error budgets: the SRE-side view of the paper's availability argument.

An availability class is operationally managed as an *error budget*: five
nines over a year is 315.36 s of downtime to "spend". This module tracks
spending against a budget and computes burn rates, which turns the paper's
static arithmetic into the operational question a service owner actually
asks: *at the current fault rate, when do we run out?*

The punchline the paper implies: a restart-recovered service spends ~38 %
of a five-nines yearly budget per fault, so its owner lives two faults from
breach; a rewind-recovered service spends 0.000001 % and can stop thinking
about memory faults as a budget item at all.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from ..sim.clock import YEARS
from .availability import downtime_budget


@dataclass
class BudgetEvent:
    """One downtime spend."""

    timestamp: float
    downtime: float
    cause: str


class ErrorBudget:
    """Tracks downtime spending against an availability target."""

    def __init__(
        self,
        availability_target: float,
        horizon: float = YEARS,
    ) -> None:
        self.availability_target = availability_target
        self.horizon = horizon
        self.total = downtime_budget(availability_target, horizon)
        self._events: list[BudgetEvent] = []
        self._spent = 0.0

    # ------------------------------------------------------------------

    def spend(self, timestamp: float, downtime: float, cause: str = "") -> None:
        """Record a downtime event."""
        if downtime < 0:
            raise ValueError(f"downtime cannot be negative, got {downtime}")
        if timestamp < 0:
            raise ValueError(f"timestamp cannot be negative, got {timestamp}")
        self._events.append(
            BudgetEvent(timestamp=timestamp, downtime=downtime, cause=cause)
        )
        self._spent += downtime

    @property
    def spent(self) -> float:
        return self._spent

    @property
    def remaining(self) -> float:
        return max(0.0, self.total - self._spent)

    @property
    def exhausted(self) -> bool:
        return self._spent > self.total

    @property
    def spent_fraction(self) -> float:
        if self.total == 0:
            return math.inf if self._spent > 0 else 0.0
        return self._spent / self.total

    @property
    def events(self) -> list[BudgetEvent]:
        return list(self._events)

    # ------------------------------------------------------------------

    def burn_rate(self, now: float) -> float:
        """Budget-fractions per horizon at the observed spending pace.

        A burn rate of 1.0 means the budget lasts exactly the horizon;
        >1.0 means breach before the horizon ends. (Google SRE's multiwindow
        alerts page on burn rates ≥ 2.)
        """
        if now <= 0:
            raise ValueError(f"now must be positive, got {now}")
        elapsed_fraction = min(1.0, now / self.horizon)
        if elapsed_fraction == 0:
            return math.inf if self._spent else 0.0
        return self.spent_fraction / elapsed_fraction

    def projected_breach_time(self, now: float) -> float:
        """Time at which the budget runs out at the current pace (inf if
        never within numeric range)."""
        rate = self.burn_rate(now)
        if rate <= 1.0 and self.spent_fraction <= 1.0 and rate == 0:
            return math.inf
        if self._spent == 0:
            return math.inf
        spend_per_second = self._spent / now
        if spend_per_second == 0:
            return math.inf
        return self.remaining / spend_per_second + now

    def faults_until_breach(self, downtime_per_fault: float) -> float:
        """How many more faults of a given cost the budget absorbs."""
        if downtime_per_fault < 0:
            raise ValueError("downtime per fault cannot be negative")
        if downtime_per_fault == 0:
            return math.inf
        return self.remaining / downtime_per_fault

    def spend_by_cause(self) -> dict[str, float]:
        out: dict[str, float] = {}
        for event in self._events:
            out[event.cause] = out.get(event.cause, 0.0) + event.downtime
        return out
