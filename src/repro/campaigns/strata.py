"""The campaign factor space: strata, phases and the campaign config.

A *stratum* is one cell of the full factorial fault class × target domain ×
injection phase × isolation backend. The sampler keeps an independent
Clopper–Pearson interval per stratum and stops sampling a cell once its
containment interval is narrow enough, so cheap certain cells (null derefs
are always caught) stop early while genuinely random cells (mid-sized
over-reads) keep drawing.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Optional, Tuple

from ..faultinj.models import FaultKind
from ..memory.backends import available_backends
from ..sim.cost import DEFAULT_COST_MODEL, GIB, CostModel


class InjectionPhase(enum.Enum):
    """When in a domain's serving life the fault strikes.

    The phase is realised as a prelude run inside the same domain entry
    before the fault model: a warm domain's heap has live allocations (so
    e.g. an over-read of a given length sits closer to the region boundary
    and crosses it more often), a draining domain has churned and freed
    (exercising the lazy-scrub path under rewind).
    """

    ENTRY = "entry"
    WARM = "warm"
    DRAIN = "drain"


@dataclass(frozen=True)
class Stratum:
    """One cell of the campaign's factorial design."""

    kind: FaultKind
    domain: str
    phase: InjectionPhase
    backend: str

    @property
    def key(self) -> str:
        """Stable identity used for rng derivation, sorting and resume."""
        return "|".join(
            (self.kind.value, self.domain, self.phase.value, self.backend)
        )

    def as_dict(self) -> dict:
        return {
            "kind": self.kind.value,
            "domain": self.domain,
            "phase": self.phase.value,
            "backend": self.backend,
        }


#: Default fault classes: a mix whose containment probabilities genuinely
#: vary (canary smashes depend on overflow depth, over-reads on length and
#: heap state) rather than degenerate always-caught classes only.
DEFAULT_KINDS: Tuple[FaultKind, ...] = (
    FaultKind.STACK_SMASH,
    FaultKind.HEAP_OVERFLOW,
    FaultKind.OVER_READ,
)

DEFAULT_DOMAINS: Tuple[str, ...] = ("shard-0", "shard-1")
DEFAULT_PHASES: Tuple[InjectionPhase, ...] = (
    InjectionPhase.ENTRY,
    InjectionPhase.WARM,
)
DEFAULT_BACKENDS: Tuple[str, ...] = ("mpk", "cheri")


@dataclass
class CampaignConfig:
    """Everything a campaign needs; two configs that compare equal always
    produce byte-identical campaigns."""

    kinds: Tuple[FaultKind, ...] = DEFAULT_KINDS
    domains: Tuple[str, ...] = DEFAULT_DOMAINS
    phases: Tuple[InjectionPhase, ...] = DEFAULT_PHASES
    backends: Tuple[str, ...] = DEFAULT_BACKENDS
    seed: int = 0

    # --- sequential sampling -----------------------------------------
    #: Stop sampling a stratum when its Clopper–Pearson half-width on the
    #: containment probability is at or below this.
    ci_halfwidth: float = 0.12
    confidence: float = 0.95
    #: Injections per stratum per round (one fresh runtime per round).
    batch: int = 8
    min_per_stratum: int = 8
    max_per_stratum: int = 256
    max_rounds: int = 64
    #: Arrival process spreading a round's injections over its horizon:
    #: "periodic" (exact count) or "poisson" (memoryless, random count).
    arrival: str = "periodic"
    round_horizon: float = 1.0
    #: Modelled app requests served between consecutive injections — they
    #: feed the ledger's request rate and the latency regression baseline.
    background_requests: int = 2

    # --- deployment being decided for --------------------------------
    cost: CostModel = DEFAULT_COST_MODEL
    dataset_bytes: int = 10 * GIB
    #: Threat rate the availability SLO is evaluated against.
    faults_per_year: float = 52.0
    #: Fraction of faults that are transient (a backoff-retry succeeds).
    transient_fraction: float = 0.25
    retry_budget: int = 1
    #: First retry's backoff delay; doubles per further retry. Charged as
    #: recovery time by the runtime, so it must appear in the decision
    #: formulas too or closure would compare mismatched quantities.
    retry_backoff: float = 100e-6
    quarantine_window: float = 0.05
    #: Fraction of would-be faults that still strike a quarantining domain
    #: (the rest hit the quarantine window and are shed).
    quarantine_suppression: float = 0.35

    # --- decision constraints ----------------------------------------
    slo: float = 0.9999
    carbon_budget_g_per_year: float = 50.0
    #: Backend the recommendation is made for (default: first listed).
    decision_backend: Optional[str] = None
    score_weights: Tuple[float, float, float] = (0.5, 0.35, 0.15)

    # --- model + closure ---------------------------------------------
    ridge: float = 1e-4
    #: Floor on every prediction interval's relative half-width. The
    #: simulator's cost models are deterministic, so a regression can fit
    #: them with near-zero residuals and emit absurdly tight intervals;
    #: the floor encodes irreducible model-form uncertainty.
    min_relative_halfwidth: float = 0.05
    validation_injections: int = 32

    def __post_init__(self) -> None:
        if not self.kinds:
            raise ValueError("campaign needs at least one fault kind")
        if not self.domains:
            raise ValueError("campaign needs at least one target domain")
        if not self.phases:
            raise ValueError("campaign needs at least one injection phase")
        if not self.backends:
            raise ValueError("campaign needs at least one backend")
        known = set(available_backends())
        for backend in self.backends:
            if backend not in known:
                raise ValueError(
                    f"unknown backend {backend!r}; available: {sorted(known)}"
                )
        if len(set(self.domains)) != len(self.domains):
            raise ValueError("duplicate domain labels")
        if not 0.0 < self.ci_halfwidth < 0.5:
            raise ValueError(f"ci_halfwidth must be in (0, 0.5), got {self.ci_halfwidth}")
        if not 0.5 < self.confidence < 1.0:
            raise ValueError(f"confidence must be in (0.5, 1), got {self.confidence}")
        # One fresh MPK runtime per round hosts root + victim + app domain +
        # one target domain per injection: 15 keys bound the batch.
        if not 1 <= self.batch <= 8:
            raise ValueError(f"batch must be in [1, 8], got {self.batch}")
        if self.arrival not in ("periodic", "poisson"):
            raise ValueError(f"unknown arrival process {self.arrival!r}")
        if self.min_per_stratum < 1 or self.max_per_stratum < self.min_per_stratum:
            raise ValueError("need 1 <= min_per_stratum <= max_per_stratum")
        if self.round_horizon <= 0:
            raise ValueError("round_horizon must be positive")
        if self.background_requests < 1:
            raise ValueError("background_requests must be >= 1 (ledger rate)")
        if not 0.0 < self.slo < 1.0:
            raise ValueError(f"slo must be in (0, 1), got {self.slo}")
        if self.carbon_budget_g_per_year <= 0:
            raise ValueError("carbon budget must be positive")
        if self.decision_backend is None:
            self.decision_backend = self.backends[0]
        if self.decision_backend not in self.backends:
            raise ValueError(
                f"decision backend {self.decision_backend!r} is not sampled"
            )
        if self.retry_budget < 0:
            raise ValueError("retry_budget must be >= 0")
        if self.retry_backoff < 0:
            raise ValueError("retry_backoff must be >= 0")
        if not 0.0 <= self.transient_fraction <= 1.0:
            raise ValueError("transient_fraction must be in [0, 1]")
        if not 0.0 <= self.quarantine_suppression <= 1.0:
            raise ValueError("quarantine_suppression must be in [0, 1]")
        if abs(sum(self.score_weights) - 1.0) > 1e-9:
            raise ValueError("score_weights must sum to 1")

    def strata(self) -> "list[Stratum]":
        """The full factorial, in deterministic (config) order."""
        return [
            Stratum(kind=k, domain=d, phase=p, backend=b)
            for b in self.backends
            for d in self.domains
            for p in self.phases
            for k in self.kinds
        ]

    def domain_index(self, domain: str) -> int:
        return self.domains.index(domain)

    def summary(self) -> dict:
        return {
            "kinds": [k.value for k in self.kinds],
            "domains": list(self.domains),
            "phases": [p.value for p in self.phases],
            "backends": list(self.backends),
            "seed": self.seed,
            "ci_halfwidth": self.ci_halfwidth,
            "confidence": self.confidence,
            "slo": self.slo,
            "carbon_budget_g_per_year": self.carbon_budget_g_per_year,
            "faults_per_year": self.faults_per_year,
            "decision_backend": self.decision_backend,
            "strata": len(self.strata()),
        }
