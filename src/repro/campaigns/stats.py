"""Pure-python statistics for campaign sampling and model fitting.

No numpy/scipy: the container bakes in only the standard toolchain, so the
exact Clopper–Pearson interval is built from a regularized incomplete beta
(Lentz continued fraction) inverted by bisection, and the linear algebra is
Gauss–Jordan with partial pivoting. Everything here is deterministic
arithmetic — the sampling loop's stopping rule and the fitted coefficients
must be byte-identical across runs of the same seed.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import List, Sequence

Matrix = List[List[float]]
Vector = List[float]

# ----------------------------------------------------------------------
# Incomplete beta / exact binomial intervals
# ----------------------------------------------------------------------


def _betacf(a: float, b: float, x: float) -> float:
    """Continued fraction for the incomplete beta (Lentz's method)."""
    tiny = 1e-300
    qab = a + b
    qap = a + 1.0
    qam = a - 1.0
    c = 1.0
    d = 1.0 - qab * x / qap
    if abs(d) < tiny:
        d = tiny
    d = 1.0 / d
    h = d
    for m in range(1, 300):
        m2 = 2 * m
        aa = m * (b - m) * x / ((qam + m2) * (a + m2))
        d = 1.0 + aa * d
        if abs(d) < tiny:
            d = tiny
        c = 1.0 + aa / c
        if abs(c) < tiny:
            c = tiny
        d = 1.0 / d
        h *= d * c
        aa = -(a + m) * (qab + m) * x / ((a + m2) * (qap + m2))
        d = 1.0 + aa * d
        if abs(d) < tiny:
            d = tiny
        c = 1.0 + aa / c
        if abs(c) < tiny:
            c = tiny
        d = 1.0 / d
        delta = d * c
        h *= delta
        if abs(delta - 1.0) < 1e-14:
            break
    return h


def betainc_reg(a: float, b: float, x: float) -> float:
    """Regularized incomplete beta function I_x(a, b)."""
    if x <= 0.0:
        return 0.0
    if x >= 1.0:
        return 1.0
    ln_front = (
        math.lgamma(a + b)
        - math.lgamma(a)
        - math.lgamma(b)
        + a * math.log(x)
        + b * math.log(1.0 - x)
    )
    front = math.exp(ln_front)
    # The continued fraction converges fast for x < (a+1)/(a+b+2); use the
    # symmetry I_x(a,b) = 1 - I_{1-x}(b,a) on the other side.
    if x < (a + 1.0) / (a + b + 2.0):
        return front * _betacf(a, b, x) / a
    return 1.0 - front * _betacf(b, a, 1.0 - x) / b


def beta_ppf(q: float, a: float, b: float) -> float:
    """Quantile of the Beta(a, b) distribution by bisection.

    Bisection (not Newton) on purpose: it is unconditionally convergent and
    bit-reproducible, and the campaign stopping rule only needs ~1e-12
    accuracy on probabilities.
    """
    if not 0.0 < q < 1.0:
        raise ValueError(f"quantile must be in (0, 1), got {q}")
    lo, hi = 0.0, 1.0
    for _ in range(200):
        mid = 0.5 * (lo + hi)
        if betainc_reg(a, b, mid) < q:
            lo = mid
        else:
            hi = mid
        if hi - lo < 1e-14:
            break
    return 0.5 * (lo + hi)


@dataclass(frozen=True)
class ConfidenceInterval:
    """A two-sided interval with its point estimate."""

    lo: float
    mid: float
    hi: float

    @property
    def halfwidth(self) -> float:
        return 0.5 * (self.hi - self.lo)

    def contains(self, value: float) -> bool:
        return self.lo <= value <= self.hi

    def overlaps(self, other: "ConfidenceInterval") -> bool:
        """Statistical compatibility: the two intervals intersect."""
        return self.lo <= other.hi and other.lo <= self.hi

    def as_dict(self) -> dict:
        return {"lo": self.lo, "mid": self.mid, "hi": self.hi}


def clopper_pearson(
    successes: int, trials: int, confidence: float = 0.95
) -> ConfidenceInterval:
    """Exact (Clopper–Pearson) binomial confidence interval.

    The campaign's stopping rule: sample a stratum until this interval's
    half-width on the containment probability drops below the target. Exact
    rather than Wald because strata routinely sit at p near 0 or 1 (e.g.
    null derefs are always detected) where the normal approximation is
    garbage.
    """
    if trials < 0 or successes < 0 or successes > trials:
        raise ValueError(f"bad binomial counts: {successes}/{trials}")
    if not 0.0 < confidence < 1.0:
        raise ValueError(f"confidence must be in (0, 1), got {confidence}")
    if trials == 0:
        return ConfidenceInterval(0.0, 0.5, 1.0)
    alpha = 1.0 - confidence
    mid = successes / trials
    lo = (
        0.0
        if successes == 0
        else beta_ppf(alpha / 2.0, successes, trials - successes + 1)
    )
    hi = (
        1.0
        if successes == trials
        else beta_ppf(1.0 - alpha / 2.0, successes + 1, trials - successes)
    )
    return ConfidenceInterval(lo, mid, hi)


def normal_quantile(p: float) -> float:
    """Standard normal quantile (Acklam's rational approximation).

    Good to ~1.15e-9 absolute error everywhere — far below the sampling
    noise the Wald intervals it feeds carry anyway.
    """
    if not 0.0 < p < 1.0:
        raise ValueError(f"quantile must be in (0, 1), got {p}")
    a = (
        -3.969683028665376e01,
        2.209460984245205e02,
        -2.759285104469687e02,
        1.383577518672690e02,
        -3.066479806614716e01,
        2.506628277459239e00,
    )
    b = (
        -5.447609879822406e01,
        1.615858368580409e02,
        -1.556989798598866e02,
        6.680131188771972e01,
        -1.328068155288572e01,
    )
    c = (
        -7.784894002430293e-03,
        -3.223964580411365e-01,
        -2.400758277161838e00,
        -2.549732539343734e00,
        4.374664141464968e00,
        2.938163982698783e00,
    )
    d = (
        7.784695709041462e-03,
        3.224671290700398e-01,
        2.445134137142996e00,
        3.754408661907416e00,
    )
    p_low = 0.02425
    if p < p_low:
        q = math.sqrt(-2.0 * math.log(p))
        return (((((c[0] * q + c[1]) * q + c[2]) * q + c[3]) * q + c[4]) * q + c[5]) / (
            (((d[0] * q + d[1]) * q + d[2]) * q + d[3]) * q + 1.0
        )
    if p > 1.0 - p_low:
        q = math.sqrt(-2.0 * math.log(1.0 - p))
        return -(
            ((((c[0] * q + c[1]) * q + c[2]) * q + c[3]) * q + c[4]) * q + c[5]
        ) / ((((d[0] * q + d[1]) * q + d[2]) * q + d[3]) * q + 1.0)
    q = p - 0.5
    r = q * q
    return (((((a[0] * r + a[1]) * r + a[2]) * r + a[3]) * r + a[4]) * r + a[5]) * q / (
        ((((b[0] * r + b[1]) * r + b[2]) * r + b[3]) * r + b[4]) * r + 1.0
    )


# ----------------------------------------------------------------------
# Dense linear algebra (tiny systems: p ~ a dozen coefficients)
# ----------------------------------------------------------------------


def mat_transpose(m: Matrix) -> Matrix:
    return [list(col) for col in zip(*m)]


def mat_mul(a: Matrix, b: Matrix) -> Matrix:
    bt = mat_transpose(b)
    return [[sum(x * y for x, y in zip(row, col)) for col in bt] for row in a]


def mat_vec(m: Matrix, v: Sequence[float]) -> Vector:
    return [sum(x * y for x, y in zip(row, v)) for row in m]


def mat_identity(n: int) -> Matrix:
    return [[1.0 if i == j else 0.0 for j in range(n)] for i in range(n)]


def mat_solve(a: Matrix, rhs: Matrix) -> Matrix:
    """Solve ``a @ x = rhs`` by Gauss–Jordan with partial pivoting.

    ``rhs`` is a matrix so one elimination yields both solves and inverses
    (pass the identity). Raises :class:`ArithmeticError` on a singular
    system — the model layer turns that into "add more ridge".
    """
    n = len(a)
    aug = [list(a[i]) + list(rhs[i]) for i in range(n)]
    width = len(aug[0])
    for col in range(n):
        pivot_row = max(range(col, n), key=lambda r: abs(aug[r][col]))
        pivot = aug[pivot_row][col]
        if abs(pivot) < 1e-300:
            raise ArithmeticError(f"singular matrix at column {col}")
        if pivot_row != col:
            aug[col], aug[pivot_row] = aug[pivot_row], aug[col]
        inv = 1.0 / pivot
        aug[col] = [x * inv for x in aug[col]]
        for row in range(n):
            if row == col:
                continue
            factor = aug[row][col]
            if factor == 0.0:
                continue
            base = aug[col]
            aug[row] = [aug[row][k] - factor * base[k] for k in range(width)]
    return [row[n:] for row in aug]


def mat_inverse(a: Matrix) -> Matrix:
    return mat_solve(a, mat_identity(len(a)))


def solve_normal_equations(
    x: Matrix, y: Sequence[float], weights: "Sequence[float] | None" = None,
    ridge: float = 0.0,
) -> "tuple[Vector, Matrix]":
    """Weighted least squares via normal equations.

    Returns ``(beta, inverse_gram)`` where ``inverse_gram`` is
    ``(XᵀWX + ridge·I)⁻¹`` — the unscaled covariance shape the caller turns
    into standard errors.
    """
    n = len(x)
    p = len(x[0])
    if weights is None:
        weights = [1.0] * n
    gram = [[0.0] * p for _ in range(p)]
    moment = [0.0] * p
    for row, target, w in zip(x, y, weights):
        for i in range(p):
            wxi = w * row[i]
            moment[i] += wxi * target
            for j in range(i, p):
                gram[i][j] += wxi * row[j]
    for i in range(p):
        for j in range(i + 1, p):
            gram[j][i] = gram[i][j]
        gram[i][i] += ridge
    inv = mat_inverse(gram)
    beta = mat_vec(inv, moment)
    return beta, inv


def mean_and_variance(values: Sequence[float]) -> "tuple[float, float]":
    """Sample mean and (n-1) variance; (0, 0) for degenerate inputs."""
    n = len(values)
    if n == 0:
        return 0.0, 0.0
    mean = sum(values) / n
    if n == 1:
        return mean, 0.0
    var = sum((v - mean) ** 2 for v in values) / (n - 1)
    return mean, var
