"""Statistical fault-injection campaigns with carbon-aware policy decisions.

The DAVOS-style loop the ROADMAP north-star asks for, closed end to end:

1. :mod:`repro.campaigns.sampler` — stratified, sequential fault-load
   sampling over fault class × target domain × injection phase × isolation
   backend, stopping when every stratum's Clopper–Pearson interval on the
   containment probability is narrow enough;
2. :mod:`repro.campaigns.model` — pure-python factorial regression (IRLS
   logistic for containment, normal-equations least squares for recovery
   latency and per-recovery joules/gCO₂e read off the live ledger);
3. :mod:`repro.campaigns.decision` — MCDM scoring of per-domain recovery
   policies (rewind / retry-with-backoff / quarantine / restart) against an
   availability SLO and a carbon budget, with a Pareto front and a single
   recommended :class:`~repro.campaigns.decision.PolicyAssignment`;
4. :mod:`repro.campaigns.closure` — applies the assignment to live
   :class:`~repro.sdrad.runtime.SdradRuntime` instances and the fleet
   driver, then re-measures availability and per-recovery carbon to prove
   the predictions hold within their own confidence intervals.

Everything is seeded and deterministic: the same
:class:`~repro.campaigns.strata.CampaignConfig` always produces the same
plan, counts, coefficients and recommendation, and a campaign can be
checkpointed and resumed mid-flight without changing any of them.
"""

from .closure import ValidationReport, apply_assignment, validate_assignment
from .decision import PolicyAssignment, recommend
from .model import CampaignModel, fit_campaign_model
from .runner import CampaignReport, run_campaign
from .sampler import CampaignSampler
from .stats import clopper_pearson
from .strata import CampaignConfig, InjectionPhase, Stratum

__all__ = [
    "CampaignConfig",
    "CampaignModel",
    "CampaignReport",
    "CampaignSampler",
    "InjectionPhase",
    "PolicyAssignment",
    "Stratum",
    "ValidationReport",
    "apply_assignment",
    "clopper_pearson",
    "fit_campaign_model",
    "recommend",
    "run_campaign",
    "validate_assignment",
]
