"""MCDM policy selection: availability SLO × carbon budget × latency.

For the decision backend and each target domain, four candidate recovery
policies are scored from the fitted model:

* **rewind** — contained faults cost one rewind; uncontained (undetected)
  faults are assumed to surface as an eventual process restart;
* **retry** (with backoff) — a transient fraction of faults succeeds on
  retry, the persistent remainder pays the extra rewinds;
* **quarantine** — rewind plus a re-entry embargo that sheds repeat
  strikes (only ``quarantine_suppression`` of contained faults actually
  cost anything) at the price of the embargo window's unavailability;
* **restart** — the abort baseline: every detected fault kills the process.

Availability is time-based against the configured threat rate λ:
``availability = 1 − λ · E[downtime per fault]``. Carbon is the annualised
gCO₂e of the recoveries themselves, using the ledger-fitted per-recovery
footprint for rewinds and the sampled restart footprint for restarts.
Interval arithmetic propagates the model's containment and recovery CIs to
per-policy availability/carbon intervals; the same formulas re-run on
measured quantities during closure, which is what makes prediction and
re-measurement comparable.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional

from ..sim.clock import YEARS
from .model import CampaignModel
from .sampler import StratumAccumulator
from .stats import ConfidenceInterval
from .strata import CampaignConfig, Stratum

POLICY_ORDER = ("rewind", "retry", "quarantine", "restart")


@dataclass(frozen=True)
class PolicyInputs:
    """The per-(domain, backend) quantities every policy is scored from."""

    containment: ConfidenceInterval
    recovery_seconds: ConfidenceInterval
    rewind_gco2e_per_recovery: ConfidenceInterval
    restart_downtime: float
    restart_gco2e_per_fault: float


def downtime_per_fault(
    policy: str, p: float, recovery: float, inputs: PolicyInputs, config: CampaignConfig
) -> float:
    """Expected service-unavailable seconds per arriving fault."""
    d_rst = inputs.restart_downtime
    if policy == "rewind":
        return p * recovery + (1.0 - p) * d_rst
    if policy == "retry":
        # Persistent faults exhaust the retry budget (each attempt rewinds
        # again); transient ones succeed after one extra rewind. The backoff
        # delay itself is charged as downtime — at 100µs it dwarfs the
        # 3.5µs rewind, so omitting it would make closure unvalidatable.
        persistent = 1.0 - config.transient_fraction
        attempts = 1.0 + config.retry_budget * persistent + config.transient_fraction
        base = config.retry_backoff
        backoff = (
            config.transient_fraction * base
            + persistent * base * (2.0 ** config.retry_budget - 1.0)
        )
        return p * (recovery * attempts + backoff) + (1.0 - p) * d_rst
    if policy == "quarantine":
        struck = config.quarantine_suppression
        window = config.quarantine_window
        return p * struck * (recovery + window) + (1.0 - p) * d_rst
    if policy == "restart":
        return d_rst
    raise ValueError(f"unknown policy {policy!r}")


def carbon_per_fault(
    policy: str, p: float, rewind_g: float, inputs: PolicyInputs, config: CampaignConfig
) -> float:
    """Expected recovery gCO₂e per arriving fault."""
    c_rst = inputs.restart_gco2e_per_fault
    if policy == "rewind":
        return p * rewind_g + (1.0 - p) * c_rst
    if policy == "retry":
        # Backoff is an idle wait, not recovery work: only the extra
        # rewinds carry a carbon cost.
        persistent = 1.0 - config.transient_fraction
        attempts = 1.0 + config.retry_budget * persistent + config.transient_fraction
        return p * rewind_g * attempts + (1.0 - p) * c_rst
    if policy == "quarantine":
        return p * config.quarantine_suppression * rewind_g + (1.0 - p) * c_rst
    if policy == "restart":
        return c_rst
    raise ValueError(f"unknown policy {policy!r}")


def _interval_over(
    fn, p: ConfidenceInterval, second: ConfidenceInterval
) -> ConfidenceInterval:
    """Propagate two input intervals through a scalar formula.

    The formulas are monotone in each argument over [lo, hi], so evaluating
    the four corners bounds the output exactly.
    """
    corners = [
        fn(pp, ss)
        for pp in (p.lo, p.hi)
        for ss in (second.lo, second.hi)
    ]
    return ConfidenceInterval(min(corners), fn(p.mid, second.mid), max(corners))


@dataclass
class PolicyScore:
    """One candidate policy for one domain, fully evaluated."""

    domain: str
    policy: str
    availability: ConfidenceInterval
    carbon_g_per_year: ConfidenceInterval
    expected_downtime_per_fault: float
    feasible: bool
    score: float
    pareto: bool = False

    def as_dict(self) -> dict:
        return {
            "domain": self.domain,
            "policy": self.policy,
            "availability": self.availability.as_dict(),
            "carbon_g_per_year": self.carbon_g_per_year.as_dict(),
            "expected_downtime_per_fault": self.expected_downtime_per_fault,
            "feasible": self.feasible,
            "score": self.score,
            "pareto": self.pareto,
        }


@dataclass
class PolicyAssignment:
    """The recommendation: one policy per domain plus the full scoreboard."""

    backend: str
    policies: Dict[str, str]
    scores: List[PolicyScore]
    slo: float
    carbon_budget_g_per_year: float
    inputs: Dict[str, PolicyInputs]
    feasible: bool

    def pareto_front(self, domain: str) -> "list[PolicyScore]":
        return [s for s in self.scores if s.domain == domain and s.pareto]

    def as_dict(self) -> dict:
        return {
            "backend": self.backend,
            "policies": dict(self.policies),
            "slo": self.slo,
            "carbon_budget_g_per_year": self.carbon_budget_g_per_year,
            "feasible": self.feasible,
            "scores": [s.as_dict() for s in self.scores],
        }


def domain_inputs(
    model: CampaignModel,
    config: CampaignConfig,
    accumulators: "Dict[str, StratumAccumulator]",
    domain: str,
    backend: str,
) -> PolicyInputs:
    """Aggregate model predictions over the domain's fault-kind × phase cells."""
    cells = [
        Stratum(kind=k, domain=domain, phase=ph, backend=backend)
        for k in config.kinds
        for ph in config.phases
    ]

    def mean_interval(intervals: "list[ConfidenceInterval]") -> ConfidenceInterval:
        n = len(intervals)
        return ConfidenceInterval(
            sum(i.lo for i in intervals) / n,
            sum(i.mid for i in intervals) / n,
            sum(i.hi for i in intervals) / n,
        )

    containment = mean_interval([model.predict_containment(c) for c in cells])
    recovery = mean_interval([model.predict_recovery(c) for c in cells])
    gco2e_predictions = [model.predict_gco2e(c) for c in cells]
    gco2e_predictions = [g for g in gco2e_predictions if g is not None]
    if gco2e_predictions:
        rewind_g = mean_interval(gco2e_predictions)
    else:
        rewind_g = ConfidenceInterval(0.0, 0.0, 0.0)

    # Restart figures are sampled (deterministic per backend), not fitted:
    # average the ledger's per-fault restart footprint over the cells.
    restart_samples = [
        accumulators[c.key].restart_gco2e_per_fault()
        for c in cells
        if c.key in accumulators
    ]
    restart_samples = [s for s in restart_samples if s is not None]
    restart_g = (
        sum(restart_samples) / len(restart_samples) if restart_samples else 0.0
    )
    restart_downtime = config.cost.process_restart_time(config.dataset_bytes)
    return PolicyInputs(
        containment=containment,
        recovery_seconds=recovery,
        rewind_gco2e_per_recovery=rewind_g,
        restart_downtime=restart_downtime,
        restart_gco2e_per_fault=restart_g,
    )


def score_policies(
    inputs: PolicyInputs, domain: str, config: CampaignConfig
) -> "list[PolicyScore]":
    lam = config.faults_per_year / YEARS
    scores: List[PolicyScore] = []
    w_avail, w_carbon, w_latency = config.score_weights
    d_rst = inputs.restart_downtime
    for policy in POLICY_ORDER:
        downtime = _interval_over(
            lambda p, r: downtime_per_fault(policy, p, r, inputs, config),
            inputs.containment,
            inputs.recovery_seconds,
        )
        carbon_fault = _interval_over(
            lambda p, g: carbon_per_fault(policy, p, g, inputs, config),
            inputs.containment,
            inputs.rewind_gco2e_per_recovery,
        )
        # Downtime hurts availability: the interval flips.
        availability = ConfidenceInterval(
            1.0 - lam * downtime.hi,
            1.0 - lam * downtime.mid,
            1.0 - lam * downtime.lo,
        )
        carbon_year = ConfidenceInterval(
            config.faults_per_year * carbon_fault.lo,
            config.faults_per_year * carbon_fault.mid,
            config.faults_per_year * carbon_fault.hi,
        )
        feasible = (
            availability.mid >= config.slo
            and carbon_year.mid <= config.carbon_budget_g_per_year
        )
        norm_avail = (availability.mid - config.slo) / max(1e-12, 1.0 - config.slo)
        norm_avail = min(1.0, max(0.0, norm_avail))
        norm_carbon = (
            config.carbon_budget_g_per_year - carbon_year.mid
        ) / config.carbon_budget_g_per_year
        norm_carbon = min(1.0, max(0.0, norm_carbon))
        norm_latency = 1.0 - min(1.0, downtime.mid / d_rst) if d_rst > 0 else 1.0
        score = w_avail * norm_avail + w_carbon * norm_carbon + w_latency * norm_latency
        scores.append(
            PolicyScore(
                domain=domain,
                policy=policy,
                availability=availability,
                carbon_g_per_year=carbon_year,
                expected_downtime_per_fault=downtime.mid,
                feasible=feasible,
                score=score,
            )
        )
    _mark_pareto(scores)
    return scores


def _mark_pareto(scores: "list[PolicyScore]") -> None:
    """Non-dominated set on (availability ↑, carbon ↓, downtime ↓)."""
    for cand in scores:
        dominated = False
        for other in scores:
            if other is cand:
                continue
            no_worse = (
                other.availability.mid >= cand.availability.mid
                and other.carbon_g_per_year.mid <= cand.carbon_g_per_year.mid
                and other.expected_downtime_per_fault
                <= cand.expected_downtime_per_fault
            )
            strictly_better = (
                other.availability.mid > cand.availability.mid
                or other.carbon_g_per_year.mid < cand.carbon_g_per_year.mid
                or other.expected_downtime_per_fault
                < cand.expected_downtime_per_fault
            )
            if no_worse and strictly_better:
                dominated = True
                break
        cand.pareto = not dominated


def recommend(
    model: CampaignModel,
    config: CampaignConfig,
    accumulators: "Dict[str, StratumAccumulator]",
) -> PolicyAssignment:
    """Pick one policy per domain for the decision backend."""
    backend = config.decision_backend or config.backends[0]
    policies: Dict[str, str] = {}
    all_scores: List[PolicyScore] = []
    all_inputs: Dict[str, PolicyInputs] = {}
    overall_feasible = True
    for domain in config.domains:
        inputs = domain_inputs(model, config, accumulators, domain, backend)
        all_inputs[domain] = inputs
        scores = score_policies(inputs, domain, config)
        all_scores.extend(scores)
        feasible = [s for s in scores if s.feasible]
        if feasible:
            # Highest score wins; ties go to the earlier policy in
            # POLICY_ORDER (the list is already in that order, and max()
            # keeps the first of equals).
            best = max(feasible, key=lambda s: s.score)
        else:
            overall_feasible = False
            best = max(scores, key=lambda s: s.availability.mid)
        policies[domain] = best.policy
    return PolicyAssignment(
        backend=backend,
        policies=policies,
        scores=all_scores,
        slo=config.slo,
        carbon_budget_g_per_year=config.carbon_budget_g_per_year,
        inputs=all_inputs,
        feasible=overall_feasible,
    )
