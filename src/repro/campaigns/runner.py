"""One-call campaign orchestration: sample → fit → decide → validate.

:func:`run_campaign` is the subsystem's front door (the CLI and the tests
both go through it). It chains the four stages and returns a single
:class:`CampaignReport` whose ``as_dict()`` is stable enough to diff
against a golden fixture: floats are rounded to 9 significant digits so
the JSON is byte-identical across runs of the same seed, yet any real
behavioural change still shows up.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from .closure import ValidationReport, validate_assignment
from .decision import PolicyAssignment, recommend
from .model import CampaignModel, fit_campaign_model
from .sampler import CampaignSampler
from .strata import CampaignConfig


def _round_floats(value):
    """Round every float to 9 significant digits, recursively.

    Repr noise in the 17th digit would make golden-fixture comparisons
    brittle for no diagnostic value; 9 digits keeps every quantity we
    report (probabilities, seconds, grams) meaningful.
    """
    if isinstance(value, float):
        return float(f"{value:.9g}")
    if isinstance(value, dict):
        return {k: _round_floats(v) for k, v in value.items()}
    if isinstance(value, (list, tuple)):
        return [_round_floats(v) for v in value]
    return value


@dataclass
class CampaignReport:
    """Everything one closed-loop campaign produced."""

    config: CampaignConfig
    sampler: CampaignSampler
    model: CampaignModel
    assignment: PolicyAssignment
    validation: Optional[ValidationReport] = None
    rounds: int = 0
    warnings: "list[str]" = field(default_factory=list)

    @property
    def ok(self) -> bool:
        """Recommendation feasible and (if run) validation inside the CIs."""
        if not self.assignment.feasible:
            return False
        return self.validation is None or self.validation.ok

    def as_dict(self) -> dict:
        return _round_floats(
            {
                "config": self.config.summary(),
                "rounds": self.rounds,
                "strata": self.sampler.strata_table(),
                "model": self.model.as_dict(),
                "assignment": self.assignment.as_dict(),
                "validation": (
                    self.validation.as_dict()
                    if self.validation is not None
                    else None
                ),
                "ok": self.ok,
                "warnings": list(self.warnings),
            }
        )


def run_campaign(
    config: Optional[CampaignConfig] = None,
    validate: bool = True,
    run_fleet: bool = True,
    sampler: Optional[CampaignSampler] = None,
) -> CampaignReport:
    """Run a full closed-loop campaign.

    ``sampler`` may carry a resumed checkpoint (see
    :meth:`CampaignSampler.resume`); the remaining rounds run from where
    it stopped and the rest of the loop proceeds as usual.
    """
    if config is None:
        config = CampaignConfig()
    if sampler is None:
        sampler = CampaignSampler(config)
    elif sampler.config is not config:
        config = sampler.config

    converged = sampler.run()
    warnings: "list[str]" = []
    if not converged:
        warnings.append("campaign hit max_rounds before every stratum converged")
    for stratum in config.strata():
        acc = sampler.accumulators[stratum.key]
        if acc.interval(config.confidence).halfwidth > config.ci_halfwidth:
            warnings.append(
                f"stratum {stratum.key} stopped at the sampling cap with "
                f"half-width {acc.interval(config.confidence).halfwidth:.3f}"
            )

    model = fit_campaign_model(config, sampler.accumulators)
    assignment = recommend(model, config, sampler.accumulators)
    validation: Optional[ValidationReport] = None
    if validate:
        validation = validate_assignment(
            assignment, model, config, run_fleet=run_fleet
        )
    return CampaignReport(
        config=config,
        sampler=sampler,
        model=model,
        assignment=assignment,
        validation=validation,
        rounds=sampler.rounds_run,
        warnings=warnings,
    )
