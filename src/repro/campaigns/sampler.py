"""Stratified sequential fault-load sampling.

Each stratum is sampled in *rounds*. A round builds a fresh
:class:`~repro.sdrad.runtime.SdradRuntime` on the stratum's backend, plans
its injection times through the existing :class:`ArrivalProcess` hierarchy,
draws per-injection severities from an rng derived purely from
``(seed, stratum, round)``, serves background requests between injections
(so the live :class:`~repro.obs.ledger.SustainabilityLedger` has a request
rate), and injects through :class:`~repro.faultinj.injector.FaultInjector`.

Because every round is a pure function of ``(config, stratum, round
index)``, resuming a checkpointed campaign replays the remaining rounds
byte-identically: the checkpoint is just the accumulated counts plus the
next round index per stratum.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional

from ..faultinj.campaign import PeriodicArrivals, PoissonArrivals
from ..faultinj.injector import FaultInjector
from ..faultinj.models import NEEDS_ADDRESS, FaultKind
from ..obs.hub import Observability
from ..obs.ledger import SustainabilityLedger
from ..sdrad.runtime import DomainHandle, SdradRuntime
from ..sim.clock import VirtualClock
from ..sim.rng import RngFactory
from .stats import ConfidenceInterval, clopper_pearson
from .strata import CampaignConfig, InjectionPhase, Stratum

# ----------------------------------------------------------------------
# Severity distributions
# ----------------------------------------------------------------------
#
# Containment is only worth *estimating* if it is genuinely uncertain, so
# each kind draws a severity that makes detection probabilistic: a zero
# overflow never reaches the canary, a 200 KiB over-read crosses the domain
# boundary only when warm-up allocations pushed the buffer deep enough, etc.

_PAGE = 4096


def draw_severity(kind: FaultKind, rng: random.Random) -> dict:
    """Draw the model kwargs for one injection of ``kind``."""
    if kind is FaultKind.STACK_SMASH:
        # 0 = benign (stops short of the canary), the rest trip it.
        return {"overflow": rng.choice((0, 4, 12, 20))}
    if kind is FaultKind.HEAP_OVERFLOW:
        # 0 = fits in the allocator's rounded-up capacity, undetected.
        return {"excess": rng.choice((0, 8, 16, 24))}
    if kind is FaultKind.OVER_READ:
        # In-allocation read / medium leak (detection depends on heap
        # position) / certain boundary crossing.
        return {
            "alloc": 64,
            "read": rng.choice((64, 48 * _PAGE, 56 * _PAGE, 512 * _PAGE)),
        }
    if kind is FaultKind.USE_AFTER_FREE:
        return {"size": rng.choice((32, 48, 64))}
    if kind is FaultKind.DOUBLE_FREE:
        return {"size": rng.choice((16, 32, 64))}
    return {}


def phase_prelude(
    phase: InjectionPhase, rng: random.Random
) -> "Optional[Callable[[DomainHandle], None]]":
    """Build the in-domain warm-up matching the stratum's injection phase.

    Returns a closure the injector runs inside the target domain before the
    fault model — all allocation sizes are drawn *now* so the closure
    itself touches no rng (determinism does not depend on execution order
    inside the domain).
    """
    if phase is InjectionPhase.ENTRY:
        return None
    count = rng.randint(6, 14)
    sizes = [rng.choice((_PAGE, 2 * _PAGE, 4 * _PAGE)) for _ in range(count)]
    if phase is InjectionPhase.WARM:

        def warm(handle: DomainHandle) -> None:
            for size in sizes:
                addr = handle.malloc(size)
                handle.store(addr, b"w" * 64)

        return warm

    def drain(handle: DomainHandle) -> None:
        # Allocate-then-free churn: the heap has scrub-pending free space,
        # and surviving allocations sit at churned offsets.
        addrs = [handle.malloc(size) for size in sizes]
        for addr in addrs:
            handle.store(addr, b"d" * 64)
        for addr in addrs[::2]:
            handle.free(addr)

    return drain


@dataclass(frozen=True)
class PlannedInjection:
    """One planned injection inside a round: when and how hard."""

    offset: float
    severity: dict


@dataclass
class Observation:
    """Outcome of one injection (a regression row)."""

    contained: bool
    detected: bool
    recovery_seconds: float
    latency: float
    violation: Optional[str] = None


@dataclass
class StratumAccumulator:
    """Running counts and ledger readings for one stratum."""

    stratum: Stratum
    trials: int = 0
    contained: int = 0
    detected: int = 0
    rounds: int = 0
    observations: List[Observation] = field(default_factory=list)
    #: Ledger readings accumulated across rounds (strictly *read* off the
    #: live registry — never recomputed here).
    rewind_joules: float = 0.0
    rewind_gco2e: float = 0.0
    rewind_faults: int = 0
    restart_joules: float = 0.0
    restart_gco2e: float = 0.0
    restart_faults: int = 0

    def interval(self, confidence: float) -> ConfidenceInterval:
        return clopper_pearson(self.contained, self.trials, confidence)

    def joules_per_recovery(self) -> Optional[float]:
        if self.rewind_faults == 0:
            return None
        return self.rewind_joules / self.rewind_faults

    def gco2e_per_recovery(self) -> Optional[float]:
        if self.rewind_faults == 0:
            return None
        return self.rewind_gco2e / self.rewind_faults

    def restart_gco2e_per_fault(self) -> Optional[float]:
        if self.restart_faults == 0:
            return None
        return self.restart_gco2e / self.restart_faults

    def as_state(self) -> dict:
        return {
            "trials": self.trials,
            "contained": self.contained,
            "detected": self.detected,
            "rounds": self.rounds,
            "observations": [
                [
                    int(o.contained),
                    int(o.detected),
                    o.recovery_seconds,
                    o.latency,
                    o.violation,
                ]
                for o in self.observations
            ],
            "rewind_joules": self.rewind_joules,
            "rewind_gco2e": self.rewind_gco2e,
            "rewind_faults": self.rewind_faults,
            "restart_joules": self.restart_joules,
            "restart_gco2e": self.restart_gco2e,
            "restart_faults": self.restart_faults,
        }

    def load_state(self, state: dict) -> None:
        self.trials = state["trials"]
        self.contained = state["contained"]
        self.detected = state["detected"]
        self.rounds = state["rounds"]
        self.observations = [
            Observation(
                contained=bool(row[0]),
                detected=bool(row[1]),
                recovery_seconds=row[2],
                latency=row[3],
                violation=row[4],
            )
            for row in state["observations"]
        ]
        self.rewind_joules = state["rewind_joules"]
        self.rewind_gco2e = state["rewind_gco2e"]
        self.rewind_faults = state["rewind_faults"]
        self.restart_joules = state["restart_joules"]
        self.restart_gco2e = state["restart_gco2e"]
        self.restart_faults = state["restart_faults"]


class CampaignSampler:
    """Sequential stratified sampler with a Clopper–Pearson stopping rule."""

    def __init__(self, config: CampaignConfig) -> None:
        self.config = config
        self._factory = RngFactory(config.seed)
        self.accumulators: Dict[str, StratumAccumulator] = {
            stratum.key: StratumAccumulator(stratum)
            for stratum in config.strata()
        }
        self.rounds_run = 0

    # ------------------------------------------------------------------
    # Deterministic per-round planning
    # ------------------------------------------------------------------

    def _round_rng(self, stratum: Stratum, round_index: int) -> random.Random:
        return self._factory.child(f"stratum/{stratum.key}").stream(
            f"round/{round_index}"
        )

    def round_plan(
        self, stratum: Stratum, round_index: int
    ) -> "list[PlannedInjection]":
        """The injection times and severities of one round — a pure function
        of (seed, stratum, round), which is what makes resume exact."""
        cfg = self.config
        rng = self._round_rng(stratum, round_index)
        if cfg.arrival == "periodic":
            arrivals = PeriodicArrivals(cfg.batch)
        else:
            arrivals = PoissonArrivals(
                rate=cfg.batch / cfg.round_horizon, rng=rng
            )
        times = list(arrivals.times(cfg.round_horizon))
        return [
            PlannedInjection(
                offset=t, severity=draw_severity(stratum.kind, rng)
            )
            for t in times
        ]

    # ------------------------------------------------------------------
    # Round execution
    # ------------------------------------------------------------------

    def _run_round(self, acc: StratumAccumulator, round_index: int) -> None:
        cfg = self.config
        stratum = acc.stratum
        plan = self.round_plan(stratum, round_index)
        # The prelude rng is separate from the plan rng so adding phases
        # never perturbs the committed injection plans.
        prelude_rng = self._factory.child(f"stratum/{stratum.key}").stream(
            f"prelude/{round_index}"
        )

        clock = VirtualClock()
        obs = Observability(clock=clock)
        runtime = SdradRuntime(
            clock=clock,
            cost=cfg.cost,
            obs=obs,
            backend=stratum.backend,
            rng=self._factory.child(f"runtime/{stratum.key}/{round_index}"),
        )
        # Domain labels are shard names so the recommendation maps straight
        # onto the fleet driver. Bigger shard index -> smaller heap: the
        # domain factor is a real effect (boundary proximity), not a label.
        index = cfg.domain_index(stratum.domain)
        heap_size = max(64 * 1024, 256 * 1024 >> index)
        victim = runtime.domain_init()
        app = runtime.domain_init()
        injector = FaultInjector(runtime)
        victim_addr = (
            victim.heap_base + 64 if stratum.kind in NEEDS_ADDRESS else None
        )

        def serve_background(count: int) -> None:
            op = cfg.cost.memcached_op

            def body(handle: DomainHandle) -> None:
                handle.charge(op)

            for _ in range(count):
                result = runtime.execute(app.udi, body)
                obs.record_request("campaign", result.elapsed)

        for planned in plan:
            if planned.offset > clock.now:
                clock.advance_to(planned.offset)
            serve_background(cfg.background_requests)
            target = runtime.domain_init(heap_size=heap_size)
            prelude = phase_prelude(stratum.phase, prelude_rng)
            result = injector.inject(
                target.udi,
                stratum.kind,
                victim_addr=victim_addr,
                prelude=prelude,
                **planned.severity,
            )
            acc.trials += 1
            acc.contained += int(result.contained)
            acc.detected += int(result.detected)
            acc.observations.append(
                Observation(
                    contained=result.contained,
                    detected=result.detected,
                    recovery_seconds=result.recovery_time,
                    latency=result.elapsed,
                    violation=result.violation,
                )
            )
            runtime.domain_destroy(target.udi)

        # Fold the round's energy/carbon off the live ledger: requests and
        # rewinds come from the obs registry the runtime populated, the
        # per-fault joules from the frozen power/carbon models.
        ledger = SustainabilityLedger(
            obs.registry,
            clock,
            cost=cfg.cost,
            dataset_bytes=cfg.dataset_bytes,
            isolation_backend=stratum.backend,
        )
        if ledger.faults_observed() > 0 and ledger.requests_served() > 0:
            rewind_entry, restart_entry = ledger.entries()
            acc.rewind_joules += rewind_entry.recovery_joules
            acc.rewind_gco2e += rewind_entry.recovery_gco2e
            acc.rewind_faults += rewind_entry.faults
            acc.restart_joules += restart_entry.recovery_joules
            acc.restart_gco2e += restart_entry.recovery_gco2e
            acc.restart_faults += restart_entry.faults
        acc.rounds += 1

    # ------------------------------------------------------------------
    # Sequential loop
    # ------------------------------------------------------------------

    def stratum_converged(self, acc: StratumAccumulator) -> bool:
        cfg = self.config
        if acc.trials < cfg.min_per_stratum:
            return False
        if acc.trials >= cfg.max_per_stratum:
            return True
        return acc.interval(cfg.confidence).halfwidth <= cfg.ci_halfwidth

    def converged(self) -> bool:
        return all(
            self.stratum_converged(acc) for acc in self.accumulators.values()
        )

    def step(self) -> bool:
        """Run one more round for every unconverged stratum.

        Returns True once every stratum has converged.
        """
        pending = [
            acc
            for acc in self.accumulators.values()
            if not self.stratum_converged(acc)
        ]
        if not pending:
            return True
        for acc in pending:
            self._run_round(acc, acc.rounds)
        self.rounds_run += 1
        return self.converged()

    def run(self) -> bool:
        """Sample until convergence or ``max_rounds``; True if converged."""
        for _ in range(self.config.max_rounds):
            if self.step():
                return True
        return self.converged()

    # ------------------------------------------------------------------
    # Checkpoint / resume
    # ------------------------------------------------------------------

    def state(self) -> dict:
        """JSON-able checkpoint: counts + next round index per stratum."""
        return {
            "seed": self.config.seed,
            "rounds_run": self.rounds_run,
            "strata": {
                key: acc.as_state() for key, acc in self.accumulators.items()
            },
        }

    @classmethod
    def resume(cls, config: CampaignConfig, state: dict) -> "CampaignSampler":
        """Rebuild a sampler mid-campaign from :meth:`state`.

        Rounds already run are restored from the checkpoint; rounds still
        to come re-derive their rngs from (seed, stratum, round index), so
        the completed campaign is byte-identical to an uninterrupted one.
        """
        if state["seed"] != config.seed:
            raise ValueError(
                f"checkpoint seed {state['seed']} != config seed {config.seed}"
            )
        sampler = cls(config)
        sampler.rounds_run = state["rounds_run"]
        for key, acc_state in state["strata"].items():
            if key not in sampler.accumulators:
                raise ValueError(f"checkpoint stratum {key!r} not in config")
            sampler.accumulators[key].load_state(acc_state)
        return sampler

    # ------------------------------------------------------------------
    # Reporting
    # ------------------------------------------------------------------

    def strata_table(self) -> "list[dict]":
        rows = []
        for acc in self.accumulators.values():
            ci = acc.interval(self.config.confidence)
            rows.append(
                {
                    **acc.stratum.as_dict(),
                    "trials": acc.trials,
                    "contained": acc.contained,
                    "detected": acc.detected,
                    "containment": ci.as_dict(),
                    "halfwidth": ci.halfwidth,
                    "converged": self.stratum_converged(acc),
                    "joules_per_recovery": acc.joules_per_recovery(),
                    "gco2e_per_recovery": acc.gco2e_per_recovery(),
                }
            )
        return rows
