"""Closing the loop: apply the recommendation and re-measure it.

The decision layer's output is only trustworthy if a *fresh* campaign run
under the recommended policies lands where the model said it would. This
module:

1. turns a :class:`PolicyAssignment` into live
   :class:`~repro.sdrad.policy.RecoveryPolicy` objects and installs them as
   runtime defaults (:func:`apply_assignment`) and as a fleet driver config
   (:func:`fleet_config_for`);
2. runs a short validation campaign per domain under its assigned policy,
   measuring downtime per fault and per-recovery gCO₂e off a live ledger
   (:func:`validate_assignment`);
3. checks the re-measured availability and carbon fall inside the model's
   predicted confidence intervals.

Measurement and prediction share the same availability formula
(:func:`repro.campaigns.decision.downtime_per_fault` structure) evaluated
at the same threat rate, so a validation failure means the *sampled
quantities* (containment probability, recovery time, per-recovery carbon)
drifted outside their intervals — exactly the claim being validated.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

from ..faultinj.injector import FaultInjector
from ..faultinj.models import NEEDS_ADDRESS
from ..obs.hub import Observability
from ..obs.ledger import SustainabilityLedger
from ..sdrad.policy import ProcessCrashed, RecoveryPolicy, make_policy
from ..sdrad.runtime import DomainHandle, SdradRuntime
from ..sim.clock import YEARS, VirtualClock
from ..sim.rng import RngFactory
from .decision import PolicyAssignment
from .model import CampaignModel
from .sampler import draw_severity, phase_prelude
from .stats import ConfidenceInterval, clopper_pearson
from .strata import CampaignConfig


def build_policy(name: str, config: CampaignConfig) -> RecoveryPolicy:
    """Instantiate an assigned policy with the campaign's parameters."""
    if name == "retry":
        return make_policy(
            "retry",
            max_retries=config.retry_budget,
            base_backoff=config.retry_backoff,
        )
    if name == "quarantine":
        return make_policy("quarantine", window=config.quarantine_window)
    return make_policy(name)


def apply_assignment(
    assignment: PolicyAssignment, config: CampaignConfig
) -> "Dict[str, RecoveryPolicy]":
    """The assignment as live policy objects, one per domain."""
    return {
        domain: build_policy(name, config)
        for domain, name in assignment.policies.items()
    }


def fleet_config_for(
    assignment: PolicyAssignment,
    config: CampaignConfig,
    **overrides: object,
):
    """A :class:`~repro.fleet.driver.FleetRunConfig` carrying the assignment.

    Campaign domains are named like fleet shards on purpose: the per-domain
    recommendation becomes the per-shard ``recovery_policies`` map, with the
    first domain's policy doubling as the default for any extra shards.
    """
    from ..fleet.driver import FleetRunConfig

    policies = dict(assignment.policies)
    policies.setdefault(
        "default", assignment.policies[config.domains[0]]
    )
    kwargs: dict = {
        "shards": max(2, len(config.domains)),
        "seed": config.seed,
        "recovery_policies": policies,
    }
    kwargs.update(overrides)
    return FleetRunConfig(**kwargs)


@dataclass
class DomainValidation:
    """Re-measured vs predicted figures for one domain."""

    domain: str
    policy: str
    injections: int
    contained: int
    measured_availability: float
    #: The validation run is itself a finite sample: its containment count
    #: carries binomial noise, so the measured availability gets its own
    #: Clopper–Pearson-derived interval and the check is interval *overlap*
    #: (statistical compatibility), not point-in-interval.
    measured_interval: ConfidenceInterval
    predicted_availability: ConfidenceInterval
    availability_ok: bool
    measured_gco2e_per_recovery: Optional[float]
    predicted_gco2e_per_recovery: ConfidenceInterval
    gco2e_ok: bool

    def as_dict(self) -> dict:
        return {
            "domain": self.domain,
            "policy": self.policy,
            "injections": self.injections,
            "contained": self.contained,
            "measured_availability": self.measured_availability,
            "measured_interval": self.measured_interval.as_dict(),
            "predicted_availability": self.predicted_availability.as_dict(),
            "availability_ok": self.availability_ok,
            "measured_gco2e_per_recovery": self.measured_gco2e_per_recovery,
            "predicted_gco2e_per_recovery": (
                self.predicted_gco2e_per_recovery.as_dict()
            ),
            "gco2e_ok": self.gco2e_ok,
        }


@dataclass
class ValidationReport:
    """The closed loop's verdict."""

    backend: str
    domains: List[DomainValidation] = field(default_factory=list)
    fleet: dict = field(default_factory=dict)

    @property
    def ok(self) -> bool:
        return all(d.availability_ok and d.gco2e_ok for d in self.domains)

    def as_dict(self) -> dict:
        return {
            "backend": self.backend,
            "ok": self.ok,
            "domains": [d.as_dict() for d in self.domains],
            "fleet": self.fleet,
        }


def _predicted_availability(
    assignment: PolicyAssignment, domain: str
) -> ConfidenceInterval:
    for score in assignment.scores:
        if score.domain == domain and score.policy == assignment.policies[domain]:
            return score.availability
    raise KeyError(f"no score for domain {domain!r}")


def validate_assignment(
    assignment: PolicyAssignment,
    model: CampaignModel,
    config: CampaignConfig,
    run_fleet: bool = True,
) -> ValidationReport:
    """Re-run a short campaign under the recommended policies and compare."""
    report = ValidationReport(backend=assignment.backend)
    factory = RngFactory(config.seed)
    lam = config.faults_per_year / YEARS
    cells = [
        (kind, phase) for kind in config.kinds for phase in config.phases
    ]
    d_rst = config.cost.process_restart_time(config.dataset_bytes)

    for domain in config.domains:
        policy_name = assignment.policies[domain]
        inputs = assignment.inputs[domain]
        rng = factory.child(f"validate/{domain}").stream("severity")
        prelude_rng = factory.child(f"validate/{domain}").stream("prelude")

        clock = VirtualClock()
        obs = Observability(clock=clock)

        def boot() -> "tuple[SdradRuntime, FaultInjector, int, int]":
            runtime = SdradRuntime(
                clock=clock,
                cost=config.cost,
                obs=obs,
                backend=assignment.backend,
                default_policy=build_policy(policy_name, config),
            )
            victim = runtime.domain_init()
            app = runtime.domain_init()
            return runtime, FaultInjector(runtime), victim.udi, app.udi

        runtime, injector, victim_udi, app_udi = boot()
        index = config.domain_index(domain)
        heap_size = max(64 * 1024, 256 * 1024 >> index)
        spacing = config.round_horizon / config.batch
        op = config.cost.memcached_op

        downtime_total = 0.0
        contained = 0
        for i in range(config.validation_injections):
            target_time = (i + 0.5) * spacing
            if target_time > clock.now:
                clock.advance_to(target_time)

            def body(handle: DomainHandle) -> None:
                handle.charge(op)

            for _ in range(config.background_requests):
                result = runtime.execute(app_udi, body)
                obs.record_request("campaign", result.elapsed)

            kind, phase = cells[i % len(cells)]
            severity = draw_severity(kind, rng)
            prelude = phase_prelude(phase, prelude_rng)
            victim_addr = None
            if kind in NEEDS_ADDRESS:
                victim_addr = runtime.domain(victim_udi).heap_base + 64
            target = runtime.domain_init(heap_size=heap_size)
            try:
                result = injector.inject(
                    target.udi,
                    kind,
                    victim_addr=victim_addr,
                    prelude=prelude,
                    **severity,
                )
            except ProcessCrashed:
                # The abort baseline: the whole process restarts. Model the
                # reload window and boot a fresh process on the same clock.
                downtime_total += d_rst
                clock.advance(d_rst)
                runtime, injector, victim_udi, app_udi = boot()
                continue
            if result.contained:
                contained += 1
                cost_here = result.recovery_time
                if policy_name == "quarantine":
                    # The embargo window is unavailability, and only the
                    # modelled struck fraction of faults reaches the domain
                    # at all — same threat model as the prediction.
                    cost_here = config.quarantine_suppression * (
                        cost_here + config.quarantine_window
                    )
                downtime_total += cost_here
            else:
                # Undetected corruption surfaces as an eventual restart —
                # the same accounting the decision layer charges (1-p) with.
                downtime_total += d_rst
            runtime.domain_destroy(target.udi)

        n = config.validation_injections
        measured_availability = 1.0 - lam * downtime_total / n
        # The validation sample's own binomial noise, propagated through
        # the measured mean per-contained charge.
        c_bar = (
            (downtime_total - (n - contained) * d_rst) / contained
            if contained
            else 0.0
        )
        p_ci = clopper_pearson(contained, n, config.confidence)

        def avail_at(p: float) -> float:
            return 1.0 - lam * (p * c_bar + (1.0 - p) * d_rst)

        corners = (avail_at(p_ci.lo), avail_at(p_ci.hi))
        measured_interval = ConfidenceInterval(
            min(corners), measured_availability, max(corners)
        )
        predicted_availability = _predicted_availability(assignment, domain)

        measured_g: Optional[float] = None
        ledger = SustainabilityLedger(
            obs.registry,
            clock,
            cost=config.cost,
            dataset_bytes=config.dataset_bytes,
            isolation_backend=assignment.backend,
        )
        if ledger.faults_observed() > 0 and ledger.requests_served() > 0:
            rewind_entry = ledger.entries()[0]
            measured_g = rewind_entry.recovery_gco2e / rewind_entry.faults
        predicted_g = inputs.rewind_gco2e_per_recovery
        gco2e_ok = measured_g is None or predicted_g.contains(measured_g)

        report.domains.append(
            DomainValidation(
                domain=domain,
                policy=policy_name,
                injections=config.validation_injections,
                contained=contained,
                measured_availability=measured_availability,
                measured_interval=measured_interval,
                predicted_availability=predicted_availability,
                availability_ok=predicted_availability.overlaps(
                    measured_interval
                ),
                measured_gco2e_per_recovery=measured_g,
                predicted_gco2e_per_recovery=predicted_g,
                gco2e_ok=gco2e_ok,
            )
        )

    if run_fleet:
        from ..fleet.driver import run_fleet as _run_fleet

        fleet_cfg = fleet_config_for(
            assignment,
            config,
            keyspace=10_000,
            rate=2_000.0,
            horizon=0.25,
            preload=200,
        )
        fleet_report = _run_fleet(fleet_cfg)
        report.fleet = {
            "requested": dict(fleet_cfg.recovery_policies or {}),
            "applied": dict(fleet_report.recovery_policies),
            "availability": fleet_report.availability,
            "served": fleet_report.served,
        }
    return report
