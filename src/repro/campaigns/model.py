"""Factorial regression over campaign outcomes — pure python, no deps.

Three responses, one shared one-hot design over the campaign factors
(fault kind, target domain, injection phase, backend; reference level =
first config entry of each factor, plus an intercept):

* **containment** — ridge-regularised logistic regression fitted by IRLS
  on per-stratum binomial counts. Ridge matters: strata with p̂ = 0 or 1
  (null derefs) quasi-separate a plain MLE and the coefficients diverge.
* **recovery seconds** and **added latency** — weighted least squares via
  normal equations on the per-injection observations.
* **per-recovery joules / gCO₂e** — least squares on the per-stratum
  ledger readings, weighted by how many recoveries each reading averages.

Wald intervals come from the inverse (penalised) Fisher information; every
prediction interval is floored at ``config.min_relative_halfwidth`` because
a deterministic simulator can drive residuals to zero and an honest model
should not claim infinite precision from that.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence

from .sampler import StratumAccumulator
from .stats import (
    ConfidenceInterval,
    Matrix,
    Vector,
    mat_inverse,
    mat_vec,
    normal_quantile,
    solve_normal_equations,
)
from .strata import CampaignConfig, Stratum


@dataclass(frozen=True)
class Coefficient:
    name: str
    estimate: float
    stderr: float
    lo: float
    hi: float

    def as_dict(self) -> dict:
        return {
            "name": self.name,
            "estimate": self.estimate,
            "stderr": self.stderr,
            "lo": self.lo,
            "hi": self.hi,
        }


class FactorEncoder:
    """One-hot (drop-first) encoding of the campaign factor space."""

    def __init__(self, config: CampaignConfig) -> None:
        self.config = config
        self.columns: List[str] = ["intercept"]
        self._offsets: Dict[str, Dict[str, int]] = {}
        for factor, levels in (
            ("kind", [k.value for k in config.kinds]),
            ("domain", list(config.domains)),
            ("phase", [p.value for p in config.phases]),
            ("backend", list(config.backends)),
        ):
            table: Dict[str, int] = {}
            for level in levels[1:]:
                table[level] = len(self.columns)
                self.columns.append(f"{factor}={level}")
            # Reference level encodes as all-zero.
            table[levels[0]] = -1
            self._offsets[factor] = table

    @property
    def width(self) -> int:
        return len(self.columns)

    def encode(self, stratum: Stratum) -> Vector:
        row = [0.0] * self.width
        row[0] = 1.0
        for factor, level in (
            ("kind", stratum.kind.value),
            ("domain", stratum.domain),
            ("phase", stratum.phase.value),
            ("backend", stratum.backend),
        ):
            index = self._offsets[factor][level]
            if index >= 0:
                row[index] = 1.0
        return row


def _clip(p: float) -> float:
    return min(1.0 - 1e-12, max(1e-12, p))


@dataclass
class FittedResponse:
    """One fitted response surface (logistic or linear)."""

    kind: str  # "logistic" | "linear"
    coefficients: List[Coefficient]
    beta: Vector
    covariance: Matrix
    goodness: dict
    z: float
    min_relative_halfwidth: float

    def _linear_predictor(self, row: Vector) -> "tuple[float, float]":
        eta = sum(b * x for b, x in zip(self.beta, row))
        var = 0.0
        for i, xi in enumerate(row):
            if xi == 0.0:
                continue
            for j, xj in enumerate(row):
                if xj == 0.0:
                    continue
                var += xi * xj * self.covariance[i][j]
        return eta, math.sqrt(max(0.0, var))

    def predict(self, row: Vector) -> ConfidenceInterval:
        eta, se = self._linear_predictor(row)
        lo_eta = eta - self.z * se
        hi_eta = eta + self.z * se
        if self.kind == "logistic":
            lo = 1.0 / (1.0 + math.exp(-lo_eta))
            mid = 1.0 / (1.0 + math.exp(-eta))
            hi = 1.0 / (1.0 + math.exp(-hi_eta))
        else:
            lo, mid, hi = lo_eta, eta, hi_eta
        # Irreducible model-form floor, then clamp probabilities.
        floor = abs(mid) * self.min_relative_halfwidth
        lo = min(lo, mid - floor)
        hi = max(hi, mid + floor)
        if self.kind == "logistic":
            lo = max(0.0, lo)
            hi = min(1.0, hi)
        elif mid >= 0.0:
            lo = max(0.0, lo)
        return ConfidenceInterval(lo, mid, hi)

    def as_dict(self) -> dict:
        return {
            "kind": self.kind,
            "coefficients": [c.as_dict() for c in self.coefficients],
            "goodness": self.goodness,
        }


def _wald_coefficients(
    names: Sequence[str], beta: Vector, cov: Matrix, z: float
) -> "list[Coefficient]":
    out = []
    for i, name in enumerate(names):
        se = math.sqrt(max(0.0, cov[i][i]))
        out.append(
            Coefficient(
                name=name,
                estimate=beta[i],
                stderr=se,
                lo=beta[i] - z * se,
                hi=beta[i] + z * se,
            )
        )
    return out


def _fit_logistic(
    x: Matrix,
    successes: Sequence[float],
    trials: Sequence[float],
    names: Sequence[str],
    ridge: float,
    z: float,
    floor: float,
) -> FittedResponse:
    """Binomial IRLS with an L2 penalty (penalised Fisher scoring)."""
    n = len(x)
    p = len(x[0])
    beta = [0.0] * p
    cov: Matrix = [[0.0] * p for _ in range(p)]
    for _ in range(100):
        # Working response/weights of the current iterate.
        grad = [0.0] * p
        info = [[0.0] * p for _ in range(p)]
        for row, s, m in zip(x, successes, trials):
            eta = sum(b * v for b, v in zip(beta, row))
            mu = _clip(1.0 / (1.0 + math.exp(-eta)))
            w = m * mu * (1.0 - mu)
            r = s - m * mu
            for i in range(p):
                if row[i] == 0.0:
                    continue
                grad[i] += row[i] * r
                wxi = w * row[i]
                for j in range(i, p):
                    info[i][j] += wxi * row[j]
        for i in range(p):
            for j in range(i + 1, p):
                info[j][i] = info[i][j]
            info[i][i] += ridge
            grad[i] -= ridge * beta[i]
        cov = mat_inverse(info)
        step = mat_vec(cov, grad)
        beta = [b + s for b, s in zip(beta, step)]
        if max(abs(s) for s in step) < 1e-10:
            break

    def deviance_for(mus: Sequence[float]) -> float:
        dev = 0.0
        for s, m, mu in zip(successes, trials, mus):
            mu = _clip(mu)
            if s > 0:
                dev += 2.0 * s * math.log(s / (m * mu))
            if m - s > 0:
                dev += 2.0 * (m - s) * math.log((m - s) / (m * (1.0 - mu)))
        return dev

    fitted = [
        _clip(1.0 / (1.0 + math.exp(-sum(b * v for b, v in zip(beta, row)))))
        for row in x
    ]
    total_s = sum(successes)
    total_m = sum(trials)
    null_mu = _clip(total_s / total_m) if total_m else 0.5
    deviance = deviance_for(fitted)
    null_deviance = deviance_for([null_mu] * n)
    mcfadden = 0.0 if null_deviance <= 0 else max(0.0, 1.0 - deviance / null_deviance)
    return FittedResponse(
        kind="logistic",
        coefficients=_wald_coefficients(names, beta, cov, z),
        beta=beta,
        covariance=cov,
        goodness={
            "deviance": deviance,
            "null_deviance": null_deviance,
            "mcfadden_r2": mcfadden,
            "cells": n,
            "trials": total_m,
        },
        z=z,
        min_relative_halfwidth=floor,
    )


def _fit_linear(
    x: Matrix,
    y: Sequence[float],
    weights: "Optional[Sequence[float]]",
    names: Sequence[str],
    ridge: float,
    z: float,
    floor: float,
) -> FittedResponse:
    n = len(x)
    p = len(x[0])
    beta, inv_gram = solve_normal_equations(x, y, weights=weights, ridge=ridge)
    w = weights if weights is not None else [1.0] * n
    rss = 0.0
    tss = 0.0
    total_w = sum(w)
    mean_y = sum(wi * yi for wi, yi in zip(w, y)) / total_w if total_w else 0.0
    for row, yi, wi in zip(x, y, w):
        pred = sum(b * v for b, v in zip(beta, row))
        rss += wi * (yi - pred) ** 2
        tss += wi * (yi - mean_y) ** 2
    dof = max(1.0, total_w - p)
    sigma2 = rss / dof
    cov = [[sigma2 * inv_gram[i][j] for j in range(p)] for i in range(p)]
    r2 = 0.0 if tss <= 0 else max(0.0, 1.0 - rss / tss)
    return FittedResponse(
        kind="linear",
        coefficients=_wald_coefficients(names, beta, cov, z),
        beta=beta,
        covariance=cov,
        goodness={"rss": rss, "r2": r2, "sigma": math.sqrt(sigma2), "rows": n},
        z=z,
        min_relative_halfwidth=floor,
    )


@dataclass
class CampaignModel:
    """The fitted model bundle the decision layer consumes."""

    encoder: FactorEncoder
    containment: FittedResponse
    recovery: FittedResponse
    latency: FittedResponse
    joules: Optional[FittedResponse]
    gco2e: Optional[FittedResponse]

    def predict_containment(self, stratum: Stratum) -> ConfidenceInterval:
        return self.containment.predict(self.encoder.encode(stratum))

    def predict_recovery(self, stratum: Stratum) -> ConfidenceInterval:
        return self.recovery.predict(self.encoder.encode(stratum))

    def predict_latency(self, stratum: Stratum) -> ConfidenceInterval:
        return self.latency.predict(self.encoder.encode(stratum))

    def predict_joules(self, stratum: Stratum) -> Optional[ConfidenceInterval]:
        if self.joules is None:
            return None
        return self.joules.predict(self.encoder.encode(stratum))

    def predict_gco2e(self, stratum: Stratum) -> Optional[ConfidenceInterval]:
        if self.gco2e is None:
            return None
        return self.gco2e.predict(self.encoder.encode(stratum))

    def as_dict(self) -> dict:
        return {
            "columns": self.encoder.columns,
            "containment": self.containment.as_dict(),
            "recovery": self.recovery.as_dict(),
            "latency": self.latency.as_dict(),
            "joules": self.joules.as_dict() if self.joules else None,
            "gco2e": self.gco2e.as_dict() if self.gco2e else None,
        }


def fit_campaign_model(
    config: CampaignConfig,
    accumulators: "Dict[str, StratumAccumulator]",
) -> CampaignModel:
    encoder = FactorEncoder(config)
    z = normal_quantile(0.5 + config.confidence / 2.0)
    floor = config.min_relative_halfwidth
    names = encoder.columns

    # Containment: one binomial cell per stratum.
    cells = [acc for acc in accumulators.values() if acc.trials > 0]
    if not cells:
        raise ValueError("cannot fit a model with zero sampled strata")
    x_cells = [encoder.encode(acc.stratum) for acc in cells]
    containment = _fit_logistic(
        x_cells,
        [float(acc.contained) for acc in cells],
        [float(acc.trials) for acc in cells],
        names,
        ridge=config.ridge,
        z=z,
        floor=floor,
    )

    # Recovery: per-injection rows, contained injections only (an
    # undetected fault has no recovery to measure).
    rec_x: Matrix = []
    rec_y: List[float] = []
    lat_x: Matrix = []
    lat_y: List[float] = []
    for acc in cells:
        row = encoder.encode(acc.stratum)
        for obs in acc.observations:
            lat_x.append(row)
            lat_y.append(obs.latency)
            if obs.contained:
                rec_x.append(row)
                rec_y.append(obs.recovery_seconds)
    if not rec_y:
        raise ValueError("no contained injections: nothing to fit recovery on")
    recovery = _fit_linear(
        rec_x, rec_y, None, names, ridge=config.ridge, z=z, floor=floor
    )
    latency = _fit_linear(
        lat_x, lat_y, None, names, ridge=config.ridge, z=z, floor=floor
    )

    # Energy/carbon per recovery: per-stratum ledger readings, weighted by
    # the number of recoveries each reading aggregates.
    joules = gco2e = None
    led_x: Matrix = []
    led_j: List[float] = []
    led_g: List[float] = []
    led_w: List[float] = []
    for acc in cells:
        jpr = acc.joules_per_recovery()
        gpr = acc.gco2e_per_recovery()
        if jpr is None or gpr is None:
            continue
        led_x.append(encoder.encode(acc.stratum))
        led_j.append(jpr)
        led_g.append(gpr)
        led_w.append(float(acc.rewind_faults))
    if led_x:
        joules = _fit_linear(
            led_x, led_j, led_w, names, ridge=config.ridge, z=z, floor=floor
        )
        gco2e = _fit_linear(
            led_x, led_g, led_w, names, ridge=config.ridge, z=z, floor=floor
        )

    return CampaignModel(
        encoder=encoder,
        containment=containment,
        recovery=recovery,
        latency=latency,
        joules=joules,
        gco2e=gco2e,
    )
