"""The domain-substrate interface every isolation backend implements.

SDRaD's protocol — enter a gate, check permissions on every access, rewind
and discard on fault — is substrate-independent: the paper builds it on
Intel MPK, the follow-on work re-implements it on ARM Morello capabilities
("Secure Rewind and Discard on ARM Morello") and the SFI literature gives a
third enforcement shape (masked addressing). This module factors the
substrate contract out of ``repro.memory`` / ``repro.sdrad`` so the layers
above are written once against :class:`IsolationBackend`:

* **gate** — the thread-local permission state (PKRU register, installed
  capability set, active SFI mask). All gates speak the same protocol:
  ``value``/``snapshot``/``write``/``write_prepared``/``grant``/``revoke``/
  ``close_all``/``allows_read``/``allows_write``, a ``writes`` counter and
  an ``on_write`` hook — exactly the surface the software TLB, the access
  plans and the re-entry ticket cache key their coherency on.
* **tag allocator** — the kernel-side bookkeeping of domain tags
  (``pkey_alloc`` for MPK, capability/region identifiers elsewhere), with
  the ``on_free`` recycling hook the permission cache flushes through.
* **verdict/violation factory** — the fault a denied access raises, so
  detection and recovery classify every backend's containment fault through
  the same :class:`~repro.errors.ProtectionKeyViolation` taxonomy.
* **cost hooks** — per-operation latencies resolved against the central
  :class:`~repro.sim.cost.CostModel`: entry/exit gate cost, domain
  setup/teardown syscalls, and (for SFI) a per-checked-access tax.
* **gate idiom table** — the spellings ``sdradlint`` R4 must treat as the
  substrate's privileged gate-write surface, declared *by the backend*
  instead of hard-coded in the analyzer.

The MPK implementation wraps the pre-existing simulated hardware unchanged
(:class:`~repro.memory.mpk.PkruRegister`/``PkeyAllocator``) and is the
default everywhere, bit-identical to the tree before this interface existed.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass
from typing import Optional

from ...errors import OutOfDomains, SdradError

#: Tag 0 is the default/root tag on every substrate (MPK pkey 0, the
#: ambient root capability, the identity SFI region).
DEFAULT_TAG = 0


@dataclass(frozen=True)
class BackendLimits:
    """User-facing summary of a substrate's envelope (CLI ``backends``)."""

    name: str
    #: Maximum concurrently isolated domains; ``None`` means unbounded.
    max_domains: Optional[int]
    #: Gate cost of one domain round-trip (enter + exit), seconds.
    gate_cost: float
    #: Extra cost per checked load/store (SFI's instrumentation tax), seconds.
    per_access_tax: float
    #: Whether key virtualisation applies (only meaningful under scarcity).
    supports_key_virtualization: bool


@dataclass(frozen=True)
class GateIdiom:
    """What R4 should treat as this substrate's privileged write surface."""

    #: Classes whose own methods are the register micro-ops, not call sites.
    register_classes: frozenset
    #: Receiver spellings (exact segment, or ``*_<name>`` suffix) that
    #: resolve to the gate.
    receiver_names: frozenset
    #: Method names that mutate gate state.
    write_calls: frozenset


class GrantSetGate:
    """A generic permission gate: an interned set of granted tags.

    CHERI and SFI have no fixed-width rights register; their "gate" state is
    the set of capabilities installed / the active address mask — an
    arbitrary set of ``tag -> (read, write)`` grants. To stay drop-in for
    everything the MPK register plugs into (software-TLB keying by
    ``gate.value``, plan epochs, entry tickets keyed on snapshots), each
    distinct grant set is **interned to a small integer**: ``value`` is that
    integer, ``snapshot``/``write`` save and restore it in O(1), and the
    ``on_write`` hook fires with it exactly like a WRPKRU.

    Unforgeability (CHERI's defining property) holds by construction:
    ``write`` only accepts values previously produced by this gate's own
    grant history — there is no bit pattern a compromised domain could
    conjure that the gate has not itself derived.
    """

    __slots__ = ("_value", "_closed", "writes", "on_write", "_interned", "_perm_maps")

    def __init__(self, default_tag: int = DEFAULT_TAG) -> None:
        self._interned: dict = {}
        self._perm_maps: list = []
        # Interned state 0: only the default tag accessible (read+write) —
        # the reset convention, mirroring PKRU's deny-all-except-default.
        self._value = self._intern(((default_tag, True),))
        # Interned state 1: nothing accessible (the closed gate a domain
        # entry starts from before granting the domain's own tag).
        self._closed = self._intern(())
        #: Count of gate writes (the substrate's WRPKRU analogue), feeding
        #: telemetry and cost accounting.
        self.writes = 0
        #: Mutation hook called with the new value after every write; the
        #: address space keeps its permission cache coherent through it.
        self.on_write = None

    def _intern(self, items) -> int:
        key = frozenset(items)
        value = self._interned.get(key)
        if value is None:
            value = len(self._perm_maps)
            self._interned[key] = value
            self._perm_maps.append(dict(items))
        return value

    @property
    def value(self) -> int:
        return self._value

    def snapshot(self) -> int:
        return self._value

    def write(self, value: int) -> None:
        """Install a previously derived grant set (the gate switch)."""
        if not 0 <= value < len(self._perm_maps):
            raise SdradError(
                f"gate value {value} was never derived by this gate "
                "(capabilities are unforgeable)"
            )
        self._value = value
        self.writes += 1
        if self.on_write is not None:
            self.on_write(value)

    def write_prepared(self, value: int, modelled_writes: int = 1) -> None:
        """Apply a pre-derived gate value in a single step.

        Same contract as :meth:`PkruRegister.write_prepared`: the re-entry
        fast path replays a derived value, and the ``writes`` counter must
        advance by the modelled instruction count so telemetry cannot tell
        replay from derivation.
        """
        if modelled_writes < 1:
            raise SdradError(
                f"write_prepared models {modelled_writes} gate writes; need >= 1"
            )
        if not 0 <= value < len(self._perm_maps):
            raise SdradError(
                f"gate value {value} was never derived by this gate "
                "(capabilities are unforgeable)"
            )
        self._value = value
        self.writes += modelled_writes
        if self.on_write is not None:
            self.on_write(value)

    def allows_read(self, tag: int) -> bool:
        return tag in self._perm_maps[self._value]

    def allows_write(self, tag: int) -> bool:
        return self._perm_maps[self._value].get(tag, False)

    def grant(self, tag: int, *, read: bool = True, write: bool = True) -> None:
        """Derive and install a new grant set (counts as one gate write)."""
        if tag < 0:
            raise SdradError(f"domain tag out of range: {tag}")
        perms = dict(self._perm_maps[self._value])
        if not read:
            perms.pop(tag, None)
        else:
            perms[tag] = bool(write)
        self.write(self._intern(tuple(sorted(perms.items()))))

    def revoke(self, tag: int) -> None:
        """Drop every right to ``tag`` (counts as one gate write)."""
        if tag < 0:
            raise SdradError(f"domain tag out of range: {tag}")
        perms = dict(self._perm_maps[self._value])
        perms.pop(tag, None)
        self.write(self._intern(tuple(sorted(perms.items()))))

    def close_all(self) -> None:
        """Install the empty grant set — the start of every domain entry."""
        self.write(self._closed)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"{type(self).__name__}(value={self._value}, "
            f"grants={sorted(self._perm_maps[self._value])}, "
            f"writes={self.writes})"
        )


class TagAllocator:
    """Domain-tag bookkeeping for substrates without a 16-key ceiling.

    Mirrors :class:`~repro.memory.mpk.PkeyAllocator`'s contract — lowest
    free tag first, default tag reserved, an ``on_free`` recycling hook —
    but the tag space is bounded only by ``max_tags`` (``None`` = limited
    by address space, not by the substrate).
    """

    #: Soft ceiling for "unbounded" substrates — far above anything the
    #: simulated address space can map, present only to catch runaways.
    UNBOUNDED = 1 << 20

    def __init__(self, max_tags: Optional[int] = None) -> None:
        self.max_tags = max_tags
        self._ceiling = max_tags if max_tags is not None else self.UNBOUNDED
        self._allocated: set = {DEFAULT_TAG}
        self._next = DEFAULT_TAG + 1
        self._freed: list = []
        #: Hook called after a tag is freed (recycling shootdown).
        self.on_free = None

    @property
    def allocated(self) -> frozenset:
        return frozenset(self._allocated)

    @property
    def available(self) -> int:
        return self._ceiling - len(self._allocated)

    def alloc(self) -> int:
        """Allocate the lowest free tag."""
        if self._freed:
            tag = heapq.heappop(self._freed)
        elif self._next < self._ceiling:
            tag = self._next
            self._next += 1
        else:
            raise OutOfDomains(
                f"all {self._ceiling} domain tags in use"
            )
        self._allocated.add(tag)
        return tag

    def free(self, tag: int) -> None:
        if tag == DEFAULT_TAG:
            raise SdradError("cannot free the default domain tag")
        if tag not in self._allocated:
            raise SdradError(f"free of unallocated domain tag {tag}")
        self._allocated.remove(tag)
        heapq.heappush(self._freed, tag)
        if self.on_free is not None:
            self.on_free(tag)

    def is_allocated(self, tag: int) -> bool:
        return tag in self._allocated


class IsolationBackend:
    """Abstract substrate: everything the runtime needs, nothing more.

    Subclasses override the class attributes and the factory/cost methods;
    the layers above (:class:`~repro.memory.address_space.AddressSpace`,
    :class:`~repro.sdrad.runtime.SdradRuntime`, the plan cache, the lint
    rules, the obs ledger) consume only this surface.
    """

    #: Stable identifier (``backend=`` constructor spelling).
    name = "abstract"
    #: Page-table tag ceiling (``None`` = any non-negative tag is valid).
    num_page_tags: Optional[int] = None
    #: The always-accessible root tag.
    default_tag = DEFAULT_TAG
    #: Concurrent-domain ceiling (``None`` = unbounded).
    max_domains: Optional[int] = None
    #: Whether libmpk-style key virtualisation applies to this substrate.
    supports_key_virtualization = False
    #: Steady-state relative runtime overhead the sustainability ledger
    #: attributes to this substrate's enforcement (fraction).
    runtime_overhead_hint = 0.03
    #: R4's idiom table entry for this substrate.
    idiom = GateIdiom(
        register_classes=frozenset({"GrantSetGate"}),
        receiver_names=frozenset({"gate"}),
        write_calls=frozenset(
            {"write", "write_prepared", "grant", "revoke", "close_all"}
        ),
    )

    # --- factories ------------------------------------------------------

    def create_gate(self):
        raise NotImplementedError

    def create_allocator(self):
        raise NotImplementedError

    def violation(self, address: int, tag: int, access: str) -> Exception:
        """The fault a gate-denied access raises."""
        raise NotImplementedError

    # --- per-operation cost hooks --------------------------------------

    def entry_cost(self, cost) -> float:
        """Clock charge for one domain entry (gate switch + bookkeeping)."""
        return 0.0

    def exit_cost(self, cost) -> float:
        """Clock charge for one domain exit."""
        return 0.0

    def setup_cost(self, cost) -> float:
        """Clock charge for creating a domain (tag + region syscalls)."""
        return 0.0

    def teardown_cost(self, cost) -> float:
        """Clock charge for destroying a domain."""
        return 0.0

    def access_tax(self, cost) -> float:
        """Extra charge per checked load/store executed inside a domain."""
        return 0.0

    # --- introspection --------------------------------------------------

    def limits(self, cost) -> BackendLimits:
        return BackendLimits(
            name=self.name,
            max_domains=self.max_domains,
            gate_cost=self.entry_cost(cost) + self.exit_cost(cost),
            per_access_tax=self.access_tax(cost),
            supports_key_virtualization=self.supports_key_virtualization,
        )

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<{type(self).__name__} {self.name!r}>"
