"""Pluggable isolation backends: MPK (default), simulated CHERI, SFI.

``AddressSpace(backend=...)`` / ``SdradRuntime(backend=...)`` accept a
backend name or instance; :func:`resolve_backend` is the registry.
"""

from __future__ import annotations

from ...errors import SdradError
from .base import (
    DEFAULT_TAG,
    BackendLimits,
    GateIdiom,
    GrantSetGate,
    IsolationBackend,
    TagAllocator,
)
from .cheri import CapabilityGate, CheriBackend
from .mpk_backend import MpkBackend
from .sfi import SfiBackend, SfiMaskGate

#: Registry of substrate names to implementations. Backends are stateless
#: (all per-process state lives in the gate/allocator instances they
#: create), so one shared instance per substrate suffices.
BACKENDS: dict = {
    backend.name: backend
    for backend in (MpkBackend(), CheriBackend(), SfiBackend())
}


def available_backends() -> list:
    """Registered backend names, default first."""
    return list(BACKENDS)


def resolve_backend(spec) -> IsolationBackend:
    """Resolve a ``backend=`` constructor argument (name or instance)."""
    if spec is None or spec == "mpk":
        return BACKENDS["mpk"]
    if isinstance(spec, IsolationBackend):
        return spec
    try:
        return BACKENDS[spec]
    except (KeyError, TypeError):
        raise SdradError(
            f"unknown isolation backend {spec!r}; "
            f"available: {', '.join(BACKENDS)}"
        ) from None


def gate_idiom_table() -> GateIdiom:
    """The union of every backend's gate idiom — sdradlint R4's input."""
    register_classes: frozenset = frozenset()
    receiver_names: frozenset = frozenset()
    write_calls: frozenset = frozenset()
    for backend in BACKENDS.values():
        idiom = backend.idiom
        register_classes |= idiom.register_classes
        receiver_names |= idiom.receiver_names
        write_calls |= idiom.write_calls
    return GateIdiom(
        register_classes=register_classes,
        receiver_names=receiver_names,
        write_calls=write_calls,
    )


__all__ = [
    "BACKENDS",
    "BackendLimits",
    "CapabilityGate",
    "CheriBackend",
    "DEFAULT_TAG",
    "GateIdiom",
    "GrantSetGate",
    "IsolationBackend",
    "MpkBackend",
    "SfiBackend",
    "SfiMaskGate",
    "TagAllocator",
    "available_backends",
    "gate_idiom_table",
    "resolve_backend",
]
