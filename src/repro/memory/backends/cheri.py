"""Simulated CHERI/Morello substrate: bounded, unforgeable capabilities.

"Secure Rewind and Discard on ARM Morello" re-implements SDRaD's protocol
on capability hardware: a domain's heap and stack are reachable only
through *capabilities* — bounded, unforgeable pointers — installed at
domain entry, and the substrate has no 16-key ceiling, so thousands of
concurrent domains need no key virtualisation at all.

The simulation models a domain's capability set as a
:class:`~repro.memory.backends.base.GrantSetGate` over per-domain tags:

* every domain owns a distinct tag (the object type of its sealed
  capabilities); tags are unbounded integers, so ``domain_init`` never
  hits :class:`~repro.errors.OutOfDomains`;
* a domain *entry* installs the domain's capabilities — one gate write to
  the empty set (sealing the caller's capabilities) plus one grant;
* an access outside the installed capabilities raises
  :class:`~repro.errors.CapabilityViolation`, a
  :class:`~repro.errors.ProtectionKeyViolation` subclass so detection,
  policy and rewind classify it identically to an MPK containment fault;
* unforgeability is structural: the gate only re-installs values it
  derived itself (see ``GrantSetGate.write``).

Cost shape: a switch is two capability installs (comparable to MPK's
WRPKRU path, slightly cheaper — no kernel key syscalls exist), domain
setup derives the heap/stack capabilities instead of ``pkey_mprotect``,
and there is no per-access tax — bounds checks ride the load/store pipes.
"""

from __future__ import annotations

from ...errors import CapabilityViolation
from .base import GateIdiom, GrantSetGate, IsolationBackend, TagAllocator


class CapabilityGate(GrantSetGate):
    """The installed capability set of the running compartment."""


class CheriBackend(IsolationBackend):
    """Simulated CHERI: no tag ceiling, capability faults, no access tax."""

    name = "cheri"
    #: Page tags are full-width object types — no 4-bit PTE ceiling.
    num_page_tags = None
    max_domains = None
    #: No key scarcity: virtualising an unbounded tag space is meaningless,
    #: and requesting it is an error (UnsupportedByBackend), not a no-op.
    supports_key_virtualization = False
    #: Morello's measured compartment-switch overhead band sits below MPK's.
    runtime_overhead_hint = 0.02
    idiom = GateIdiom(
        register_classes=frozenset({"CapabilityGate", "GrantSetGate"}),
        receiver_names=frozenset({"gate", "cap_gate"}),
        write_calls=frozenset(
            {"write", "write_prepared", "grant", "revoke", "close_all"}
        ),
    )

    def create_gate(self) -> CapabilityGate:
        return CapabilityGate()

    def create_allocator(self) -> TagAllocator:
        return TagAllocator(max_tags=None)

    def violation(self, address: int, tag: int, access: str) -> Exception:
        return CapabilityViolation(address, tag, access=access)

    def entry_cost(self, cost) -> float:
        return cost.cheri_domain_enter

    def exit_cost(self, cost) -> float:
        return cost.cheri_domain_exit

    def setup_cost(self, cost) -> float:
        # Derive and seal the heap and stack capabilities.
        return 2 * cost.cheri_cap_derive

    def teardown_cost(self, cost) -> float:
        # Revocation sweep for the domain's sealed capabilities.
        return cost.cheri_cap_derive
