"""The MPK/PKRU substrate — the paper's hardware, and the default backend.

This is a thin adapter: the simulated hardware itself lives unchanged in
:mod:`repro.memory.mpk` (the PKRU register and the kernel key allocator are
exactly what they were before the backend interface existed), and the cost
hooks resolve to the same :class:`~repro.sim.cost.CostModel` fields the
runtime charged directly — so ``backend="mpk"`` is bit-identical to the
pre-refactor tree by construction.
"""

from __future__ import annotations

from ...errors import ProtectionKeyViolation
from ..mpk import NUM_PKEYS, PkeyAllocator, PkruRegister
from .base import GateIdiom, IsolationBackend


class MpkBackend(IsolationBackend):
    """Intel MPK: 16 protection keys, PKRU gate, per-page key tags."""

    name = "mpk"
    #: Page tags are hardware protection keys: 4 bits per PTE.
    num_page_tags = NUM_PKEYS
    #: One key is the reserved default, so 15 concurrent domains.
    max_domains = NUM_PKEYS - 1
    #: The 16-key scarcity is exactly what libmpk-style virtualisation
    #: exists to lift (``repro.sdrad.keyvirt``).
    supports_key_virtualization = True
    #: Middle of the paper's measured 2-4 % end-to-end overhead band.
    runtime_overhead_hint = 0.03
    idiom = GateIdiom(
        register_classes=frozenset({"PkruRegister"}),
        receiver_names=frozenset({"pkru", "gate"}),
        write_calls=frozenset(
            {"write", "write_prepared", "grant", "revoke", "close_all"}
        ),
    )

    def create_gate(self) -> PkruRegister:
        return PkruRegister()

    def create_allocator(self) -> PkeyAllocator:
        return PkeyAllocator()

    def violation(self, address: int, tag: int, access: str) -> Exception:
        return ProtectionKeyViolation(address, tag, access=access)

    # WRPKRU is cheap; the latency of a switch is dominated by the context
    # save/stack switch the cost model folds into domain_enter/exit.

    def entry_cost(self, cost) -> float:
        return cost.domain_enter

    def exit_cost(self, cost) -> float:
        return cost.domain_exit

    def setup_cost(self, cost) -> float:
        # pkey_alloc + two pkey_mprotect calls (heap + stack regions).
        return 3 * cost.pkey_syscall

    def teardown_cost(self, cost) -> float:
        # pkey_free + two pkey_mprotect calls undoing the tags.
        return 3 * cost.pkey_syscall
