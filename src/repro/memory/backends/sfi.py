"""Simulated SFI substrate: masked addressing, per-access check tax.

Software fault isolation ("Software Fault Isolation for Robust
Compilation", PAPERS.md) enforces compartment boundaries by *rewriting the
code*: every load/store is instrumented to mask (or compare) its address
against the sandbox region. The overhead shape is the inverse of MPK's —
**no gate cost** (switching compartments is just calling differently
instrumented code; there is no privileged register to write) but a **tax
on every checked access** inside a domain.

The simulation keeps the same tag-set gate as CHERI (the active mask set
is the gate state; the ``on_write`` hook keeps the permission cache
coherent across switches) with two differences:

* entry/exit charge nothing to the clock — ``gate_cost == 0``;
* every checked load/store executed between enter and exit charges
  ``cost.sfi_access_check``, accounted at domain exit from the address
  space's access counters (nested entries are not double-taxed: an access
  is instrumented exactly once, by the innermost sandbox).

A masked access that escapes its region raises
:class:`~repro.errors.SfiViolation` — again a
:class:`~repro.errors.ProtectionKeyViolation` subclass, so the rewind
protocol above is untouched.
"""

from __future__ import annotations

from ...errors import SfiViolation
from .base import GateIdiom, GrantSetGate, IsolationBackend, TagAllocator


class SfiMaskGate(GrantSetGate):
    """The active address-mask set of the running sandbox."""


class SfiBackend(IsolationBackend):
    """Simulated SFI: free gate, taxed accesses, unbounded regions."""

    name = "sfi"
    num_page_tags = None
    max_domains = None
    supports_key_virtualization = False
    #: Per-access instrumentation dominates: the published SFI overhead
    #: band on memory-bound code is well above the MPK gate cost.
    runtime_overhead_hint = 0.08
    idiom = GateIdiom(
        register_classes=frozenset({"SfiMaskGate", "GrantSetGate"}),
        receiver_names=frozenset({"gate", "mask_gate"}),
        write_calls=frozenset(
            {"write", "write_prepared", "grant", "revoke", "close_all"}
        ),
    )

    def create_gate(self) -> SfiMaskGate:
        return SfiMaskGate()

    def create_allocator(self) -> TagAllocator:
        return TagAllocator(max_tags=None)

    def violation(self, address: int, tag: int, access: str) -> Exception:
        return SfiViolation(address, tag, access=access)

    # entry_cost / exit_cost stay 0.0: there is no gate to pay for.

    def setup_cost(self, cost) -> float:
        # Install the region mask and bind the instrumented entry points.
        return cost.sfi_domain_setup

    def access_tax(self, cost) -> float:
        return cost.sfi_access_check
