"""A first-fit free-list heap allocator over the simulated address space.

SDRaD gives every domain its own heap instance so that *discard* is cheap:
tearing down a compromised domain's allocations is a constant-time allocator
reset, not a walk over live objects. This allocator reproduces the properties
the scheme depends on:

* **Metadata lives in simulated memory.** Block headers and guard words are
  real bytes adjacent to payloads, so a simulated buffer overflow corrupts
  them exactly like a real one corrupts dlmalloc's boundary tags — and the
  integrity checks (:meth:`FreeListAllocator.free`,
  :meth:`FreeListAllocator.check`) detect it.
* **Reset-is-discard.** :meth:`reset` abandons all blocks in O(1) plus an
  optional page scrub, matching SDRaD's rewind-and-discard semantics
  (ablation D2 in DESIGN.md).

Block layout (all integers little-endian)::

    +0   u32  magic       ALLOC_MAGIC (in use) or FREE_MAGIC (free)
    +4   u32  capacity    payload capacity, 16-byte aligned
    +8   u32  requested   size the caller asked for (<= capacity)
    +12  u32  checksum    magic ^ capacity ^ requested
    +16  ...  payload     (capacity bytes)
    +16+cap   u64 x2 guard  GUARD_PATTERN twice (16-byte overflow red zone,
              keeping payloads 16-byte aligned)

Allocator metadata accesses use the raw (kernel) path: the allocator models
inlined library code running with its domain's rights, and routing metadata
through PKRU checks would only re-test what the application path already
tests. Application payload accesses stay on the checked path.
"""

from __future__ import annotations

import struct
from bisect import bisect_left, insort
from dataclasses import dataclass

from ..errors import AllocationFailure, HeapCorruption, InvalidFree, SdradError
from .address_space import AddressSpace

HEADER_SIZE = 16
GUARD_SIZE = 16
ALIGNMENT = 16

ALLOC_MAGIC = 0x5DAD_A110
FREE_MAGIC = 0x5DAD_F4EE
GUARD_PATTERN = 0xDEAD_BEEF_CAFE_F00D

_HEADER_STRUCT = struct.Struct("<IIII")
_GUARD_BYTES = GUARD_PATTERN.to_bytes(8, "little") * 2


def _align(value: int) -> int:
    return (value + ALIGNMENT - 1) // ALIGNMENT * ALIGNMENT


@dataclass
class HeapStats:
    """Point-in-time allocator statistics."""

    arena_bytes: int
    allocated_bytes: int
    free_bytes: int
    live_blocks: int
    free_blocks: int
    peak_allocated_bytes: int
    total_allocs: int
    total_frees: int

    @property
    def utilisation(self) -> float:
        if self.arena_bytes == 0:
            return 0.0
        return self.allocated_bytes / self.arena_bytes


class FreeListAllocator:
    """First-fit allocator with boundary-tag headers and overflow guards."""

    def __init__(
        self, space: AddressSpace, base: int, size: int, name: str = "heap"
    ) -> None:
        overhead = HEADER_SIZE + GUARD_SIZE
        if size < overhead + ALIGNMENT:
            raise SdradError(f"arena too small for one block: {size} bytes")
        self.space = space
        self.base = base
        self.size = size
        self.name = name
        # Python-side mirror of block layout for O(1) lookups; simulated
        # memory remains the source of truth for integrity checks.
        self._blocks: dict[int, tuple[int, bool]] = {}  # addr -> (capacity, in_use)
        # Block addresses kept sorted (bisect-maintained) so first-fit and
        # coalescing avoid re-sorting the block map on every call.
        self._addrs: list[int] = []
        self.total_allocs = 0
        self.total_frees = 0
        self._allocated_bytes = 0
        self._peak_allocated = 0
        # Lazy scrub (reset(scrub=True, lazy=True)): arena bytes are stale
        # until reallocated; malloc zero-fills each block it hands out.
        self._scrub_pending = False
        self.lazy_scrubbed_bytes = 0
        # Compiled kernel window over the arena for boundary-tag I/O;
        # rebuilt on demand after any plan shootdown.
        self._plan = None
        # Deferred-free fast bin (dlmalloc's fastbin idea, depth 1): the
        # most recently freed block is parked fully verified but with its
        # ALLOC header still in place; an exact-capacity malloc reclaims
        # it without the first-fit walk, split, FREE-header write, or
        # coalesce. Any other operation retires it through the normal
        # free path first, so observable heap state never diverges.
        self._hot: "tuple[int, int] | None" = None  # (block addr, capacity)
        self._init_arena()

    # ------------------------------------------------------------------
    # Public API
    # ------------------------------------------------------------------

    def malloc(self, nbytes: int) -> int:
        """Allocate ``nbytes``; returns the payload address."""
        if nbytes <= 0:
            raise SdradError(f"allocation size must be positive, got {nbytes}")
        capacity = _align(nbytes)
        hot = self._hot
        if hot is not None:
            if hot[1] == capacity:
                # Exact-fit reclaim of the parked block: its guard was
                # verified intact at park time, but free memory is fair
                # game for wild writes, so the guard is rewritten exactly
                # as the slow path would.
                addr = hot[0]
                self._hot = None
                self._write_header(addr, ALLOC_MAGIC, capacity, nbytes)
                self._write_guard(addr, capacity)
                self.total_allocs += 1
                self._allocated_bytes += capacity
                self._peak_allocated = max(
                    self._peak_allocated, self._allocated_bytes
                )
                if self._scrub_pending:
                    self.space.raw_fill(addr + HEADER_SIZE, capacity, 0)
                    self.lazy_scrubbed_bytes += capacity
                return addr + HEADER_SIZE
            self._retire_hot()
        blocks = self._blocks
        for addr in self._addrs:
            block_capacity, in_use = blocks[addr]
            if in_use or block_capacity < capacity:
                continue
            # When the remainder is too small to split off, the whole block
            # is used and its true capacity must be recorded (otherwise the
            # arena walk desynchronises at the leftover bytes).
            capacity = self._split_block(addr, block_capacity, capacity)
            self._write_header(addr, ALLOC_MAGIC, capacity, nbytes)
            self._write_guard(addr, capacity)
            self._blocks[addr] = (capacity, True)
            self.total_allocs += 1
            self._allocated_bytes += capacity
            self._peak_allocated = max(self._peak_allocated, self._allocated_bytes)
            if self._scrub_pending:
                # Scrub-on-reallocate: the deferred discard-time scrub is
                # paid here, for exactly the bytes being handed back out.
                self.space.raw_fill(addr + HEADER_SIZE, capacity, 0)
                self.lazy_scrubbed_bytes += capacity
            return addr + HEADER_SIZE

    # first-fit found nothing
        raise AllocationFailure(
            f"{self.name}: out of memory allocating {nbytes} bytes "
            f"({self._allocated_bytes}/{self.size} in use)"
        )

    def free(self, payload_addr: int) -> None:
        """Free a payload pointer, verifying header and guard integrity."""
        if self._hot is not None:
            # Completing the previous deferred free first keeps the heap
            # exactly as if every free had run eagerly — including turning
            # a re-free of the parked block into the same "double free"
            # (or, post-coalesce, "does not belong") the eager path raises.
            self._retire_hot()
        addr = payload_addr - HEADER_SIZE
        if addr not in self._blocks:
            raise InvalidFree(payload_addr, "pointer does not belong to this heap")
        magic, capacity, requested, checksum = self._read_header(addr)
        if magic == FREE_MAGIC:
            raise InvalidFree(payload_addr, "double free")
        if magic != ALLOC_MAGIC:
            raise HeapCorruption(addr, f"header magic smashed ({magic:#x})")
        if checksum != (magic ^ capacity ^ requested) & 0xFFFFFFFF:
            raise HeapCorruption(addr, "header checksum mismatch")
        mirror_capacity, in_use = self._blocks[addr]
        if capacity != mirror_capacity or not in_use:
            raise HeapCorruption(addr, "header capacity disagrees with allocator state")
        guard = self._read_guard(addr, capacity)
        if guard != _GUARD_BYTES:
            raise HeapCorruption(
                addr + HEADER_SIZE + capacity,
                f"guard bytes overwritten ({guard.hex()}) — buffer overflow",
            )
        # Park instead of freeing eagerly: the block keeps its ALLOC
        # header and mirror entry until something retires it.
        self._hot = (addr, capacity)
        self.total_frees += 1
        self._allocated_bytes -= capacity

    def payload_capacity(self, payload_addr: int) -> int:
        """Usable capacity behind a payload pointer."""
        addr = payload_addr - HEADER_SIZE
        if self._hot is not None and self._hot[0] == addr:
            self._retire_hot()
        if addr not in self._blocks or not self._blocks[addr][1]:
            raise InvalidFree(payload_addr, "not an allocated block")
        return self._blocks[addr][0]

    def check(self) -> None:
        """Walk the whole arena verifying every header and guard.

        This models the heap-integrity sweep SDRaD can run at a domain
        boundary; it raises :class:`HeapCorruption` on the first defect.
        """
        self._retire_hot()
        addr = self.base
        end = self.base + self.size
        seen = 0
        while addr < end:
            magic, capacity, requested, checksum = self._read_header(addr)
            if magic not in (ALLOC_MAGIC, FREE_MAGIC):
                raise HeapCorruption(addr, f"walk found bad magic {magic:#x}")
            if checksum != (magic ^ capacity ^ requested) & 0xFFFFFFFF:
                raise HeapCorruption(addr, "walk found bad checksum")
            if magic == ALLOC_MAGIC:
                guard = self._read_guard(addr, capacity)
                if guard != _GUARD_BYTES:
                    raise HeapCorruption(
                        addr + HEADER_SIZE + capacity, "walk found smashed guard"
                    )
            mirror = self._blocks.get(addr)
            if mirror is None or mirror[0] != capacity:
                raise HeapCorruption(addr, "walk disagrees with allocator state")
            addr += HEADER_SIZE + capacity + GUARD_SIZE
            seen += 1
        if addr != end:
            raise HeapCorruption(addr, "arena walk overran the arena end")
        if seen != len(self._blocks):
            raise HeapCorruption(self.base, "block count mismatch")

    def reset(self, *, scrub: bool = False, lazy: bool = False) -> int:
        """Discard every allocation; returns number of pages scrubbed.

        With ``scrub=False`` (SDRaD's default) old contents remain as garbage
        behind re-tagged pages; ``scrub=True`` zero-fills the arena (ablation
        D2 measures the cost difference in E2). ``scrub=True, lazy=True``
        defers the zero-fill to reallocation time: no pages are touched now
        (the rewind stays flat regardless of arena size) and each later
        ``malloc`` zero-fills the block it hands out, so a new allocation
        never observes a previous incarnation's bytes. Unlike an eager
        scrub, stale bytes do remain in *unallocated* arena space — the E2b
        ablation keeps the eager mode for exactly that comparison.
        """
        pages = 0
        self._hot = None  # everything is discarded, deferred free included
        if scrub:
            if lazy:
                self._scrub_pending = True
            else:
                self.space.raw_fill(self.base, self.size, 0)
                self._scrub_pending = False
                pages = (self.size + 4095) // 4096
        self._blocks.clear()
        self._allocated_bytes = 0
        self._init_arena()
        return pages

    def export_state(self) -> tuple[dict[int, tuple[int, bool]], int]:
        """Snapshot the allocator's bookkeeping (checkpoint/restore path).

        Pairs with a byte-level snapshot of the arena: restoring both puts
        the heap back exactly as it was, metadata and mirror in agreement.
        Retires any deferred free first, so callers must export *before*
        capturing arena bytes (the retire writes boundary tags).
        """
        self._retire_hot()
        return dict(self._blocks), self._allocated_bytes

    def import_state(self, state: tuple[dict[int, tuple[int, bool]], int]) -> None:
        """Restore bookkeeping exported by :meth:`export_state`."""
        blocks, allocated = state
        # The restored snapshot was exported post-retire; whatever is
        # parked now belongs to the state being thrown away.
        self._hot = None
        self._blocks = dict(blocks)
        self._addrs = sorted(self._blocks)
        self._allocated_bytes = allocated

    def stats(self) -> HeapStats:
        self._retire_hot()
        live = sum(1 for _, in_use in self._blocks.values() if in_use)
        free_blocks = len(self._blocks) - live
        return HeapStats(
            arena_bytes=self.size,
            allocated_bytes=self._allocated_bytes,
            free_bytes=self.size
            - self._allocated_bytes
            - len(self._blocks) * (HEADER_SIZE + GUARD_SIZE),
            live_blocks=live,
            free_blocks=free_blocks,
            peak_allocated_bytes=self._peak_allocated,
            total_allocs=self.total_allocs,
            total_frees=self.total_frees,
        )

    # ------------------------------------------------------------------
    # Internals
    # ------------------------------------------------------------------

    def _retire_hot(self) -> None:
        """Complete the deferred free: write the FREE tag and coalesce."""
        hot = self._hot
        if hot is None:
            return
        self._hot = None
        addr, capacity = hot
        self._write_header(addr, FREE_MAGIC, capacity, 0)
        self._blocks[addr] = (capacity, False)
        self._coalesce(addr)

    def _init_arena(self) -> None:
        capacity = self.size - HEADER_SIZE - GUARD_SIZE
        self._write_header(self.base, FREE_MAGIC, capacity, 0)
        self._write_guard(self.base, capacity)
        self._blocks[self.base] = (capacity, False)
        self._addrs = [self.base]

    def _split_block(self, addr: int, block_capacity: int, wanted: int) -> int:
        """Split a free block if the remainder can hold another block.

        Returns the capacity the caller's block actually ends up with:
        ``wanted`` after a split, the whole ``block_capacity`` otherwise.
        """
        remainder = block_capacity - wanted
        min_block = HEADER_SIZE + GUARD_SIZE + ALIGNMENT
        if remainder < min_block:
            return block_capacity  # use the whole block
        new_addr = addr + HEADER_SIZE + wanted + GUARD_SIZE
        new_capacity = remainder - HEADER_SIZE - GUARD_SIZE
        self._write_header(new_addr, FREE_MAGIC, new_capacity, 0)
        self._write_guard(new_addr, new_capacity)
        self._blocks[new_addr] = (new_capacity, False)
        insort(self._addrs, new_addr)
        self._blocks[addr] = (wanted, False)
        return wanted

    def _coalesce(self, addr: int) -> None:
        """Merge the freed block with free neighbours (boundary-tag merge)."""
        addrs = self._addrs
        index = bisect_left(addrs, addr)
        # merge forward first so the backward merge sees the combined block
        capacity = self._blocks[addr][0]
        if index + 1 < len(addrs):
            nxt = addrs[index + 1]
            nxt_capacity, nxt_in_use = self._blocks[nxt]
            if not nxt_in_use and nxt == addr + HEADER_SIZE + capacity + GUARD_SIZE:
                capacity += HEADER_SIZE + nxt_capacity + GUARD_SIZE
                del self._blocks[nxt]
                del addrs[index + 1]
                self._blocks[addr] = (capacity, False)
                self._write_header(addr, FREE_MAGIC, capacity, 0)
                self._write_guard(addr, capacity)
        if index > 0:
            prev = addrs[index - 1]
            prev_capacity, prev_in_use = self._blocks.get(prev, (0, True))
            if (
                not prev_in_use
                and prev + HEADER_SIZE + prev_capacity + GUARD_SIZE == addr
            ):
                merged = prev_capacity + HEADER_SIZE + capacity + GUARD_SIZE
                del self._blocks[addr]
                del addrs[index]
                self._blocks[prev] = (merged, False)
                self._write_header(prev, FREE_MAGIC, merged, 0)
                self._write_guard(prev, merged)

    def _arena_plan(self):
        """Live kernel plan over the arena, or ``None`` with plans off.

        Boundary-tag traffic is the allocator's whole access profile, so a
        single compiled window over ``[base, base+size)`` serves every
        header, guard and scrub; a shootdown (mprotect/retag/``pkey_free``
        on any page) drops ``cell[0]`` and the next call recompiles.
        """
        plan = self._plan
        if plan is not None and plan.cell[0]:
            return plan
        cache = self.space.plans
        if cache is None:
            return None
        self._plan = cache.kernel_plan(self.base, self.size)
        return self._plan

    def _write_header(self, addr: int, magic: int, capacity: int, requested: int) -> None:
        checksum = (magic ^ capacity ^ requested) & 0xFFFFFFFF
        plan = self._arena_plan()
        if plan is not None:
            plan.pack_into(_HEADER_STRUCT, addr, magic, capacity, requested, checksum)
        else:
            self.space.raw_store(
                addr, _HEADER_STRUCT.pack(magic, capacity, requested, checksum)
            )

    def _write_guard(self, addr: int, capacity: int) -> None:
        plan = self._arena_plan()
        if plan is not None:
            plan.store(addr + HEADER_SIZE + capacity, _GUARD_BYTES)
        else:
            self.space.raw_store(addr + HEADER_SIZE + capacity, _GUARD_BYTES)

    def _read_header(self, addr: int) -> tuple[int, int, int, int]:
        plan = self._arena_plan()
        if plan is not None:
            return plan.unpack_from(_HEADER_STRUCT, addr)
        return _HEADER_STRUCT.unpack(self.space.raw_load(addr, HEADER_SIZE))

    def _read_guard(self, addr: int, capacity: int) -> bytes:
        plan = self._arena_plan()
        if plan is not None:
            return plan.load(addr + HEADER_SIZE + capacity, GUARD_SIZE)
        return self.space.raw_load(addr + HEADER_SIZE + capacity, GUARD_SIZE)
