"""Address-space layout constants and helpers.

The simulated address space mimics the layout SDRaD sets up on Linux/x86-64,
scaled down so experiments stay cheap: 4 KiB pages, a root region for the
trusted runtime and the parent domain, and per-domain heap/stack regions
carved out at domain init and tagged with the domain's protection key.
"""

from __future__ import annotations

#: Page size in bytes (matches x86-64 small pages).
PAGE_SIZE = 4096

#: Default simulated address-space size (16 MiB — large enough for every
#: experiment's domains, small enough that snapshots are instant).
DEFAULT_SPACE_SIZE = 16 * 1024 * 1024

#: Default per-domain heap size.
DEFAULT_DOMAIN_HEAP = 256 * 1024

#: Default per-domain stack size.
DEFAULT_DOMAIN_STACK = 64 * 1024


def page_index(address: int) -> int:
    """Index of the page containing ``address``."""
    return address // PAGE_SIZE


def page_base(address: int) -> int:
    """Base address of the page containing ``address``."""
    return (address // PAGE_SIZE) * PAGE_SIZE


def page_align_up(value: int) -> int:
    """Smallest page-aligned value >= ``value``."""
    return (value + PAGE_SIZE - 1) // PAGE_SIZE * PAGE_SIZE


def is_page_aligned(value: int) -> bool:
    return value % PAGE_SIZE == 0


def pages_spanned(address: int, length: int) -> range:
    """Page indices touched by ``[address, address + length)``."""
    if length <= 0:
        return range(0)
    return range(page_index(address), page_index(address + length - 1) + 1)
