"""Simulated memory subsystem: address space, MPK, allocators, stacks.

This package is the hardware substitution layer (DESIGN.md §2): it provides
the same primitives SDRaD uses on Linux/x86-64 — ``mmap``/``mprotect``/
``pkey_mprotect`` analogues, a PKRU register, per-domain heaps and canaried
stacks — with enforcement performed on the simulated load/store path.
"""

from .address_space import AddressSpace, CheckMode
from .allocator import FreeListAllocator, HeapStats
from .backends import (
    BackendLimits,
    GrantSetGate,
    IsolationBackend,
    TagAllocator,
    available_backends,
    resolve_backend,
)
from .layout import (
    DEFAULT_DOMAIN_HEAP,
    DEFAULT_DOMAIN_STACK,
    DEFAULT_SPACE_SIZE,
    PAGE_SIZE,
    page_align_up,
    page_base,
    page_index,
    pages_spanned,
)
from .mpk import NUM_PKEYS, PKEY_DEFAULT, PkeyAllocator, PkruRegister, pkru_bits
from .pagetable import PageEntry, PageTable
from .plans import AccessPlan, AccessPlanCache
from .slab import SlabAllocator, SlabClassStats, default_size_classes
from .snapshot import RegionSnapshot, capture, differs, restore
from .stack import CallStack, StackFrame

__all__ = [
    "AddressSpace",
    "CheckMode",
    "BackendLimits",
    "GrantSetGate",
    "IsolationBackend",
    "TagAllocator",
    "available_backends",
    "resolve_backend",
    "FreeListAllocator",
    "HeapStats",
    "DEFAULT_DOMAIN_HEAP",
    "DEFAULT_DOMAIN_STACK",
    "DEFAULT_SPACE_SIZE",
    "PAGE_SIZE",
    "page_align_up",
    "page_base",
    "page_index",
    "pages_spanned",
    "NUM_PKEYS",
    "PKEY_DEFAULT",
    "PkeyAllocator",
    "PkruRegister",
    "pkru_bits",
    "PageEntry",
    "PageTable",
    "AccessPlan",
    "AccessPlanCache",
    "SlabAllocator",
    "SlabClassStats",
    "default_size_classes",
    "RegionSnapshot",
    "capture",
    "differs",
    "restore",
    "CallStack",
    "StackFrame",
]
