"""Simulated Intel Memory Protection Keys (MPK / PKU).

Real MPK associates one of 16 *protection keys* with every user page and a
thread-local 32-bit *PKRU* register with two bits per key:

* ``AD`` (access disable) — bit ``2k``: all accesses to pages tagged ``k``
  fault;
* ``WD`` (write disable) — bit ``2k + 1``: writes to pages tagged ``k``
  fault (reads still allowed).

Userspace flips PKRU with the unprivileged ``WRPKRU`` instruction, which is
what makes MPK-based isolation *lightweight*: a domain switch is a register
write, not a syscall. This module reproduces exactly those semantics —
16 keys, the AD/WD bit layout, key allocation/free — so the SDRaD runtime
above it is written against the same contract the C library uses.
"""

from __future__ import annotations

from ..errors import OutOfDomains, SdradError

#: Number of protection keys the hardware provides.
NUM_PKEYS = 16

#: Key 0 is the default key: every page not explicitly tagged belongs to it,
#: and the ABI expects it to stay accessible (glibc and the loader live
#: there). SDRaD reserves it for the trusted runtime + root domain.
PKEY_DEFAULT = 0

#: Access-disable bit for key ``k`` is ``1 << (2 * k)``.
AD_BIT = 0b01
#: Write-disable bit for key ``k`` is ``1 << (2 * k + 1)``.
WD_BIT = 0b10


def pkru_bits(pkey: int, *, access_disable: bool, write_disable: bool) -> int:
    """PKRU bit pattern for one key."""
    _validate_pkey(pkey)
    bits = 0
    if access_disable:
        bits |= AD_BIT << (2 * pkey)
    if write_disable:
        bits |= WD_BIT << (2 * pkey)
    return bits


def _validate_pkey(pkey: int) -> None:
    if not 0 <= pkey < NUM_PKEYS:
        raise SdradError(f"protection key out of range: {pkey}")


class PkruRegister:
    """The thread-local PKRU register.

    The power-on/reset convention here matches SDRaD's: *deny everything
    except key 0*, so an untagged thread can only touch default-key pages
    and each domain must be explicitly granted its keys on entry.
    """

    __slots__ = ("_value", "writes", "on_write")

    #: All AD bits set except for key 0 — deny-by-default.
    DENY_ALL_EXCEPT_DEFAULT = int(
        "".join("11" for _ in range(NUM_PKEYS - 1)) + "00", 2
    )

    def __init__(self, value: int | None = None) -> None:
        self._value = (
            self.DENY_ALL_EXCEPT_DEFAULT if value is None else value & 0xFFFFFFFF
        )
        #: Count of WRPKRU writes, so experiments can charge their cost.
        self.writes = 0
        #: Mutation hook called with the new value after every WRPKRU.
        #: The address space uses it to keep its permission cache (software
        #: TLB) coherent — cached verdicts depend on the PKRU value.
        self.on_write = None

    @property
    def value(self) -> int:
        return self._value

    def write(self, value: int) -> None:
        """The WRPKRU instruction."""
        self._value = value & 0xFFFFFFFF
        self.writes += 1
        if self.on_write is not None:
            self.on_write(self._value)

    def write_prepared(self, value: int, modelled_writes: int = 1) -> None:
        """Apply a pre-derived PKRU value in a single step.

        The runtime's re-entry fast path derives a domain's final PKRU once
        (through ``modelled_writes`` WRPKRUs) and replays the result on later
        entries. The replay must be indistinguishable from the derivation to
        everything observable — the ``writes`` counter feeds telemetry and
        cost accounting — so the counter advances by the full modelled
        instruction count while the register (and the cache-coherency hook)
        sees only the final value.
        """
        if modelled_writes < 1:
            raise SdradError(
                f"write_prepared models {modelled_writes} WRPKRUs; need >= 1"
            )
        self._value = value & 0xFFFFFFFF
        self.writes += modelled_writes
        if self.on_write is not None:
            self.on_write(self._value)

    def allows_read(self, pkey: int) -> bool:
        _validate_pkey(pkey)
        return not self._value & (AD_BIT << (2 * pkey))

    def allows_write(self, pkey: int) -> bool:
        _validate_pkey(pkey)
        if self._value & (AD_BIT << (2 * pkey)):
            return False
        return not self._value & (WD_BIT << (2 * pkey))

    def grant(self, pkey: int, *, read: bool = True, write: bool = True) -> None:
        """Convenience mutation of the current value (counts as one WRPKRU)."""
        _validate_pkey(pkey)
        value = self._value
        value &= ~((AD_BIT | WD_BIT) << (2 * pkey))
        if not read:
            value |= AD_BIT << (2 * pkey)
        elif not write:
            value |= WD_BIT << (2 * pkey)
        self.write(value)

    def revoke(self, pkey: int) -> None:
        """Deny all access to ``pkey`` (counts as one WRPKRU)."""
        _validate_pkey(pkey)
        self.write(self._value | (AD_BIT << (2 * pkey)))

    def close_all(self) -> None:
        """Deny every key, including the default (two WRPKRUs).

        This is the first half of a domain entry on any substrate; on MPK
        it is the historical ``write(DENY_ALL_EXCEPT_DEFAULT)`` followed by
        revoking key 0 (whose AD pattern that constant cannot express), so
        the write count and every intermediate ``on_write`` value are
        exactly what the runtime produced before this micro-op existed.
        """
        self.write(self.DENY_ALL_EXCEPT_DEFAULT)
        self.revoke(0)

    def snapshot(self) -> int:
        return self._value

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"PkruRegister({self._value:#010x}, writes={self.writes})"


class PkeyAllocator:
    """Kernel-side protection-key bookkeeping (``pkey_alloc``/``pkey_free``).

    SDRaD's central scalability limit is right here: MPK gives 16 keys, one
    is reserved, so at most 15 concurrently isolated domains exist without
    key virtualisation. :class:`~repro.errors.OutOfDomains` models the
    ``ENOSPC`` the real syscall returns.
    """

    def __init__(self) -> None:
        self._allocated: set[int] = {PKEY_DEFAULT}
        #: Hook called after a key is freed. Key recycling is an isolation
        #: hazard — a verdict cached for the old owner must not leak to the
        #: next — so the address space flushes its permission cache here.
        self.on_free = None

    @property
    def allocated(self) -> frozenset[int]:
        return frozenset(self._allocated)

    @property
    def available(self) -> int:
        return NUM_PKEYS - len(self._allocated)

    def alloc(self) -> int:
        """Allocate the lowest free key (mirrors the kernel's behaviour)."""
        for pkey in range(NUM_PKEYS):
            if pkey not in self._allocated:
                self._allocated.add(pkey)
                return pkey
        raise OutOfDomains(
            f"all {NUM_PKEYS} protection keys in use; "
            "MPK supports at most 15 isolated domains"
        )

    def free(self, pkey: int) -> None:
        _validate_pkey(pkey)
        if pkey == PKEY_DEFAULT:
            raise SdradError("cannot free the default protection key")
        if pkey not in self._allocated:
            raise SdradError(f"pkey_free of unallocated key {pkey}")
        self._allocated.remove(pkey)
        if self.on_free is not None:
            self.on_free(pkey)

    def is_allocated(self, pkey: int) -> bool:
        _validate_pkey(pkey)
        return pkey in self._allocated
