"""A Memcached-style slab allocator on the simulated address space.

The paper's flagship use case is Memcached, whose allocator is not a general
heap but a *slab* allocator: the arena is carved into fixed-size slab pages,
each page is assigned to a *size class* and divided into equal chunks, and
items occupy the smallest chunk that fits. Reproducing it matters for two
experiments:

* E2 — restart cost scales with the bytes resident in slabs (the "10 GB
  database" the paper reloads in ~2 minutes);
* E4 — per-item chunk headers give the store a realistic corruption surface.

Chunk layout::

    +0  u32 magic       CHUNK_MAGIC
    +4  u32 class_id    size-class index
    +8  ... payload

Like :mod:`repro.memory.allocator`, metadata accesses use the raw path while
payload accesses are the application's problem (checked path).
"""

from __future__ import annotations

from dataclasses import dataclass

from ..errors import AllocationFailure, HeapCorruption, InvalidFree, SdradError
from .address_space import AddressSpace

CHUNK_HEADER = 8
CHUNK_MAGIC = 0x51AB_17E3
DEFAULT_SLAB_PAGE = 64 * 1024


def default_size_classes(
    smallest: int = 64, largest: int = 16 * 1024, growth: float = 1.25
) -> list[int]:
    """Memcached-style geometric chunk-size ladder."""
    if smallest <= CHUNK_HEADER:
        raise SdradError(f"smallest class must exceed header size, got {smallest}")
    if growth <= 1.0:
        raise SdradError(f"growth factor must be > 1, got {growth}")
    classes = [smallest]
    while classes[-1] < largest:
        nxt = int(classes[-1] * growth)
        if nxt == classes[-1]:
            nxt += 8
        classes.append(min(nxt, largest))
    return classes


@dataclass
class SlabClassStats:
    chunk_size: int
    total_chunks: int
    used_chunks: int
    slab_pages: int


class SlabAllocator:
    """Slab allocation with geometric size classes over a fixed arena."""

    def __init__(
        self,
        space: AddressSpace,
        base: int,
        size: int,
        chunk_sizes: list[int] | None = None,
        slab_page_size: int = DEFAULT_SLAB_PAGE,
    ) -> None:
        self.space = space
        self.base = base
        self.size = size
        self.slab_page_size = slab_page_size
        self.chunk_sizes = sorted(chunk_sizes or default_size_classes())
        if self.chunk_sizes[-1] + CHUNK_HEADER > slab_page_size:
            raise SdradError(
                "largest chunk class does not fit in one slab page "
                f"({self.chunk_sizes[-1]} + header > {slab_page_size})"
            )
        self._next_page = base
        self._free_chunks: dict[int, list[int]] = {
            i: [] for i in range(len(self.chunk_sizes))
        }
        self._pages_per_class: dict[int, int] = {
            i: 0 for i in range(len(self.chunk_sizes))
        }
        self._live: dict[int, int] = {}  # chunk addr -> class id
        # Chunk headers are constant per class; precomputing them turns
        # the per-alloc header write and per-free verification into one
        # bytes store / compare.
        self._header_bytes: list[bytes] = [
            CHUNK_MAGIC.to_bytes(4, "little") + class_id.to_bytes(4, "little")
            for class_id in range(len(self.chunk_sizes))
        ]
        self.total_allocs = 0
        self.total_frees = 0

    # ------------------------------------------------------------------
    # Allocation
    # ------------------------------------------------------------------

    def class_for(self, nbytes: int) -> int:
        """Smallest size class whose chunks can hold ``nbytes``."""
        for class_id, chunk_size in enumerate(self.chunk_sizes):
            if chunk_size >= nbytes:
                return class_id
        raise AllocationFailure(
            f"object of {nbytes} bytes exceeds largest slab class "
            f"({self.chunk_sizes[-1]})"
        )

    def alloc(self, nbytes: int) -> int:
        """Allocate a chunk for ``nbytes``; returns the payload address."""
        if nbytes <= 0:
            raise SdradError(f"allocation size must be positive, got {nbytes}")
        class_id = self.class_for(nbytes)
        free = self._free_chunks[class_id]
        if not free:
            self._grow_class(class_id)
            free = self._free_chunks[class_id]
        addr = free.pop()
        self._write_chunk_header(addr, class_id)
        self._live[addr] = class_id
        self.total_allocs += 1
        return addr + CHUNK_HEADER

    def free(self, payload_addr: int) -> None:
        addr = payload_addr - CHUNK_HEADER
        class_id = self._live.get(addr)
        if class_id is None:
            raise InvalidFree(payload_addr, "not a live slab chunk")
        raw = self.space.raw_load(addr, CHUNK_HEADER)
        if raw != self._header_bytes[class_id]:
            # Decode only on the corruption path to name the defect.
            magic, stored_class = self._read_chunk_header(addr)
            if magic != CHUNK_MAGIC:
                raise HeapCorruption(addr, f"chunk magic smashed ({magic:#x})")
            raise HeapCorruption(addr, "chunk class id smashed")
        del self._live[addr]
        self._free_chunks[class_id].append(addr)
        self.total_frees += 1

    def chunk_capacity(self, payload_addr: int) -> int:
        addr = payload_addr - CHUNK_HEADER
        class_id = self._live.get(addr)
        if class_id is None:
            raise InvalidFree(payload_addr, "not a live slab chunk")
        return self.chunk_sizes[class_id]

    def reset(self) -> None:
        """Discard everything (domain rewind path)."""
        self._next_page = self.base
        for free in self._free_chunks.values():
            free.clear()
        for class_id in self._pages_per_class:
            self._pages_per_class[class_id] = 0
        self._live.clear()

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------

    @property
    def live_chunks(self) -> int:
        return len(self._live)

    def resident_bytes(self) -> int:
        """Bytes consumed from the arena (slab pages handed out)."""
        return self._next_page - self.base

    def stats(self) -> list[SlabClassStats]:
        out = []
        for class_id, chunk_size in enumerate(self.chunk_sizes):
            pages = self._pages_per_class[class_id]
            per_page = self.slab_page_size // (chunk_size + CHUNK_HEADER)
            total = pages * per_page
            used = total - len(self._free_chunks[class_id])
            out.append(
                SlabClassStats(
                    chunk_size=chunk_size,
                    total_chunks=total,
                    used_chunks=used,
                    slab_pages=pages,
                )
            )
        return out

    def check(self) -> None:
        """Verify every live chunk's header (domain-boundary sweep).

        Headers are fetched with one batched kernel-path read — the sweep
        runs at every domain boundary, so its cost is part of the isolation
        overhead the paper quantifies.
        """
        if not self._live:
            return
        live = list(self._live.items())
        headers = self.space.raw_load_many(
            (addr, CHUNK_HEADER) for addr, _ in live
        )
        for (addr, class_id), raw in zip(live, headers):
            magic = int.from_bytes(raw[0:4], "little")
            stored_class = int.from_bytes(raw[4:8], "little")
            if magic != CHUNK_MAGIC or stored_class != class_id:
                raise HeapCorruption(addr, "slab sweep found smashed chunk header")

    # ------------------------------------------------------------------
    # Internals
    # ------------------------------------------------------------------

    def _grow_class(self, class_id: int) -> None:
        if self._next_page + self.slab_page_size > self.base + self.size:
            raise AllocationFailure(
                f"slab arena exhausted growing class {class_id} "
                f"({self.resident_bytes()}/{self.size} bytes resident)"
            )
        page = self._next_page
        self._next_page += self.slab_page_size
        self._pages_per_class[class_id] += 1
        stride = self.chunk_sizes[class_id] + CHUNK_HEADER
        count = self.slab_page_size // stride
        for i in range(count):
            self._free_chunks[class_id].append(page + i * stride)

    def _write_chunk_header(self, addr: int, class_id: int) -> None:
        self.space.raw_store(addr, self._header_bytes[class_id])

    def _read_chunk_header(self, addr: int) -> tuple[int, int]:
        raw = self.space.raw_load(addr, CHUNK_HEADER)
        return (
            int.from_bytes(raw[0:4], "little"),
            int.from_bytes(raw[4:8], "little"),
        )
