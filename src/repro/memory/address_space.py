"""The simulated byte-addressable address space with MPK enforcement.

Every load/store issued by simulated application code goes through
:meth:`AddressSpace.load` / :meth:`AddressSpace.store`, which perform the
checks real hardware performs on every access:

1. page present? → :class:`~repro.errors.SegmentationFault`
2. page permissions allow the access? → :class:`~repro.errors.PermissionFault`
3. PKRU allows the page's protection key? →
   :class:`~repro.errors.ProtectionKeyViolation`

This is the load-bearing substitution of the reproduction (DESIGN.md §2):
moving enforcement from MMU silicon into the load/store path preserves the
*protocol* — a compromised domain's wild write faults at the domain boundary
instead of corrupting its neighbour.

Software TLB
------------

Real hardware amortises the page-table walk with a TLB; without the software
analogue every simulated access pays a full walk plus PKRU evaluation, which
is exactly the cost the paper's mechanism is designed to avoid. The
*permission cache* here plays that role: the verdict of a successful check is
cached per ``(page, read/write)`` under the **current PKRU value**, so the
common case — repeated access to already-validated pages — is one dict probe.

Invalidation mirrors what hardware (or the kernel on its behalf) does:

* ``WRPKRU`` (every :meth:`PkruRegister.write`) switches the active verdict
  cache to one keyed by the new PKRU value — verdicts computed under a
  different PKRU are never consulted;
* page-table updates (map/unmap/mprotect/pkey_mprotect) shoot down the
  affected pages in *all* cached PKRU views;
* ``pkey_free`` (key recycling) flushes everything.

Only *allow* verdicts are cached. Denied accesses always take the slow path
and raise, so fault counting and fault types are byte-for-byte identical to
the uncached behaviour — the TLB must never change observable semantics.

``raw_load``/``raw_store`` bypass all checks; they model *kernel* access and
are reserved for trusted-runtime internals (snapshotting, page scrubbing).
Fault injectors must use the checked path: containment of an attacker is
exactly what experiments E4 and the integration tests assert.
"""

from __future__ import annotations

from typing import Iterable, Literal

from ..errors import (
    MemoryError_,
    PermissionFault,
    SdradError,
    SegmentationFault,
)
from .backends import resolve_backend
from .layout import DEFAULT_SPACE_SIZE, PAGE_SIZE, pages_spanned
from .pagetable import PageTable
from .plans import AccessPlanCache

#: Access-check fidelity (ablation hook D1 in DESIGN.md):
#: ``strict``  — walk every page an access spans (hardware-faithful);
#: ``first``   — check only the first page (TLB-hit fast path approximation);
#: ``off``     — no checks (models a build without MPK, the E1 baseline).
CheckMode = Literal["strict", "first", "off"]

#: Largest fill block cached by :meth:`AddressSpace.raw_fill` (1 MiB): fills
#: of any size reuse views of these blocks instead of materialising a
#: ``length``-sized temporary.
_FILL_BLOCK = 1 << 20
_fill_blocks: dict[int, memoryview] = {}


def _fill_block(value: int) -> memoryview:
    block = _fill_blocks.get(value)
    if block is None:
        if len(_fill_blocks) >= 8:
            _fill_blocks.clear()
        block = memoryview(bytes([value]) * _FILL_BLOCK)
        _fill_blocks[value] = block
    return block


class AddressSpace:
    """A simulated process address space: bytes + page table + PKRU."""

    def __init__(
        self,
        size: int = DEFAULT_SPACE_SIZE,
        check_mode: CheckMode = "strict",
        tlb_enabled: bool = True,
        access_plans: bool = True,
        backend: object = "mpk",
    ) -> None:
        if check_mode not in ("strict", "first", "off"):
            raise SdradError(f"unknown check mode {check_mode!r}")
        #: The isolation substrate. The gate, the tag allocator, the
        #: page-table tag ceiling and the violation a denied access raises
        #: all come from it; everything else in this class is generic.
        self.backend = resolve_backend(backend)
        self.page_table = PageTable(size, num_keys=self.backend.num_page_tags)
        #: The substrate's permission gate. ``pkru`` is the historical name
        #: (and still literally a PKRU register under the MPK default);
        #: ``gate`` is the same object under its substrate-neutral name.
        self.pkru = self.backend.create_gate()
        self.gate = self.pkru
        #: The substrate's domain-tag allocator (``pkeys`` historically).
        self.pkeys = self.backend.create_allocator()
        self.tags = self.pkeys
        self._violation = self.backend.violation
        self.check_mode: CheckMode = check_mode
        self._memory = bytearray(size)
        self._view = memoryview(self._memory)
        #: Access counters, used by cost accounting and tests.
        self.loads = 0
        self.stores = 0
        self.faults = 0
        # --- software TLB (permission cache) --------------------------
        # Verdict caches keyed by PKRU value; each cache maps
        # ``page_index * 2 + (1 if write else 0)`` -> True (allow only).
        self.tlb_enabled = tlb_enabled and check_mode != "off"
        self.tlb_hits = 0
        self.tlb_misses = 0
        self.tlb_flushes = 0
        self._tlb: dict[int, bool] = {}
        self._tlb_by_pkru: dict[int, dict[int, bool]] = {
            self.pkru.value: self._tlb
        }
        if self.tlb_enabled:
            self.pkru.on_write = self._tlb_switch_pkru
            self.pkeys.on_free = self._tlb_on_pkey_free
            self.page_table.on_range_update = self._tlb_invalidate_pages
        # --- compiled access plans (repro.memory.plans) ---------------
        # Plans piggyback on the TLB shootdown hooks above for their
        # invalidation signal, so they exist only when the TLB does (and
        # only under strict checking — the D1 check-mode ablations measure
        # per-access cost and must not be confounded by a bypass).
        self.access_plans = (
            bool(access_plans) and self.tlb_enabled and check_mode == "strict"
        )
        self.plans: AccessPlanCache | None = (
            AccessPlanCache(self) if self.access_plans else None
        )

    @property
    def size(self) -> int:
        return self.page_table.space_size

    # ------------------------------------------------------------------
    # Checked access (application path)
    # ------------------------------------------------------------------

    def load(self, address: int, length: int) -> bytes:
        """Checked read of ``length`` bytes at ``address``."""
        # Fast path: single-page access whose read verdict is cached under
        # the current PKRU. A cached page is mapped and inside the space, so
        # the fused page/bounds condition is the only check needed.
        if (
            0 < length <= PAGE_SIZE - address % PAGE_SIZE
            and address // PAGE_SIZE * 2 in self._tlb
        ):
            self.tlb_hits += 1
        else:
            self._check_access(address, length, write=False)
        self.loads += 1
        return bytes(self._view[address : address + length])

    def store(self, address: int, data: bytes) -> None:
        """Checked write of ``data`` at ``address``."""
        length = len(data)
        if (
            0 < length <= PAGE_SIZE - address % PAGE_SIZE
            and address // PAGE_SIZE * 2 + 1 in self._tlb
        ):
            self.tlb_hits += 1
        else:
            self._check_access(address, length, write=True)
        self.stores += 1
        self._memory[address : address + length] = data

    def load_view(self, address: int, length: int) -> memoryview:
        """Checked zero-copy read: a read-only view of the bytes.

        For callers that can consume a buffer without owning it (parsers,
        checksumming, serialisation) this skips the copy ``load`` makes.
        The view aliases live memory: it reflects later stores, so callers
        must not hold it across writes they do not want to observe.
        """
        if (
            0 < length <= PAGE_SIZE - address % PAGE_SIZE
            and address // PAGE_SIZE * 2 in self._tlb
        ):
            self.tlb_hits += 1
        else:
            self._check_access(address, length, write=False)
        self.loads += 1
        return self._view[address : address + length].toreadonly()

    def load_many(self, requests: Iterable[tuple[int, int]]) -> list[bytes]:
        """Checked batched read: one call for many ``(address, length)``.

        Semantically identical to ``[load(a, n) for a, n in requests]`` but
        amortises the per-call overhead across the batch, and coalesces
        *adjacent* requests (each starting where the previous ended) into
        one contiguous run checked as a unit — the same pages, so the same
        verdicts; :meth:`_check_run` replays a faulting run per request so
        fault identity is preserved. This is the shape of the kvstore/slab
        hot loops (header followed by its body) even with plans disabled.
        """
        view = self._view
        out: list[bytes] = []
        run_start = 0
        run_end = -1  # sentinel: no run open
        members: list[tuple[int, int]] = []
        count = 0
        for address, length in requests:
            count += 1
            if 0 < length and address == run_end:
                members.append((address, length))
                run_end += length
                continue
            if run_end >= 0:
                self._check_run(run_start, run_end - run_start, members)
                for member_address, member_length in members:
                    out.append(
                        bytes(view[member_address : member_address + member_length])
                    )
            if length <= 0:
                # Degenerate requests keep exact per-request semantics
                # (bounds check, empty result) and never join a run.
                self._check_access(address, length, write=False)
                out.append(b"")
                run_end = -1
                members = []
            else:
                run_start = address
                run_end = address + length
                members = [(address, length)]
        if run_end >= 0:
            self._check_run(run_start, run_end - run_start, members)
            for member_address, member_length in members:
                out.append(
                    bytes(view[member_address : member_address + member_length])
                )
        self.loads += count
        return out

    def store_many(self, items: Iterable[tuple[int, bytes]]) -> None:
        """Checked batched write: one call for many ``(address, data)``.

        Adjacent writes coalesce into contiguous runs like
        :meth:`load_many`; a fault inside a run replays that run's members
        individually so the partially-applied prefix and the raised fault
        are identical to the uncoalesced path.
        """
        run_start = 0
        run_end = -1
        members: list[tuple[int, bytes]] = []
        count = 0
        for address, data in items:
            length = len(data)
            count += 1
            if 0 < length and address == run_end:
                members.append((address, data))
                run_end += length
                continue
            if run_end >= 0:
                self._store_run(run_start, run_end - run_start, members)
            if length <= 0:
                self._check_access(address, length, write=True)
                run_end = -1
                members = []
            else:
                run_start = address
                run_end = address + length
                members = [(address, data)]
        if run_end >= 0:
            self._store_run(run_start, run_end - run_start, members)
        self.stores += count

    def _check_run(self, address: int, length: int, members) -> None:
        """Check one coalesced run of adjacent batched reads.

        The run spans exactly the pages its members span, so one fused
        check computes the same verdicts. If the fused check faults, the
        members are re-checked one by one (after undoing the fused check's
        fault count) so the raised fault and the fault counter match the
        uncoalesced path byte for byte.
        """
        if (
            0 < length <= PAGE_SIZE - address % PAGE_SIZE
            and address // PAGE_SIZE * 2 in self._tlb
        ):
            self.tlb_hits += 1
            return
        if len(members) == 1:
            self._check_access(address, length, write=False)
            return
        faults_before = self.faults
        try:
            self._check_access(address, length, write=False)
        except MemoryError_:
            self.faults = faults_before
            for member_address, member_length in members:
                self._check_access(member_address, member_length, write=False)
            raise  # pragma: no cover - per-member re-check raises first

    def _store_run(self, address: int, length: int, members) -> None:
        """Check one coalesced run of adjacent batched writes, then apply.

        On a fused-check fault the members are replayed individually —
        checking *and writing* each passing member before the faulting one
        raises — so the partially-applied prefix matches sequential
        semantics exactly.
        """
        memory = self._memory
        if (
            0 < length <= PAGE_SIZE - address % PAGE_SIZE
            and address // PAGE_SIZE * 2 + 1 in self._tlb
        ):
            self.tlb_hits += 1
        elif len(members) == 1:
            self._check_access(address, length, write=True)
        else:
            faults_before = self.faults
            try:
                self._check_access(address, length, write=True)
            except MemoryError_:
                self.faults = faults_before
                for member_address, data in members:
                    self._check_access(member_address, len(data), write=True)
                    memory[member_address : member_address + len(data)] = data
                raise  # pragma: no cover - per-member re-check raises first
        for member_address, data in members:
            memory[member_address : member_address + len(data)] = data

    def load_u8(self, address: int) -> int:
        return self.load(address, 1)[0]

    def store_u8(self, address: int, value: int) -> None:
        self.store(address, bytes([value & 0xFF]))

    def load_u32(self, address: int) -> int:
        return int.from_bytes(self.load(address, 4), "little")

    def store_u32(self, address: int, value: int) -> None:
        self.store(address, (value & 0xFFFFFFFF).to_bytes(4, "little"))

    def load_u64(self, address: int) -> int:
        return int.from_bytes(self.load(address, 8), "little")

    def store_u64(self, address: int, value: int) -> None:
        self.store(address, (value & 0xFFFFFFFFFFFFFFFF).to_bytes(8, "little"))

    # ------------------------------------------------------------------
    # Raw access (trusted runtime / kernel path)
    # ------------------------------------------------------------------

    def raw_load(self, address: int, length: int) -> bytes:
        self._check_bounds(address, length)
        return bytes(self._view[address : address + length])

    def raw_view(self, address: int, length: int) -> memoryview:
        """Zero-copy kernel-path read (read-only view of live memory)."""
        self._check_bounds(address, length)
        return self._view[address : address + length].toreadonly()

    def raw_load_many(self, requests: Iterable[tuple[int, int]]) -> list[bytes]:
        """Batched kernel-path read for metadata sweeps (slab/heap walks)."""
        view = self._view
        out: list[bytes] = []
        for address, length in requests:
            self._check_bounds(address, length)
            out.append(bytes(view[address : address + length]))
        return out

    def raw_store(self, address: int, data: bytes) -> None:
        self._check_bounds(address, len(data))
        self._memory[address : address + len(data)] = data

    def raw_fill(self, address: int, length: int, value: int = 0) -> None:
        self._check_bounds(address, length)
        if length == 0:
            return
        # Fill from views of a cached repeated-byte block instead of
        # materialising a length-sized temporary — GiB-scale scrubs in the
        # E2 restart simulations allocate nothing.
        block = _fill_block(value & 0xFF)
        view = self._view
        position = address
        end = address + length
        while position < end:
            step = min(_FILL_BLOCK, end - position)
            view[position : position + step] = block[:step]
            position += step

    # ------------------------------------------------------------------
    # Software TLB maintenance
    # ------------------------------------------------------------------

    def tlb_flush(self) -> None:
        """Drop every cached verdict (all PKRU views) and every plan."""
        self._tlb = {}
        self._tlb_by_pkru = {self.pkru.value: self._tlb}
        self.tlb_flushes += 1
        if self.plans is not None:
            self.plans.shootdown()

    def _tlb_switch_pkru(self, value: int) -> None:
        """WRPKRU hook: activate the verdict cache for the new PKRU value.

        Verdicts depend on PKRU, so caches are segregated per PKRU value
        rather than flushed — domain switches alternate between a handful of
        PKRU values and keep their warm caches.
        """
        cache = self._tlb_by_pkru.get(value)
        if cache is None:
            if len(self._tlb_by_pkru) >= 64:
                # Pathological PKRU churn: fall back to a full flush. The
                # discarded verdict dicts are exactly what checked plans
                # anchor their validity to, so they must die with them.
                self._tlb_by_pkru.clear()
                self.tlb_flushes += 1
                if self.plans is not None:
                    self.plans.shootdown()
            cache = {}
            self._tlb_by_pkru[value] = cache
        self._tlb = cache
        # Plans compiled under other PKRU values need no action here: each
        # checked plan captures its verdict dict and tests identity against
        # ``self._tlb`` per access, so this switch makes foreign plans
        # dormant exactly like it benches foreign verdict caches.

    def _tlb_invalidate_pages(self, first_page: int, last_page: int) -> None:
        """Page-table hook: shoot down pages in every cached PKRU view."""
        span = last_page - first_page + 1
        for cache in self._tlb_by_pkru.values():
            if span > len(cache):
                for key in [k for k in cache if first_page <= k >> 1 <= last_page]:
                    del cache[key]
            else:
                for page in range(first_page, last_page + 1):
                    cache.pop(page * 2, None)
                    cache.pop(page * 2 + 1, None)
        self.tlb_flushes += 1
        # Any mapping/permission/key change kills every plan. Page-scoped
        # plan invalidation would need a page->plan index; range updates
        # are domain-lifecycle-rate events, so conservative is cheap.
        if self.plans is not None:
            self.plans.shootdown()

    def _tlb_on_pkey_free(self, pkey: int) -> None:
        """``pkey_free`` hook: a recycled key may re-appear under a new
        owner with the same PKRU bits, so no cached verdict is safe."""
        self.tlb_flush()

    # ------------------------------------------------------------------
    # Checks
    # ------------------------------------------------------------------

    def _check_bounds(self, address: int, length: int) -> None:
        if length < 0:
            raise SdradError(f"negative access length {length}")
        if address < 0 or address + length > self.size:
            raise SegmentationFault(address)

    def _check_access(self, address: int, length: int, *, write: bool) -> None:
        self._check_bounds(address, length)
        if length == 0:
            return
        mode = self.check_mode
        if mode == "off":
            return
        if mode == "first":
            length = 1  # only the first page is checked (D1 ablation)
        bit = 1 if write else 0
        tlb = self._tlb
        enabled = self.tlb_enabled
        for index in pages_spanned(address, length):
            key = index * 2 + bit
            if key in tlb:
                self.tlb_hits += 1
                continue
            self._check_page(index * PAGE_SIZE, write=write)
            if enabled:
                self.tlb_misses += 1
                tlb[key] = True

    def _check_page(self, address: int, *, write: bool) -> None:
        entry = self.page_table.entry_for(address)
        access = "store" if write else "load"
        if not entry.present:
            self.faults += 1
            raise SegmentationFault(address, access=access)
        if write and not entry.writable:
            self.faults += 1
            raise PermissionFault(address, access, entry.perms())
        if not write and not entry.readable:
            self.faults += 1
            raise PermissionFault(address, access, entry.perms())
        allowed = (
            self.pkru.allows_write(entry.pkey)
            if write
            else self.pkru.allows_read(entry.pkey)
        )
        if not allowed:
            self.faults += 1
            raise self._violation(address, entry.pkey, access)
