"""The simulated byte-addressable address space with MPK enforcement.

Every load/store issued by simulated application code goes through
:meth:`AddressSpace.load` / :meth:`AddressSpace.store`, which perform the
checks real hardware performs on every access:

1. page present? → :class:`~repro.errors.SegmentationFault`
2. page permissions allow the access? → :class:`~repro.errors.PermissionFault`
3. PKRU allows the page's protection key? →
   :class:`~repro.errors.ProtectionKeyViolation`

This is the load-bearing substitution of the reproduction (DESIGN.md §2):
moving enforcement from MMU silicon into the load/store path preserves the
*protocol* — a compromised domain's wild write faults at the domain boundary
instead of corrupting its neighbour.

``raw_load``/``raw_store`` bypass all checks; they model *kernel* access and
are reserved for trusted-runtime internals (snapshotting, page scrubbing).
Fault injectors must use the checked path: containment of an attacker is
exactly what experiments E4 and the integration tests assert.
"""

from __future__ import annotations

from typing import Literal

from ..errors import (
    PermissionFault,
    ProtectionKeyViolation,
    SdradError,
    SegmentationFault,
)
from .layout import DEFAULT_SPACE_SIZE, PAGE_SIZE, pages_spanned
from .mpk import PkeyAllocator, PkruRegister
from .pagetable import PageTable

#: Access-check fidelity (ablation hook D1 in DESIGN.md):
#: ``strict``  — walk every page an access spans (hardware-faithful);
#: ``first``   — check only the first page (TLB-hit fast path approximation);
#: ``off``     — no checks (models a build without MPK, the E1 baseline).
CheckMode = Literal["strict", "first", "off"]


class AddressSpace:
    """A simulated process address space: bytes + page table + PKRU."""

    def __init__(
        self,
        size: int = DEFAULT_SPACE_SIZE,
        check_mode: CheckMode = "strict",
    ) -> None:
        if check_mode not in ("strict", "first", "off"):
            raise SdradError(f"unknown check mode {check_mode!r}")
        self.page_table = PageTable(size)
        self.pkru = PkruRegister()
        self.pkeys = PkeyAllocator()
        self.check_mode: CheckMode = check_mode
        self._memory = bytearray(size)
        #: Access counters, used by cost accounting and tests.
        self.loads = 0
        self.stores = 0
        self.faults = 0

    @property
    def size(self) -> int:
        return self.page_table.space_size

    # ------------------------------------------------------------------
    # Checked access (application path)
    # ------------------------------------------------------------------

    def load(self, address: int, length: int) -> bytes:
        """Checked read of ``length`` bytes at ``address``."""
        self._check_access(address, length, write=False)
        self.loads += 1
        return bytes(self._memory[address : address + length])

    def store(self, address: int, data: bytes) -> None:
        """Checked write of ``data`` at ``address``."""
        self._check_access(address, len(data), write=True)
        self.stores += 1
        self._memory[address : address + len(data)] = data

    def load_u8(self, address: int) -> int:
        return self.load(address, 1)[0]

    def store_u8(self, address: int, value: int) -> None:
        self.store(address, bytes([value & 0xFF]))

    def load_u32(self, address: int) -> int:
        return int.from_bytes(self.load(address, 4), "little")

    def store_u32(self, address: int, value: int) -> None:
        self.store(address, (value & 0xFFFFFFFF).to_bytes(4, "little"))

    def load_u64(self, address: int) -> int:
        return int.from_bytes(self.load(address, 8), "little")

    def store_u64(self, address: int, value: int) -> None:
        self.store(address, (value & 0xFFFFFFFFFFFFFFFF).to_bytes(8, "little"))

    # ------------------------------------------------------------------
    # Raw access (trusted runtime / kernel path)
    # ------------------------------------------------------------------

    def raw_load(self, address: int, length: int) -> bytes:
        self._check_bounds(address, length)
        return bytes(self._memory[address : address + length])

    def raw_store(self, address: int, data: bytes) -> None:
        self._check_bounds(address, len(data))
        self._memory[address : address + len(data)] = data

    def raw_fill(self, address: int, length: int, value: int = 0) -> None:
        self._check_bounds(address, length)
        self._memory[address : address + length] = bytes([value & 0xFF]) * length

    # ------------------------------------------------------------------
    # Checks
    # ------------------------------------------------------------------

    def _check_bounds(self, address: int, length: int) -> None:
        if length < 0:
            raise SdradError(f"negative access length {length}")
        if address < 0 or address + length > self.size:
            raise SegmentationFault(address)

    def _check_access(self, address: int, length: int, *, write: bool) -> None:
        self._check_bounds(address, length)
        if length == 0:
            return
        if self.check_mode == "off":
            return
        if self.check_mode == "first":
            self._check_page(address, write=write)
            return
        for index in pages_spanned(address, length):
            self._check_page(index * PAGE_SIZE, write=write)

    def _check_page(self, address: int, *, write: bool) -> None:
        entry = self.page_table.entry_for(address)
        access = "store" if write else "load"
        if not entry.present:
            self.faults += 1
            raise SegmentationFault(address, access=access)
        if write and not entry.writable:
            self.faults += 1
            raise PermissionFault(address, access, entry.perms())
        if not write and not entry.readable:
            self.faults += 1
            raise PermissionFault(address, access, entry.perms())
        allowed = (
            self.pkru.allows_write(entry.pkey)
            if write
            else self.pkru.allows_read(entry.pkey)
        )
        if not allowed:
            self.faults += 1
            raise ProtectionKeyViolation(address, entry.pkey, access=access)
