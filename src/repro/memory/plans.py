"""Compiled access plans: specialized accessors for hot page runs.

Per-access enforcement (``AddressSpace.load``/``store``) pays a Python
frame, a TLB probe, a bounds check and an ``int.from_bytes`` for every
simulated access. The hot loops of the reproduction — allocator boundary
tags, kvstore item I/O, the in-domain parsers — touch the *same page run*
millions of times under the *same PKRU*, so all of that work is loop
invariant. An :class:`AccessPlan` hoists it: the plan factory validates a
contiguous run of pages once (same verdict the per-access path would
compute), then generates accessor closures that fuse the residual validity
test, the bounds check and the ``struct.Struct`` decode into one Python
frame over a single :class:`memoryview` of the run.

Hardware analogy (DESIGN.md §9): a plan is a *batched TLB verdict*. The
per-access path asks "may the current PKRU touch this page?" once per
access; a plan asks it once per (PKRU, page run) and then rides the cached
answer — which is only sound if the answer is shot down on exactly the
events that could change it:

====================  =====================================================
event                 effect on plans
====================  =====================================================
``WRPKRU``            checked plans are keyed by PKRU value and capture the
                      per-PKRU TLB verdict dict; a switch makes foreign
                      plans *dormant* (identity test fails, accessors fall
                      back to the checked path) and reactivates them when
                      the same PKRU value returns — mirroring the per-PKRU
                      TLB verdict caches.
map/mprotect/retag    ``PageTable.on_range_update`` →
                      :meth:`AccessPlanCache.shootdown` (every plan dies).
``pkey_free``         TLB full flush → shootdown.
``tlb_flush``         shootdown.
domain destroy        unmaps the domain's regions → range update →
                      shootdown; a stale plan can never serve a freed
                      domain's heap.
====================  =====================================================

A dead or dormant plan never raises by itself: every accessor falls back
to the ordinary checked (or raw) path, which re-checks everything and
raises the byte-identical fault the plan-off build would raise. Plans are
therefore a pure fast path — ``AddressSpace(access_plans=False)`` is the
ablation proving results are bit-identical either way.

Two plan flavours exist, matching the two access paths:

* **checked plans** (:meth:`AccessPlanCache.checked_plan`) — the
  application path. Built only after a non-faulting probe of every page in
  the run under the *current* PKRU; accessors keep the ``loads``/``stores``
  counters exact and count every fast-path access as a TLB hit — the plan
  *is* a cached verdict, so telemetry sees it as one.
* **kernel plans** (:meth:`AccessPlanCache.kernel_plan`) — the trusted
  runtime path (allocator metadata, slab items, stack canaries, FFI
  marshalling), bounds-checked like ``raw_load``/``raw_store`` and exempt
  from PKRU just like them.
"""

from __future__ import annotations

import struct
from typing import TYPE_CHECKING, Iterable, Optional

from ..errors import SdradError
from .layout import PAGE_SIZE, pages_spanned

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from .address_space import AddressSpace

_U32 = struct.Struct("<I")
_U64 = struct.Struct("<Q")

#: Cached bulk-decode structs for :meth:`AccessPlan.load_u32_run`
#: (one precompiled ``"<NI"`` per element count).
_RUN_STRUCTS: dict[int, struct.Struct] = {}


def _run_struct(count: int) -> struct.Struct:
    st = _RUN_STRUCTS.get(count)
    if st is None:
        if len(_RUN_STRUCTS) >= 128:
            _RUN_STRUCTS.clear()
        st = struct.Struct("<%dI" % count)
        _RUN_STRUCTS[count] = st
    return st


class AccessPlan:
    """One compiled accessor bundle over a contiguous run of pages.

    The accessor attributes (``load``, ``store``, ``view``, ...) are
    generated closures, not methods: each captures the run's base, length,
    backing views and validity cell so a call is a single Python frame.
    ``cell`` is a one-element mutable list — the shootdown switch: the
    cache flips ``cell[0]`` to ``False`` and every accessor of this plan
    permanently falls back to the per-access checked/raw path.
    """

    __slots__ = (
        "base",
        "length",
        "mode",
        "checked",
        "pkru",
        "cell",
        "is_valid",
        "load",
        "view",
        "store",
        "load_u8",
        "load_u32",
        "load_u64",
        "store_u32",
        "store_u64",
        "unpack_from",
        "pack_into",
        "load_u32_run",
        "load_many",
        "store_many",
    )

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        kind = "checked" if self.checked else "kernel"
        state = "live" if self.cell[0] else "dead"
        return (
            f"<AccessPlan {kind}/{self.mode} "
            f"[{self.base:#x}+{self.length:#x}] {state}>"
        )


def _compile_checked(
    space: "AddressSpace", base: int, length: int, mode: str, pkru_value: int
) -> AccessPlan:
    """Generate a checked (application-path) plan under the current PKRU.

    The closures guard every access with ``cell[0]`` (shootdown switch)
    and ``space._tlb is tlb`` (the per-PKRU verdict-cache identity — true
    exactly while the PKRU the plan was compiled under is active), plus a
    wraparound-safe bounds test (``0 <= o <= o + n <= length`` rejects
    negative offsets *and* negative lengths, which Python slicing would
    otherwise absorb silently). Anything else falls back to the checked
    per-access path, preserving fault semantics bit for bit.
    """
    plan = AccessPlan()
    plan.base = base
    plan.length = length
    plan.mode = mode
    plan.checked = True
    plan.pkru = pkru_value
    cell = [True]
    plan.cell = cell
    tlb = space._tlb
    run = space._view[base : base + length]
    ro_run = run.toreadonly()
    can_read = "r" in mode
    can_write = "w" in mode

    space_load = space.load
    space_store = space.store
    space_load_view = space.load_view
    space_load_u32 = space.load_u32
    space_load_u64 = space.load_u64
    space_store_u32 = space.store_u32
    space_store_u64 = space.store_u64
    u32_unpack = _U32.unpack_from
    u64_unpack = _U64.unpack_from
    u32_pack = _U32.pack_into
    u64_pack = _U64.pack_into

    def is_valid() -> bool:
        return cell[0] and space._tlb is tlb

    plan.is_valid = is_valid

    if can_read:

        def load(addr: int, n: int) -> bytes:
            o = addr - base
            if cell[0] and space._tlb is tlb and 0 <= o <= o + n <= length:
                space.loads += 1
                space.tlb_hits += 1
                return bytes(ro_run[o : o + n])
            return space_load(addr, n)

        def view(addr: int, n: int) -> memoryview:
            o = addr - base
            if cell[0] and space._tlb is tlb and 0 <= o <= o + n <= length:
                space.loads += 1
                space.tlb_hits += 1
                return ro_run[o : o + n]
            return space_load_view(addr, n)

        def load_u8(addr: int) -> int:
            o = addr - base
            if cell[0] and space._tlb is tlb and 0 <= o < length:
                space.loads += 1
                space.tlb_hits += 1
                return ro_run[o]
            return space_load(addr, 1)[0]

        def load_u32(addr: int) -> int:
            o = addr - base
            if cell[0] and space._tlb is tlb and 0 <= o <= length - 4:
                space.loads += 1
                space.tlb_hits += 1
                return u32_unpack(ro_run, o)[0]
            return space_load_u32(addr)

        def load_u64(addr: int) -> int:
            o = addr - base
            if cell[0] and space._tlb is tlb and 0 <= o <= length - 8:
                space.loads += 1
                space.tlb_hits += 1
                return u64_unpack(ro_run, o)[0]
            return space_load_u64(addr)

        def unpack_from(st: struct.Struct, addr: int) -> tuple:
            o = addr - base
            if cell[0] and space._tlb is tlb and 0 <= o <= length - st.size:
                space.loads += 1
                space.tlb_hits += 1
                return st.unpack_from(ro_run, o)
            return st.unpack(space_load(addr, st.size))

        def load_u32_run(addr: int, count: int) -> tuple:
            o = addr - base
            if (
                cell[0]
                and space._tlb is tlb
                and count > 0
                and 0 <= o <= length - 4 * count
            ):
                space.loads += count
                space.tlb_hits += count
                return _run_struct(count).unpack_from(ro_run, o)
            return tuple(space_load_u32(addr + 4 * i) for i in range(count))

        def load_many(requests: Iterable[tuple[int, int]]) -> list[bytes]:
            if not (cell[0] and space._tlb is tlb):
                return space.load_many(requests)
            out: list[bytes] = []
            fast = 0
            for addr, n in requests:
                o = addr - base
                if 0 <= o <= o + n <= length:
                    out.append(bytes(ro_run[o : o + n]))
                    fast += 1
                else:
                    out.append(space_load(addr, n))
            space.loads += fast
            space.tlb_hits += fast
            return out

        plan.load = load
        plan.view = view
        plan.load_u8 = load_u8
        plan.load_u32 = load_u32
        plan.load_u64 = load_u64
        plan.unpack_from = unpack_from
        plan.load_u32_run = load_u32_run
        plan.load_many = load_many
    else:
        # Read accessors on a write-only plan stay on the checked path so
        # the plan never grants rights its probe did not validate.
        plan.load = space_load
        plan.view = space_load_view
        plan.load_u8 = space.load_u8
        plan.load_u32 = space_load_u32
        plan.load_u64 = space_load_u64
        plan.unpack_from = lambda st, addr: st.unpack(space_load(addr, st.size))
        plan.load_u32_run = lambda addr, count: tuple(
            space_load_u32(addr + 4 * i) for i in range(count)
        )
        plan.load_many = space.load_many

    if can_write:

        def store(addr: int, data: bytes) -> None:
            n = len(data)
            o = addr - base
            if cell[0] and space._tlb is tlb and 0 <= o <= o + n <= length:
                space.stores += 1
                space.tlb_hits += 1
                run[o : o + n] = data
                return
            space_store(addr, data)

        def store_u32(addr: int, value: int) -> None:
            o = addr - base
            if cell[0] and space._tlb is tlb and 0 <= o <= length - 4:
                space.stores += 1
                space.tlb_hits += 1
                u32_pack(run, o, value & 0xFFFFFFFF)
                return
            space_store_u32(addr, value)

        def store_u64(addr: int, value: int) -> None:
            o = addr - base
            if cell[0] and space._tlb is tlb and 0 <= o <= length - 8:
                space.stores += 1
                space.tlb_hits += 1
                u64_pack(run, o, value & 0xFFFFFFFFFFFFFFFF)
                return
            space_store_u64(addr, value)

        def pack_into(st: struct.Struct, addr: int, *values: object) -> None:
            o = addr - base
            if cell[0] and space._tlb is tlb and 0 <= o <= length - st.size:
                space.stores += 1
                space.tlb_hits += 1
                st.pack_into(run, o, *values)
                return
            space_store(addr, st.pack(*values))

        def store_many(items: Iterable[tuple[int, bytes]]) -> None:
            if not (cell[0] and space._tlb is tlb):
                space.store_many(items)
                return
            fast = 0
            for addr, data in items:
                n = len(data)
                o = addr - base
                if 0 <= o <= o + n <= length:
                    run[o : o + n] = data
                    fast += 1
                else:
                    space_store(addr, data)
            space.stores += fast
            space.tlb_hits += fast

        plan.store = store
        plan.store_u32 = store_u32
        plan.store_u64 = store_u64
        plan.pack_into = pack_into
        plan.store_many = store_many
    else:
        plan.store = space_store
        plan.store_u32 = space_store_u32
        plan.store_u64 = space_store_u64
        plan.pack_into = lambda st, addr, *values: space_store(
            addr, st.pack(*values)
        )
        plan.store_many = space.store_many

    return plan


def _compile_kernel(space: "AddressSpace", base: int, length: int) -> AccessPlan:
    """Generate a kernel (trusted-runtime) plan over ``[base, base+length)``.

    Mirrors ``raw_load``/``raw_store``: bounds-checked, PKRU-exempt, and
    exempt from the ``loads``/``stores`` counters exactly like the raw
    path it replaces. Only the shootdown cell guards validity — kernel
    access does not depend on the PKRU, but a remapped or recycled run
    must still drop its compiled window.
    """
    plan = AccessPlan()
    plan.base = base
    plan.length = length
    plan.mode = "rw"
    plan.checked = False
    plan.pkru = None
    cell = [True]
    plan.cell = cell
    run = space._view[base : base + length]
    ro_run = run.toreadonly()

    raw_load = space.raw_load
    raw_view = space.raw_view
    raw_store = space.raw_store
    u32_unpack = _U32.unpack_from
    u64_unpack = _U64.unpack_from
    u32_pack = _U32.pack_into
    u64_pack = _U64.pack_into

    def is_valid() -> bool:
        return cell[0]

    def load(addr: int, n: int) -> bytes:
        o = addr - base
        if cell[0] and 0 <= o <= o + n <= length:
            return bytes(ro_run[o : o + n])
        return raw_load(addr, n)

    def view(addr: int, n: int) -> memoryview:
        o = addr - base
        if cell[0] and 0 <= o <= o + n <= length:
            return ro_run[o : o + n]
        return raw_view(addr, n)

    def load_u8(addr: int) -> int:
        o = addr - base
        if cell[0] and 0 <= o < length:
            return ro_run[o]
        return raw_load(addr, 1)[0]

    def load_u32(addr: int) -> int:
        o = addr - base
        if cell[0] and 0 <= o <= length - 4:
            return u32_unpack(ro_run, o)[0]
        return _U32.unpack(raw_load(addr, 4))[0]

    def load_u64(addr: int) -> int:
        o = addr - base
        if cell[0] and 0 <= o <= length - 8:
            return u64_unpack(ro_run, o)[0]
        return _U64.unpack(raw_load(addr, 8))[0]

    def unpack_from(st: struct.Struct, addr: int) -> tuple:
        o = addr - base
        if cell[0] and 0 <= o <= length - st.size:
            return st.unpack_from(ro_run, o)
        return st.unpack(raw_load(addr, st.size))

    def load_u32_run(addr: int, count: int) -> tuple:
        o = addr - base
        if cell[0] and count > 0 and 0 <= o <= length - 4 * count:
            return _run_struct(count).unpack_from(ro_run, o)
        if count <= 0:
            return ()
        return _run_struct(count).unpack(raw_load(addr, 4 * count))

    def load_many(requests: Iterable[tuple[int, int]]) -> list[bytes]:
        if not cell[0]:
            return space.raw_load_many(requests)
        out: list[bytes] = []
        for addr, n in requests:
            o = addr - base
            if 0 <= o <= o + n <= length:
                out.append(bytes(ro_run[o : o + n]))
            else:
                out.append(raw_load(addr, n))
        return out

    def store(addr: int, data: bytes) -> None:
        n = len(data)
        o = addr - base
        if cell[0] and 0 <= o <= o + n <= length:
            run[o : o + n] = data
            return
        raw_store(addr, data)

    def store_u32(addr: int, value: int) -> None:
        o = addr - base
        if cell[0] and 0 <= o <= length - 4:
            u32_pack(run, o, value & 0xFFFFFFFF)
            return
        raw_store(addr, (value & 0xFFFFFFFF).to_bytes(4, "little"))

    def store_u64(addr: int, value: int) -> None:
        o = addr - base
        if cell[0] and 0 <= o <= length - 8:
            u64_pack(run, o, value & 0xFFFFFFFFFFFFFFFF)
            return
        raw_store(addr, (value & 0xFFFFFFFFFFFFFFFF).to_bytes(8, "little"))

    def pack_into(st: struct.Struct, addr: int, *values: object) -> None:
        o = addr - base
        if cell[0] and 0 <= o <= length - st.size:
            st.pack_into(run, o, *values)
            return
        raw_store(addr, st.pack(*values))

    def store_many(items: Iterable[tuple[int, bytes]]) -> None:
        for addr, data in items:
            n = len(data)
            o = addr - base
            if cell[0] and 0 <= o <= o + n <= length:
                run[o : o + n] = data
            else:
                raw_store(addr, data)

    plan.is_valid = is_valid
    plan.load = load
    plan.view = view
    plan.load_u8 = load_u8
    plan.load_u32 = load_u32
    plan.load_u64 = load_u64
    plan.unpack_from = unpack_from
    plan.load_u32_run = load_u32_run
    plan.load_many = load_many
    plan.store = store
    plan.store_u32 = store_u32
    plan.store_u64 = store_u64
    plan.pack_into = pack_into
    plan.store_many = store_many
    return plan


class AccessPlanCache:
    """Per-space registry of compiled plans plus their shootdown switch.

    Checked plans are cached per ``(PKRU value, base, length, mode)`` —
    the same segregation the software TLB applies to verdicts — and kernel
    plans per ``(base, length)``. :meth:`shootdown` (wired into the PR1 TLB
    shootdown hooks by :class:`~repro.memory.address_space.AddressSpace`)
    kills every plan ever handed out: a plan is only ever live while it is
    in the cache, so consumers that cached a plan object re-request it when
    ``plan.cell[0]`` goes false.
    """

    #: Backstop against pathological run churn: past this many cached
    #: plans, everything is shot down rather than evicted piecemeal (an
    #: evicted-but-live plan could otherwise outlive its invalidation).
    _MAX_PLANS = 512

    __slots__ = ("_space", "_checked", "_kernel", "built", "hits", "shootdowns")

    def __init__(self, space: "AddressSpace") -> None:
        self._space = space
        self._checked: dict[tuple[int, int, int, str], AccessPlan] = {}
        self._kernel: dict[tuple[int, int], AccessPlan] = {}
        self.built = 0
        self.hits = 0
        self.shootdowns = 0

    # ------------------------------------------------------------------
    # Plan acquisition
    # ------------------------------------------------------------------

    def checked_plan(
        self, base: int, length: int, mode: str = "r"
    ) -> Optional[AccessPlan]:
        """Application-path plan for the run under the *current* PKRU.

        Returns ``None`` when any page of the run is not accessible for
        ``mode`` right now: the caller must stay on the per-access checked
        path, which raises the faithful fault (the probe itself never
        faults and never touches the fault counters).
        """
        if mode not in ("r", "w", "rw"):
            raise SdradError(f"unknown plan mode {mode!r}")
        space = self._space
        key = (space.pkru.value, base, length, mode)
        plan = self._checked.get(key)
        if plan is not None and plan.cell[0]:
            self.hits += 1
            return plan
        if not self._probe(base, length, mode):
            return None
        if len(self._checked) >= self._MAX_PLANS:
            self.shootdown()
        plan = _compile_checked(space, base, length, mode, key[0])
        self._checked[key] = plan
        self.built += 1
        return plan

    def kernel_plan(self, base: int, length: int) -> Optional[AccessPlan]:
        """Trusted-runtime plan (the ``raw_*`` path, compiled)."""
        space = self._space
        key = (base, length)
        plan = self._kernel.get(key)
        if plan is not None and plan.cell[0]:
            self.hits += 1
            return plan
        if base < 0 or length <= 0 or base + length > space.size:
            return None
        if len(self._kernel) >= self._MAX_PLANS:
            self.shootdown()
        plan = _compile_kernel(space, base, length)
        self._kernel[key] = plan
        self.built += 1
        return plan

    # ------------------------------------------------------------------
    # Validation + invalidation
    # ------------------------------------------------------------------

    def _probe(self, base: int, length: int, mode: str) -> bool:
        """Non-faulting walk of every page in the run under the current
        PKRU — the same verdict ``_check_access`` would compute, minus the
        raising and the fault counting (a failed probe means "no plan",
        not "a fault happened")."""
        space = self._space
        if base < 0 or length <= 0 or base + length > space.size:
            return False
        page_table = space.page_table
        pkru = space.pkru
        need_read = "r" in mode
        need_write = "w" in mode
        for index in pages_spanned(base, length):
            entry = page_table.entry_for(index * PAGE_SIZE)
            if not entry.present:
                return False
            if need_read and not (
                entry.readable and pkru.allows_read(entry.pkey)
            ):
                return False
            if need_write and not (
                entry.writable and pkru.allows_write(entry.pkey)
            ):
                return False
        return True

    def shootdown(self) -> None:
        """Kill every plan (the full-shootdown analogue).

        Wired into ``tlb_flush``, page-table range updates and
        ``pkey_free``; conservative by design — invalidating per page run
        would save rebuilds but a missed edge would serve stale rights.
        """
        for plan in self._checked.values():
            plan.cell[0] = False
        for plan in self._kernel.values():
            plan.cell[0] = False
        self._checked.clear()
        self._kernel.clear()
        self.shootdowns += 1
