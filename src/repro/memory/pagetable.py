"""Per-page metadata: mapping state, permissions, protection-key tags.

This is the simulated MMU's view of memory. It deliberately stores *only*
what the isolation protocol needs — present bit, read/write permissions and
the protection key — because that is the entire interface SDRaD uses
(``mmap``/``mprotect``/``pkey_mprotect``).
"""

from __future__ import annotations

from dataclasses import dataclass

from ..errors import SdradError, SegmentationFault
from .layout import PAGE_SIZE, is_page_aligned, page_index, pages_spanned
from .mpk import NUM_PKEYS, PKEY_DEFAULT


@dataclass
class PageEntry:
    """One page-table entry."""

    present: bool = False
    readable: bool = False
    writable: bool = False
    pkey: int = PKEY_DEFAULT

    def perms(self) -> str:
        if not self.present:
            return "---"
        r = "r" if self.readable else "-"
        w = "w" if self.writable else "-"
        return f"{r}{w}-"


class PageTable:
    """Page table over a fixed-size simulated address space."""

    # The page table *is* the simulated tag substrate: MPK's key count is
    # its documented default and every other backend overrides num_keys.
    def __init__(self, space_size: int, num_keys: "int | None" = NUM_PKEYS) -> None:  # sdradlint: ignore[R6]
        if space_size <= 0 or not is_page_aligned(space_size):
            raise SdradError(
                f"address-space size must be a positive page multiple, got {space_size}"
            )
        #: Valid tag ceiling for :meth:`tag_range` — MPK's 16 hardware keys
        #: by default; ``None`` for substrates with full-width tags (CHERI
        #: object types, SFI region ids).
        self.num_keys = num_keys
        self.space_size = space_size
        self.num_pages = space_size // PAGE_SIZE
        self._entries = [PageEntry() for _ in range(self.num_pages)]
        #: Hook called with ``(first_page, last_page)`` after any mapping,
        #: permission, or key change — the simulated MMU's TLB shootdown.
        self.on_range_update = None

    def _notify_range(self, address: int, length: int) -> None:
        if self.on_range_update is not None:
            span = pages_spanned(address, length)
            self.on_range_update(span.start, span.stop - 1)

    # ------------------------------------------------------------------
    # Mapping / protection syscall analogues
    # ------------------------------------------------------------------

    def map_range(
        self,
        address: int,
        length: int,
        *,
        readable: bool = True,
        writable: bool = True,
        pkey: int = PKEY_DEFAULT,  # sdradlint: ignore[R6] tag 0 is every backend's root tag
    ) -> None:
        """``mmap`` analogue: mark pages present with given perms and key."""
        self._check_range(address, length)
        # Shootdown runs even on a partial failure: some pages may already
        # have been mutated when the error is raised.
        try:
            for index in pages_spanned(address, length):
                entry = self._entries[index]
                if entry.present:
                    raise SdradError(
                        f"page {index} already mapped (double map at {address:#x})"
                    )
                entry.present = True
                entry.readable = readable
                entry.writable = writable
                entry.pkey = pkey
        finally:
            self._notify_range(address, length)

    def unmap_range(self, address: int, length: int) -> None:
        """``munmap`` analogue."""
        self._check_range(address, length)
        try:
            for index in pages_spanned(address, length):
                entry = self._entries[index]
                if not entry.present:
                    raise SdradError(f"page {index} not mapped (double unmap)")
                self._entries[index] = PageEntry()
        finally:
            self._notify_range(address, length)

    def protect_range(
        self, address: int, length: int, *, readable: bool, writable: bool
    ) -> None:
        """``mprotect`` analogue."""
        self._check_range(address, length)
        try:
            for index in pages_spanned(address, length):
                entry = self._entries[index]
                if not entry.present:
                    raise SegmentationFault(index * PAGE_SIZE, access="mprotect")
                entry.readable = readable
                entry.writable = writable
        finally:
            self._notify_range(address, length)

    def tag_range(self, address: int, length: int, pkey: int) -> None:
        """``pkey_mprotect`` analogue: retag pages with a protection key."""
        if pkey < 0 or (self.num_keys is not None and pkey >= self.num_keys):
            raise SdradError(f"protection key out of range: {pkey}")
        self._check_range(address, length)
        try:
            for index in pages_spanned(address, length):
                entry = self._entries[index]
                if not entry.present:
                    raise SegmentationFault(index * PAGE_SIZE, access="pkey_mprotect")
                entry.pkey = pkey
        finally:
            self._notify_range(address, length)

    # ------------------------------------------------------------------
    # Lookup
    # ------------------------------------------------------------------

    def entry_for(self, address: int) -> PageEntry:
        """Entry covering ``address``; raises for out-of-space addresses."""
        if not 0 <= address < self.space_size:
            raise SegmentationFault(address)
        return self._entries[page_index(address)]

    def pages_tagged(self, pkey: int) -> list[int]:
        """Page indices currently tagged with ``pkey``."""
        return [
            i for i, e in enumerate(self._entries) if e.present and e.pkey == pkey
        ]

    def mapped_bytes(self) -> int:
        return PAGE_SIZE * sum(1 for e in self._entries if e.present)

    def _check_range(self, address: int, length: int) -> None:
        if length <= 0:
            raise SdradError(f"range length must be positive, got {length}")
        if not is_page_aligned(address) or not is_page_aligned(length):
            raise SdradError(
                f"range [{address:#x}, +{length:#x}) is not page aligned"
            )
        if address < 0 or address + length > self.space_size:
            raise SegmentationFault(address, access="map")
