"""Simulated call stacks with stack canaries.

SDRaD's second detection mechanism (after MPK violations) is the compiler's
stack protector: a random *canary* word placed between a frame's local
buffers and its saved return address, verified in the function epilogue. A
contiguous overflow of a stack buffer must cross the canary to reach the
return address, so epilogue verification catches it before control flow is
hijacked — and, in SDRaD, triggers rewind instead of ``abort()``.

Layout of one frame on the downward-growing simulated stack::

    higher addresses
    +-----------------------+
    | saved return address  |  8 bytes   (frame.return_slot)
    +-----------------------+
    | canary                |  8 bytes   (frame.canary_slot)
    +-----------------------+
    | local buffer N        |
    | ...                   |  allocated downward by frame.alloca()
    | local buffer 0        |
    +-----------------------+   <- stack pointer after allocations
    lower addresses

A buffer overflow writes *upward* (toward higher addresses), so overrunning
any local buffer first smashes the canary, exactly as on x86-64.
"""

from __future__ import annotations

import random
import struct

from ..errors import SdradError, StackCanaryViolation
from .address_space import AddressSpace

WORD = 8

#: Canary word + saved return address, the prologue/epilogue pair.
_FRAME_STRUCT = struct.Struct("<QQ")


class StackFrame:
    """One activation record; created by :meth:`CallStack.push_frame`."""

    __slots__ = (
        "stack", "name", "return_slot", "canary_slot", "sp",
        "_expected_canary", "popped",
    )

    def __init__(
        self, stack: "CallStack", name: str, return_slot: int, canary_slot: int
    ) -> None:
        self.stack = stack
        self.name = name
        self.return_slot = return_slot
        self.canary_slot = canary_slot
        self.sp = canary_slot  # next local goes below the canary
        self._expected_canary: int = 0
        self.popped = False

    def alloca(self, nbytes: int) -> int:
        """Allocate a local buffer in this frame; returns its address.

        The buffer occupies ``[addr, addr + nbytes)`` with ``addr + nbytes``
        adjacent to the previously allocated local (or the canary for the
        first one), so overflow reaches the canary after crossing any
        intervening locals.
        """
        if self.popped:
            raise SdradError(f"alloca on popped frame '{self.name}'")
        if nbytes <= 0:
            raise SdradError(f"alloca size must be positive, got {nbytes}")
        aligned = (nbytes + WORD - 1) // WORD * WORD
        addr = self.sp - aligned
        if addr < self.stack.base:
            raise SdradError(f"stack overflow in frame '{self.name}'")
        self.sp = addr
        return addr

    def write_buffer(self, addr: int, data: bytes) -> None:
        """Checked store into a local buffer (the application write path).

        Note that, like a C ``memcpy``, this enforces nothing about buffer
        bounds — only page-level permissions apply. Writing more bytes than
        were ``alloca``'d is precisely how tests model a stack smash: a
        compiled plan covers the whole stack region, so an overflow inside
        it corrupts the canary exactly like the per-access path would.
        """
        plan = self.stack._checked_plan()
        if plan is not None:
            plan.store(addr, data)
        else:
            self.stack.space.store(addr, data)

    def read_buffer(self, addr: int, nbytes: int) -> bytes:
        plan = self.stack._checked_plan()
        if plan is not None:
            return plan.load(addr, nbytes)
        return self.stack.space.load(addr, nbytes)


class CallStack:
    """A per-domain simulated stack with canary-protected frames."""

    def __init__(
        self,
        space: AddressSpace,
        base: int,
        size: int,
        rng: random.Random | None = None,
    ) -> None:
        if size < 4 * WORD:
            raise SdradError(f"stack too small: {size} bytes")
        self.space = space
        self.base = base
        self.size = size
        self.top = base + size
        self._sp = self.top
        self._frames: list[StackFrame] = []
        self._rng = rng or random.Random(0x57AC)
        #: Set by a lazy discard: the stack bytes are stale and are
        #: zero-filled on the next frame push instead of at rewind time.
        self.scrub_pending = False
        # Compiled windows over the stack region, rebuilt after shootdowns:
        # a kernel plan for prologue/epilogue canary words, a checked plan
        # (current PKRU) for application buffer I/O.
        self._plan = None
        self._rw_plan = None

    def _kernel_plan(self):
        plan = self._plan
        if plan is not None and plan.cell[0]:
            return plan
        cache = self.space.plans
        if cache is None:
            return None
        self._plan = cache.kernel_plan(self.base, self.size)
        return self._plan

    def _checked_plan(self):
        plan = self._rw_plan
        if plan is not None and plan.is_valid():
            return plan
        cache = self.space.plans
        if cache is None:
            return None
        self._rw_plan = cache.checked_plan(self.base, self.size, "rw")
        return self._rw_plan

    @property
    def depth(self) -> int:
        return len(self._frames)

    @property
    def used_bytes(self) -> int:
        return self.top - (self._frames[-1].sp if self._frames else self._sp)

    def push_frame(self, name: str, return_address: int = 0) -> StackFrame:
        """Function prologue: reserve return slot + canary, write canary."""
        parent_sp = self._frames[-1].sp if self._frames else self._sp
        return_slot = parent_sp - WORD
        canary_slot = return_slot - WORD
        if canary_slot < self.base:
            raise SdradError(f"stack overflow pushing frame '{name}'")
        if self.scrub_pending:
            # Deferred discard-time scrub: paid on first reuse, not rewind.
            self.space.raw_fill(self.base, self.size, 0)
            self.scrub_pending = False
        frame = StackFrame(self, name, return_slot, canary_slot)
        # Real stack protectors use a per-process random canary with a NUL
        # byte to stop string overflows; we keep the NUL-byte convention.
        canary = (self._rng.getrandbits(56) << 8) & 0xFFFFFFFFFFFFFF00
        frame._expected_canary = canary
        # The canary slot sits directly below the return slot, so both words
        # go down in one store (same bytes, same layout, half the calls).
        plan = self._kernel_plan()
        if plan is not None:
            plan.pack_into(_FRAME_STRUCT, canary_slot, canary, return_address)
        else:
            self.space.raw_store(
                canary_slot,
                canary.to_bytes(WORD, "little")
                + return_address.to_bytes(WORD, "little"),
            )
        self._frames.append(frame)
        return frame

    def pop_frame(self, frame: StackFrame) -> int:
        """Function epilogue: verify canary, then unwind.

        Returns the saved return address. Raises
        :class:`StackCanaryViolation` if the canary was overwritten —
        the ``__stack_chk_fail`` moment.
        """
        if not self._frames or self._frames[-1] is not frame:
            raise SdradError(
                f"pop of frame '{frame.name}' that is not the innermost frame"
            )
        plan = self._kernel_plan()
        if plan is not None:
            found, return_address = plan.unpack_from(
                _FRAME_STRUCT, frame.canary_slot
            )
        else:
            words = self.space.raw_load(frame.canary_slot, 2 * WORD)
            found = int.from_bytes(words[:WORD], "little")
            return_address = int.from_bytes(words[WORD:], "little")
        self._frames.pop()
        frame.popped = True
        if found != frame._expected_canary:
            raise StackCanaryViolation(frame.name, frame._expected_canary, found)
        return return_address

    def unwind_all(self) -> None:
        """Abandon every frame without canary checks (rewind path)."""
        for frame in self._frames:
            frame.popped = True
        self._frames.clear()
        self._sp = self.top

    def check_canaries(self) -> None:
        """Verify every live frame's canary without unwinding."""
        for frame in self._frames:
            found = int.from_bytes(
                self.space.raw_load(frame.canary_slot, WORD), "little"
            )
            if found != frame._expected_canary:
                raise StackCanaryViolation(frame.name, frame._expected_canary, found)
