"""Region snapshots of the simulated address space.

SDRaD itself does *not* snapshot domain memory — discard-and-reinit is the
whole point — but the reproduction needs snapshots in two places:

* the **baseline restart strategies** (process/container restart) model
  state reload from a persisted copy, and
* **tests** assert that a rewind leaves non-domain memory byte-identical,
  which requires a before/after comparison.
"""

from __future__ import annotations

import zlib
from dataclasses import dataclass

from ..errors import SdradError
from .address_space import AddressSpace


@dataclass(frozen=True)
class RegionSnapshot:
    """An immutable copy of ``[base, base + len(data))``."""

    base: int
    data: bytes

    @property
    def size(self) -> int:
        return len(self.data)

    def checksum(self) -> int:
        """CRC32 of the captured bytes (cheap equality witness for tests)."""
        return zlib.crc32(self.data)


def capture(space: AddressSpace, base: int, size: int) -> RegionSnapshot:
    """Copy a region out of the address space (kernel-path read)."""
    if size <= 0:
        raise SdradError(f"snapshot size must be positive, got {size}")
    return RegionSnapshot(base=base, data=space.raw_load(base, size))


def restore(space: AddressSpace, snapshot: RegionSnapshot) -> None:
    """Write a snapshot back (kernel-path write)."""
    space.raw_store(snapshot.base, snapshot.data)


def differs(space: AddressSpace, snapshot: RegionSnapshot) -> list[int]:
    """Offsets (relative to the snapshot base) whose bytes changed.

    Used by integration tests to prove containment: after a compromised
    domain is rewound, the *other* domains' regions must report no diffs.
    """
    current = space.raw_load(snapshot.base, snapshot.size)
    return [i for i, (a, b) in enumerate(zip(snapshot.data, current)) if a != b]
