"""Flags, states and return codes mirroring the SDRaD C library's interface.

The C library (``sdrad.h``) configures domains with an ``int`` of OR-ed
flags and reports errors as negative return codes. We keep the same names
(minus the prefix noise) so anyone familiar with the paper's artifact can
map our API onto it one-to-one, but expose them as :class:`enum.IntFlag` /
:class:`enum.IntEnum` for type safety.
"""

from __future__ import annotations

import enum


class DomainFlags(enum.IntFlag):
    """Domain-creation flags (``sdrad_init`` second argument)."""

    #: Isolated heap + isolated stack, rewind on fault — the common case.
    DEFAULT = 0
    #: Share the parent's heap instead of creating an isolated one.
    #: (Used for integrity-only compartments that read parent data.)
    NONISOLATED_HEAP = enum.auto()
    #: Run on the parent's stack instead of a fresh isolated stack.
    NONISOLATED_STACK = enum.auto()
    #: After a fault, return to the caller of ``sdrad_enter`` with an error
    #: (rewind); without it the fault aborts the process (mitigation-only
    #: baseline behaviour).
    RETURN_TO_PARENT = enum.auto()
    #: Scrub (zero-fill) domain pages on discard instead of abandoning
    #: contents (ablation D2).
    SCRUB_ON_DISCARD = enum.auto()
    #: Run a heap-integrity sweep at every domain exit, catching silent
    #: corruption that neither canaries nor MPK flagged.
    CHECK_HEAP_ON_EXIT = enum.auto()


class DomainState(enum.Enum):
    """Domain lifecycle."""

    INITIALIZED = "initialized"
    ACTIVE = "active"
    FAULTED = "faulted"
    DESTROYED = "destroyed"


class ReturnCode(enum.IntEnum):
    """C-style return codes (negative = error), as in the SDRaD library."""

    SUCCESS = 0
    DOMAIN_FAULTED = -1
    INVALID_ARGUMENT = -2
    NO_SUCH_DOMAIN = -3
    OUT_OF_PKEYS = -4
    OUT_OF_MEMORY = -5
    ILLEGAL_STATE = -6


#: The paper reserves user-domain index 0 for the root domain.
ROOT_UDI = 0
