"""A C-shaped facade over :class:`~repro.sdrad.runtime.SdradRuntime`.

The SDRaD artifact is a C library whose API the paper describes as
"flexible APIs to support different compartmentalization schemes". This
module mirrors that surface — ``sdrad_init``, ``sdrad_enter``/
``sdrad_exit`` bracketing, ``sdrad_malloc``/``sdrad_free``, negative
return codes — so the retrofit-effort experiment (E7) can count integration
points against the same call vocabulary the paper's Memcached patch uses.

Pythonic callers should prefer :meth:`SdradRuntime.execute`; this facade
exists for API fidelity and for the explicit enter/exit style some retrofit
patterns need (e.g. wrapping a parser loop rather than a function).
"""

from __future__ import annotations

from typing import Callable, Optional

from ..errors import (
    AllocationFailure,
    DomainNotFound,
    DomainStateError,
    InvalidFree,
    OutOfDomains,
    SdradError,
)
from .constants import DomainFlags, ReturnCode
from .policy import RecoveryPolicy
from .runtime import DomainResult, SdradRuntime


class SdradApi:
    """Stateful facade with C-style error codes instead of exceptions."""

    def __init__(self, runtime: Optional[SdradRuntime] = None) -> None:
        self.runtime = runtime if runtime is not None else SdradRuntime()
        self.last_error: Optional[str] = None

    # ------------------------------------------------------------------
    # Domain lifecycle
    # ------------------------------------------------------------------

    def sdrad_init(
        self,
        udi: int,
        flags: DomainFlags = DomainFlags.RETURN_TO_PARENT,
        heap_size: Optional[int] = None,
        stack_size: Optional[int] = None,
    ) -> ReturnCode:
        """Create domain ``udi``; ``SUCCESS`` or a negative code."""
        kwargs: dict[str, int] = {}
        if heap_size is not None:
            kwargs["heap_size"] = heap_size
        if stack_size is not None:
            kwargs["stack_size"] = stack_size
        try:
            self.runtime.domain_init(flags=flags, udi=udi, **kwargs)
        except OutOfDomains as exc:
            return self._fail(ReturnCode.OUT_OF_PKEYS, exc)
        except AllocationFailure as exc:
            return self._fail(ReturnCode.OUT_OF_MEMORY, exc)
        except DomainStateError as exc:
            return self._fail(ReturnCode.ILLEGAL_STATE, exc)
        except SdradError as exc:
            return self._fail(ReturnCode.INVALID_ARGUMENT, exc)
        return ReturnCode.SUCCESS

    def sdrad_deinit(self, udi: int) -> ReturnCode:
        try:
            self.runtime.domain_destroy(udi)
        except DomainNotFound as exc:
            return self._fail(ReturnCode.NO_SUCH_DOMAIN, exc)
        except (DomainStateError, SdradError) as exc:
            return self._fail(ReturnCode.ILLEGAL_STATE, exc)
        return ReturnCode.SUCCESS

    # ------------------------------------------------------------------
    # Execution
    # ------------------------------------------------------------------

    def sdrad_enter(
        self,
        udi: int,
        fn: Callable[..., object],
        *args: object,
        policy: Optional[RecoveryPolicy] = None,
    ) -> tuple[ReturnCode, Optional[DomainResult]]:
        """Execute ``fn`` in ``udi``.

        In C, ``sdrad_enter`` switches the calling thread into the domain
        and a later fault longjmps back here; with structured control flow
        the enter/run/exit bracket is a single call. Returns
        ``(SUCCESS, result)`` for a clean run, ``(DOMAIN_FAULTED, result)``
        when the domain was rewound, or an error code and ``None`` for API
        misuse.
        """
        try:
            result = self.runtime.execute(udi, fn, *args, policy=policy)
        except DomainNotFound as exc:
            return self._fail(ReturnCode.NO_SUCH_DOMAIN, exc), None
        except DomainStateError as exc:
            return self._fail(ReturnCode.ILLEGAL_STATE, exc), None
        if result.ok:
            return ReturnCode.SUCCESS, result
        return ReturnCode.DOMAIN_FAULTED, result

    # ------------------------------------------------------------------
    # Domain heap management
    # ------------------------------------------------------------------

    def sdrad_malloc(self, udi: int, nbytes: int) -> tuple[ReturnCode, int]:
        """Allocate on ``udi``'s heap from the trusted side; returns address.

        (The C library exposes this so the parent can stage data inside a
        domain before entering it.)
        """
        try:
            domain = self.runtime.domain(udi)
            addr = domain.heap.malloc(nbytes)
        except DomainNotFound as exc:
            return self._fail(ReturnCode.NO_SUCH_DOMAIN, exc), 0
        except AllocationFailure as exc:
            return self._fail(ReturnCode.OUT_OF_MEMORY, exc), 0
        except SdradError as exc:
            return self._fail(ReturnCode.INVALID_ARGUMENT, exc), 0
        self.runtime.charge(self.runtime.cost.domain_alloc)
        return ReturnCode.SUCCESS, addr

    def sdrad_free(self, udi: int, addr: int) -> ReturnCode:
        try:
            domain = self.runtime.domain(udi)
            domain.heap.free(addr)
        except DomainNotFound as exc:
            return self._fail(ReturnCode.NO_SUCH_DOMAIN, exc)
        except InvalidFree as exc:
            return self._fail(ReturnCode.INVALID_ARGUMENT, exc)
        self.runtime.charge(self.runtime.cost.domain_alloc)
        return ReturnCode.SUCCESS

    def sdrad_dprotect(self, udi: int, data: bytes) -> tuple[ReturnCode, int]:
        """Copy data into a domain ("protect it behind the domain's key")."""
        try:
            addr = self.runtime.copy_into(udi, data)
        except DomainNotFound as exc:
            return self._fail(ReturnCode.NO_SUCH_DOMAIN, exc), 0
        except AllocationFailure as exc:
            return self._fail(ReturnCode.OUT_OF_MEMORY, exc), 0
        return ReturnCode.SUCCESS, addr

    # ------------------------------------------------------------------

    def _fail(self, code: ReturnCode, exc: Exception) -> ReturnCode:
        self.last_error = str(exc)
        return code
