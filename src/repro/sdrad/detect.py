"""Fault classification: mapping raised faults onto detection mechanisms.

The paper (§II) relies on "different pre-existing detection mechanisms, such
as stack canaries and domain violations". This module is the registry of
those mechanisms: it turns a raised exception into a typed
:class:`FaultReport` recording *what* corrupted and *which mechanism* caught
it. Experiments aggregate reports to show the detection-mechanism mix, and
the recovery policy dispatches on them.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Optional

from ..errors import (
    AllocationFailure,
    DetectedCorruption,
    HeapCorruption,
    InvalidFree,
    MemoryError_,
    PermissionFault,
    ProtectionKeyViolation,
    SegmentationFault,
    StackCanaryViolation,
)


class DetectionMechanism(enum.Enum):
    """Which defence noticed the fault."""

    #: MPK: access outside the domain's protection key (simulated MMU).
    PKEY_VIOLATION = "pkey-violation"
    #: Classic unmapped-page segfault.
    PAGE_FAULT = "page-fault"
    #: Page permissions (e.g. write to read-only).
    PAGE_PERMISSION = "page-permission"
    #: Stack protector in the function epilogue.
    STACK_CANARY = "stack-canary"
    #: Allocator guard word / metadata checksum.
    HEAP_INTEGRITY = "heap-integrity"
    #: Allocator misuse (double free, wild free).
    INVALID_FREE = "invalid-free"
    #: Resource exhaustion inside the domain.
    OUT_OF_MEMORY = "out-of-memory"


@dataclass(frozen=True)
class FaultReport:
    """A classified fault, produced at the domain boundary."""

    mechanism: DetectionMechanism
    message: str
    address: Optional[int] = None
    domain_udi: Optional[int] = None
    timestamp: Optional[float] = None
    #: Exception class name of the raising violation — the backend-specific
    #: fault taxonomy (``ProtectionKeyViolation`` under MPK,
    #: ``CapabilityViolation`` under simulated CHERI, ``SfiViolation`` under
    #: SFI). All three classify to PKEY_VIOLATION, so campaigns stratifying
    #: by substrate need the finer label. Deliberately excluded from
    #: :meth:`span_attrs` to keep exporter golden files stable.
    violation: Optional[str] = None

    def __str__(self) -> str:
        where = f" at {self.address:#x}" if self.address is not None else ""
        dom = f" in domain {self.domain_udi}" if self.domain_udi is not None else ""
        return f"[{self.mechanism.value}]{dom}{where}: {self.message}"

    def span_attrs(self) -> dict:
        """The report as span attributes (``repro.obs`` fault/crash events).

        Only JSON-scalar fields: the enum collapses to its string value and
        ``None`` entries are dropped, so exporters need no special casing.
        """
        attrs: dict = {"mechanism": self.mechanism.value}
        if self.domain_udi is not None:
            attrs["udi"] = self.domain_udi
        if self.address is not None:
            attrs["address"] = self.address
        return attrs


#: Exceptions that SDRaD treats as recoverable domain faults. Anything else
#: escaping a domain is a bug in the *application logic* (e.g. KeyError) and
#: is propagated untouched — isolating programmer errors behind rewind would
#: mask real bugs, which the SDRaD library explicitly does not do.
RECOVERABLE_FAULTS = (MemoryError_, DetectedCorruption)


def is_recoverable(exc: BaseException) -> bool:
    """Would SDRaD's fault handler catch this exception?"""
    return isinstance(exc, RECOVERABLE_FAULTS)


def classify(
    exc: BaseException,
    domain_udi: Optional[int] = None,
    timestamp: Optional[float] = None,
) -> FaultReport:
    """Build a :class:`FaultReport` for a recoverable fault.

    Raises :class:`TypeError` for non-recoverable exceptions so callers
    cannot silently swallow logic errors.
    """
    if not is_recoverable(exc):
        raise TypeError(f"not a recoverable SDRaD fault: {exc!r}")
    address = getattr(exc, "address", None)
    if isinstance(exc, ProtectionKeyViolation):
        mechanism = DetectionMechanism.PKEY_VIOLATION
    elif isinstance(exc, SegmentationFault):
        mechanism = DetectionMechanism.PAGE_FAULT
    elif isinstance(exc, PermissionFault):
        mechanism = DetectionMechanism.PAGE_PERMISSION
    elif isinstance(exc, StackCanaryViolation):
        mechanism = DetectionMechanism.STACK_CANARY
    elif isinstance(exc, HeapCorruption):
        mechanism = DetectionMechanism.HEAP_INTEGRITY
    elif isinstance(exc, InvalidFree):
        mechanism = DetectionMechanism.INVALID_FREE
    elif isinstance(exc, AllocationFailure):
        mechanism = DetectionMechanism.OUT_OF_MEMORY
    else:  # remaining MemoryError_/DetectedCorruption subclasses
        mechanism = (
            DetectionMechanism.HEAP_INTEGRITY
            if isinstance(exc, DetectedCorruption)
            else DetectionMechanism.PAGE_FAULT
        )
    return FaultReport(
        mechanism=mechanism,
        message=str(exc),
        address=address,
        domain_udi=domain_udi,
        timestamp=timestamp,
        violation=type(exc).__name__,
    )
