"""Execution contexts: the ``sigsetjmp`` buffers of the simulation.

On entry to a domain, SDRaD saves enough CPU state to resume at the entry
point if the domain later faults: the jump buffer, the PKRU value to restore
and bookkeeping about the active domain. We model that as an explicit stack
of :class:`ExecutionContext` records; "longjmp" is structured unwinding back
to the matching :meth:`ContextStack.pop` (see DESIGN.md D3).

Nested domain entries (domain A calls into domain B) push nested contexts,
and a fault in B rewinds only B's context — A's continuation is untouched,
exactly matching the C library's nested-domain semantics.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..errors import SdradError


@dataclass(frozen=True)
class ExecutionContext:
    """State saved at one domain entry."""

    udi: int
    saved_pkru: int
    entered_at: float
    depth: int


class ContextStack:
    """The per-thread stack of live domain entries."""

    def __init__(self) -> None:
        self._stack: list[ExecutionContext] = []

    @property
    def depth(self) -> int:
        return len(self._stack)

    @property
    def current(self) -> ExecutionContext | None:
        return self._stack[-1] if self._stack else None

    def current_udi(self, root_udi: int) -> int:
        """UDI of the domain currently executing (root if none entered)."""
        return self._stack[-1].udi if self._stack else root_udi

    def push(self, udi: int, saved_pkru: int, entered_at: float) -> ExecutionContext:
        context = ExecutionContext(
            udi=udi,
            saved_pkru=saved_pkru,
            entered_at=entered_at,
            depth=len(self._stack),
        )
        self._stack.append(context)
        return context

    def pop(self, context: ExecutionContext) -> ExecutionContext:
        """Pop ``context``; it must be the innermost entry.

        Popping out of order would mean a domain exit crossed another
        domain's live entry — a runtime bug the C library guards with
        assertions, and so do we.
        """
        if not self._stack:
            raise SdradError("context stack underflow")
        if self._stack[-1] is not context:
            raise SdradError(
                f"out-of-order domain exit: popping udi={context.udi} "
                f"but innermost is udi={self._stack[-1].udi}"
            )
        return self._stack.pop()

    def contains_udi(self, udi: int) -> bool:
        """Is ``udi`` somewhere on the live entry stack (re-entrancy check)?"""
        return any(c.udi == udi for c in self._stack)
