"""The SDRaD runtime: domain lifecycle, entry/exit, rewind-and-discard.

This is the reproduction of the paper's core contribution. The runtime owns
a simulated address space, hands out protection-key-tagged heap/stack
regions to *domains*, and executes application functions inside them:

1. **enter** — save the caller's PKRU and push an execution context (the
   ``sigsetjmp`` analogue), then write a PKRU granting access *only* to the
   domain's key (deny-by-default isolation in both directions);
2. **run** — the application function receives a :class:`DomainHandle` and
   does its work against the simulated memory (every access checked);
3. **exit** — restore PKRU, pop the context, charge the domain-switch cost;
4. **on fault** — classify the fault, consult the domain's recovery policy,
   and for SDRaD's rewind policy: *discard* the domain's heap and stack,
   charge the paper's 3.5 µs rewind cost, and return an error
   :class:`DomainResult` to the code that entered the domain — the process
   survives.

All latencies are charged to the shared virtual clock through the
:class:`~repro.sim.cost.CostModel`, never measured.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass
from typing import TYPE_CHECKING, Callable, Optional

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from ..obs.hub import Observability

from ..errors import (
    AllocationFailure,
    DomainNotFound,
    DomainStateError,
    SdradError,
    UnsupportedByBackend,
)
from ..memory.address_space import AddressSpace
from ..memory.backends import resolve_backend
from ..memory.layout import (
    DEFAULT_DOMAIN_HEAP,
    DEFAULT_DOMAIN_STACK,
    PAGE_SIZE,
    page_align_up,
)
from ..memory.mpk import PKEY_DEFAULT
from ..sim.clock import VirtualClock
from ..sim.cost import DEFAULT_COST_MODEL, CostModel
from ..sim.rng import RngFactory
from ..sim.trace import Tracer
from .constants import ROOT_UDI, DomainFlags, DomainState
from .context import ContextStack
from .detect import FaultReport, classify, is_recoverable
from .domain import Domain
from .policy import (
    ProcessCrashed,
    RecoveryPolicy,
    RewindPolicy,
)


@dataclass
class DomainResult:
    """Outcome of one :meth:`SdradRuntime.execute` call."""

    ok: bool
    value: object = None
    fault: Optional[FaultReport] = None
    retries: int = 0
    recovery_time: float = 0.0
    elapsed: float = 0.0

    def unwrap(self) -> object:
        """Return the value or raise the fault (test convenience)."""
        if self.ok:
            return self.value
        raise SdradError(f"domain call failed: {self.fault}")


class DomainHandle:
    """The view of the runtime an application function gets *inside* a domain.

    It deliberately exposes only domain-scoped operations: allocate/free on
    the domain heap, checked loads/stores, stack frames on the domain stack,
    and cost charging for modelled computation. There is no way to reach
    another domain's memory except through the checked access path — which
    is exactly what the isolation experiment needs to be able to *fail*.
    """

    def __init__(self, runtime: "SdradRuntime", domain: Domain) -> None:
        self._runtime = runtime
        self._domain = domain
        # Compiled checked window over the domain heap (the overwhelmingly
        # common target of handle I/O). PKRU-keyed: valid only while the
        # domain's PKRU is active, revalidated per access burst.
        self._plan = None

    def _heap_plan(self):
        plan = self._plan
        if plan is not None and plan.is_valid():
            return plan
        cache = self._runtime.space.plans
        if cache is None:
            return None
        domain = self._domain
        self._plan = cache.checked_plan(domain.heap_base, domain.heap_size, "rw")
        return self._plan

    @property
    def udi(self) -> int:
        return self._domain.udi

    @property
    def space(self) -> AddressSpace:
        return self._runtime.space

    # --- heap ---------------------------------------------------------

    def malloc(self, nbytes: int) -> int:
        self._runtime.charge(self._runtime.cost.domain_alloc)
        return self._domain.heap.malloc(nbytes)

    def free(self, addr: int) -> None:
        self._runtime.charge(self._runtime.cost.domain_alloc)
        self._domain.heap.free(addr)

    def capacity(self, addr: int) -> int:
        return self._domain.heap.payload_capacity(addr)

    # --- checked memory access (the application data path) -------------

    def store(self, addr: int, data: bytes) -> None:
        plan = self._heap_plan()
        if plan is not None:
            plan.store(addr, data)
        else:
            self._runtime.space.store(addr, data)

    def load(self, addr: int, nbytes: int) -> bytes:
        plan = self._heap_plan()
        if plan is not None:
            return plan.load(addr, nbytes)
        return self._runtime.space.load(addr, nbytes)

    def store_many(self, items) -> None:
        """Batched checked writes — one call for many ``(addr, data)``."""
        plan = self._heap_plan()
        if plan is not None:
            plan.store_many(items)
        else:
            self._runtime.space.store_many(items)

    def load_many(self, requests) -> list[bytes]:
        """Batched checked reads — one call for many ``(addr, nbytes)``."""
        plan = self._heap_plan()
        if plan is not None:
            return plan.load_many(requests)
        return self._runtime.space.load_many(requests)

    def load_view(self, addr: int, nbytes: int) -> memoryview:
        """Checked zero-copy read (see :meth:`AddressSpace.load_view`)."""
        plan = self._heap_plan()
        if plan is not None:
            return plan.view(addr, nbytes)
        return self._runtime.space.load_view(addr, nbytes)

    # --- stack ----------------------------------------------------------

    def push_frame(self, name: str):
        return self._domain.stack.push_frame(name)

    def pop_frame(self, frame) -> int:
        return self._domain.stack.pop_frame(frame)

    # --- modelled computation -------------------------------------------

    def charge(self, seconds: float) -> None:
        """Charge modelled compute time to the virtual clock."""
        self._runtime.charge(seconds)


@dataclass
class _Region:
    base: int
    size: int


#: ``RewindPolicy`` is stateless, so every ``execute(policy=None)`` call can
#: share one instance instead of allocating a fresh policy per request.
_DEFAULT_REWIND_POLICY = RewindPolicy()


@dataclass
class _EntryTicket:
    """Prepared state for re-entering a domain from the same caller.

    The slow entry path derives the domain PKRU through several WRPKRUs and
    builds a fresh handle; in the per-connection steady state (root enters
    the same connection domain thousands of times) every derivation yields
    the same result. A ticket caches that result per ``(caller PKRU, udi)``
    pair and is invalidated on exactly the events that could change it:
    pkey retag (key virtualisation rebind/evict), ``pkey_free`` (key
    recycling), domain destroy, and domain policy-flag changes.
    """

    pkru: int  # final PKRU value the slow path would derive
    modelled_writes: int  # WRPKRUs the slow path would issue to get there
    handle: DomainHandle  # reusable handle (stateless between entries)
    domain: Domain  # the domain object the ticket was prepared for
    check_heap: bool  # CHECK_HEAP_ON_EXIT at preparation time


class SdradRuntime:
    """Owner of the address space, protection keys and all domains."""

    def __init__(
        self,
        space: Optional[AddressSpace] = None,
        clock: Optional[VirtualClock] = None,
        cost: CostModel = DEFAULT_COST_MODEL,
        tracer: Optional[Tracer] = None,
        rng: Optional[RngFactory] = None,
        root_heap_size: int = 1024 * 1024,
        key_virtualization: bool = False,
        guard_pages: bool = False,
        scrub_mode: str = "lazy",
        reentry_cache: bool = True,
        obs: Optional["Observability"] = None,
        backend: object = None,
        default_policy: Optional[RecoveryPolicy] = None,
    ) -> None:
        if scrub_mode not in ("eager", "lazy"):
            raise SdradError(f"unknown scrub mode {scrub_mode!r}")
        # How SCRUB_ON_DISCARD domains pay for scrubbing: "lazy" (default)
        # defers the zero-fill to reallocation so rewind cost stays flat
        # regardless of domain size; "eager" scrubs at discard time (the
        # E2b ablation, and the mode to pick when stale bytes must not
        # survive the rewind even in unallocated space).
        self.scrub_mode = scrub_mode
        if space is not None:
            self.space = space
            # An explicit backend must agree with the space's: the space
            # owns the gate, so a conflicting request would be ignored.
            if backend is not None and (
                resolve_backend(backend).name != space.backend.name
            ):
                raise SdradError(
                    f"backend {resolve_backend(backend).name!r} conflicts "
                    f"with the address space's {space.backend.name!r}"
                )
        else:
            self.space = AddressSpace(
                backend=backend if backend is not None else "mpk"
            )
        #: The isolation substrate (see ``repro.memory.backends``).
        self.backend = self.space.backend
        self.clock = clock if clock is not None else VirtualClock()
        self.cost = cost
        # Per-operation substrate costs, resolved once: under the MPK
        # default these are the very same floats the runtime used to read
        # off the cost model inline, so charges are bit-identical.
        self._enter_cost = self.backend.entry_cost(cost)
        self._exit_cost = self.backend.exit_cost(cost)
        self._setup_cost = self.backend.setup_cost(cost)
        self._teardown_cost = self.backend.teardown_cost(cost)
        self._access_tax = self.backend.access_tax(cost)
        # Checked accesses already charged by an inner (nested) domain exit
        # — SFI instruments each access once, in the innermost sandbox.
        self._taxed_accesses = 0
        self.tracer = tracer if tracer is not None else Tracer()
        # Observability is strictly opt-in: with ``obs=None`` (the
        # default) every instrumented site below reduces to one attribute
        # load and a falsy check, keeping E1's overhead numbers intact
        # (the ``memcached_obs`` bench holds this to account).
        self.obs = obs
        self._obs_entries = None
        if obs is not None:
            obs.bind_clock(self.clock)
            # Resolved once: the per-entry counter is on the hottest path
            # in the runtime, and registry lookups resolve label kwargs.
            self._obs_entries = obs.registry.counter(
                "sdrad_domain_entries_total"
            )
        self.rng = rng if rng is not None else RngFactory(0)
        # What ``execute(policy=None)`` falls back to. The shared stateless
        # rewind singleton keeps the default path allocation-free and bit-
        # identical to the pre-policy-plumbing runtime; campaign closures
        # and the fleet driver swap in per-domain assignments here.
        self.default_policy = (
            default_policy if default_policy is not None else _DEFAULT_REWIND_POLICY
        )
        self.contexts = ContextStack()
        self._domains: dict[int, Domain] = {}
        self._udi_counter = itertools.count(1)
        # Page 0 stays unmapped forever: null-pointer dereferences must
        # fault, as on any sane mmap_min_addr configuration.
        self._bump = PAGE_SIZE
        # With guard pages on, one unmapped page separates consecutive
        # regions, so an overflow off the end of a domain's heap faults
        # instead of silently running into the *same domain's* stack (which
        # shares its protection key and would otherwise absorb it).
        self.guard_pages = guard_pages
        self._free_regions: list[_Region] = []
        # Domain re-entry fast path: prepared entry tickets keyed by
        # (caller PKRU, udi). ``reentry_cache=False`` restores the always-
        # derive behaviour bit for bit (the bench baseline).
        self.reentry_enabled = reentry_cache
        self._entry_tickets: dict[tuple[int, int], _EntryTicket] = {}
        self.reentry_hits = 0
        self.reentry_misses = 0
        self.reentry_invalidations = 0
        # Key recycling invalidates like a TLB shootdown: a ticket prepared
        # for the old owner of a key must not grant it to the next. Chain on
        # the allocator's free hook (the address space's TLB flush is already
        # installed there).
        _chained_on_free = self.space.pkeys.on_free

        def _ticket_on_pkey_free(pkey: int) -> None:
            if _chained_on_free is not None:
                _chained_on_free(pkey)
            if self._entry_tickets:
                self._entry_tickets.clear()
                self.reentry_invalidations += 1

        self.space.pkeys.on_free = _ticket_on_pkey_free
        self._root = self._create_root_domain(root_heap_size)
        # Optional libmpk-style key virtualisation (lifts the 15-domain
        # limit at the cost of rebind retagging; see repro.sdrad.keyvirt).
        # It is an MPK-private concern: only a substrate with key scarcity
        # has anything to virtualise, so other backends reject the request
        # loudly instead of silently not virtualising.
        self.keys: Optional["VirtualKeyManager"] = None
        if key_virtualization:
            if not self.backend.supports_key_virtualization:
                raise UnsupportedByBackend(
                    f"key virtualization requires a key-scarce substrate "
                    f"(MPK); backend {self.backend.name!r} has unbounded "
                    f"domain tags and nothing to virtualise"
                )
            from .keyvirt import VirtualKeyManager

            self.keys = VirtualKeyManager(self)

    # ------------------------------------------------------------------
    # Setup / teardown
    # ------------------------------------------------------------------

    def _create_root_domain(self, heap_size: int) -> Domain:
        heap_base = self._map_region(heap_size, PKEY_DEFAULT)
        stack_base = self._map_region(DEFAULT_DOMAIN_STACK, PKEY_DEFAULT)
        root = Domain(
            udi=ROOT_UDI,
            pkey=PKEY_DEFAULT,
            space=self.space,
            heap_base=heap_base,
            heap_size=page_align_up(heap_size),
            stack_base=stack_base,
            stack_size=DEFAULT_DOMAIN_STACK,
            flags=DomainFlags.DEFAULT,
            parent_udi=None,
            stack_rng=self.rng.stream("stack/root"),
            lazy_scrub=self.scrub_mode == "lazy",
        )
        self._domains[ROOT_UDI] = root
        return root

    @property
    def root(self) -> Domain:
        return self._root

    def domain(self, udi: int) -> Domain:
        try:
            return self._domains[udi]
        except KeyError:
            raise DomainNotFound(udi) from None

    def domains(self) -> list[Domain]:
        return list(self._domains.values())

    def domain_init(
        self,
        flags: DomainFlags = DomainFlags.RETURN_TO_PARENT,
        heap_size: int = DEFAULT_DOMAIN_HEAP,
        stack_size: int = DEFAULT_DOMAIN_STACK,
        udi: Optional[int] = None,
        parent_udi: int = ROOT_UDI,
    ) -> Domain:
        """Create an isolated domain (``sdrad_init`` analogue).

        Charges the pkey syscalls and heap-arena initialisation to the
        clock; raises :class:`~repro.errors.OutOfDomains` when all 16
        protection keys are taken.
        """
        if udi is None:
            udi = next(self._udi_counter)
        if udi in self._domains:
            raise DomainStateError(f"domain udi={udi} already exists")
        if parent_udi not in self._domains:
            raise DomainNotFound(parent_udi)
        if self.keys is not None:
            # Virtualised: pages start on the lock key, binding is lazy.
            pkey = self.keys.assign_initial_key()
        else:
            pkey = self.space.pkeys.alloc()
        heap_size = page_align_up(heap_size)
        stack_size = page_align_up(stack_size)
        try:
            heap_base = self._map_region(heap_size, pkey)
            stack_base = self._map_region(stack_size, pkey)
        except AllocationFailure:
            if self.keys is None:
                self.space.pkeys.free(pkey)
            raise
        # Substrate setup syscalls (pkey_alloc + two pkey_mprotect on MPK,
        # capability derivation on CHERI, mask install on SFI) + heap arena.
        self.charge(self._setup_cost + self.cost.domain_heap_init)
        domain = Domain(
            udi=udi,
            pkey=pkey,
            space=self.space,
            heap_base=heap_base,
            heap_size=heap_size,
            stack_base=stack_base,
            stack_size=stack_size,
            flags=flags,
            parent_udi=parent_udi,
            stack_rng=self.rng.stream(f"stack/{udi}"),
            lazy_scrub=self.scrub_mode == "lazy",
        )
        self._domains[udi] = domain
        self.tracer.record(self.clock.now, "domain.init", udi=udi, pkey=pkey)
        if self.obs is not None:
            self.obs.registry.counter("sdrad_domains_created_total").increment()
        return domain

    def domain_destroy(self, udi: int) -> None:
        """Tear a domain down and recycle its key and regions."""
        domain = self.domain(udi)
        if udi == ROOT_UDI:
            raise SdradError("cannot destroy the root domain")
        if self.contexts.contains_udi(udi):
            raise DomainStateError(f"domain {udi} is currently entered")
        self._unmap_region(domain.heap_base, domain.heap_size)
        self._unmap_region(domain.stack_base, domain.stack_size)
        # A destroyed udi may be recreated (tests and the facade do), and
        # under key virtualisation the physical key returns to the manager's
        # pool without a ``pkey_free`` ever firing — so the destroy itself
        # must drop any prepared entries for this udi.
        self.invalidate_entry_tickets(udi)
        if self.keys is not None:
            self.keys.release_domain(domain)
        else:
            self.space.pkeys.free(domain.pkey)
        domain.mark_destroyed()
        del self._domains[udi]
        self.charge(self._teardown_cost)
        self.tracer.record(self.clock.now, "domain.destroy", udi=udi)
        if self.obs is not None:
            self.obs.registry.counter("sdrad_domains_destroyed_total").increment()

    # ------------------------------------------------------------------
    # Re-entry ticket invalidation (the fast path's shootdown hooks)
    # ------------------------------------------------------------------

    def invalidate_entry_tickets(
        self, udi: Optional[int] = None, *, domain: Optional[Domain] = None
    ) -> None:
        """Drop prepared entry tickets.

        ``domain=`` drops tickets prepared for that exact domain object
        (used by retag and policy changes, which mutate the object);
        ``udi=`` drops every ticket for that user-domain index (used by
        destroy, where a successor domain may reuse the index); with
        neither, everything goes (key recycling).
        """
        tickets = self._entry_tickets
        if not tickets:
            return
        if domain is not None:
            stale = [k for k, t in tickets.items() if t.domain is domain]
        elif udi is not None:
            stale = [k for k in tickets if k[1] == udi]
        else:
            stale = list(tickets)
        for key in stale:
            del tickets[key]
        if stale:
            self.reentry_invalidations += 1

    def set_domain_flags(self, udi: int, flags: DomainFlags) -> None:
        """Change a domain's containment-policy flags (``sdrad_configure``).

        Policy flags decide what an entry must set up and what an exit must
        verify (heap sharing, exit-time heap sweep, scrub mode), so prepared
        entry tickets for the domain are stale the moment they change —
        invalidating them here is the policy-change analogue of a TLB
        shootdown. Flag mutations must come through this method (or assign
        ``Domain.flags``, which recomputes the cached policy booleans but
        cannot see this runtime's ticket cache).
        """
        domain = self.domain(udi)
        if self.contexts.contains_udi(udi):
            raise DomainStateError(
                f"cannot change flags of domain {udi} while it is entered"
            )
        domain.flags = flags
        self.invalidate_entry_tickets(domain=domain)

    # ------------------------------------------------------------------
    # The core: execute-in-domain with rewind on fault
    # ------------------------------------------------------------------

    def execute(
        self,
        udi: int,
        fn: Callable[..., object],
        *args: object,
        policy: Optional[RecoveryPolicy] = None,
        read_grants: Optional[list[int]] = None,
    ) -> DomainResult:
        """Run ``fn(handle, *args)`` inside domain ``udi``.

        Returns a :class:`DomainResult`; never raises for *recoverable*
        memory faults when the policy rewinds. Logic errors (non-memory
        exceptions) propagate unchanged after trusted state is restored.

        ``read_grants`` lists other domains whose memory this execution may
        *read* (never write) — SDRaD's confidentiality-compartment scheme:
        a "vault" domain holds secrets or shared configuration, workers get
        read-only, zero-copy access for the duration of one entry, and a
        compromised worker still cannot tamper with it.
        """
        domain = self.domain(udi)
        if domain.state is DomainState.DESTROYED:
            raise DomainStateError(f"domain {udi} is destroyed")
        if self.contexts.contains_udi(udi):
            raise DomainStateError(f"domain {udi} re-entered while active")
        if policy is None:
            policy = self.default_policy

        granted_domains: list[Domain] = []
        if read_grants:
            for grant_udi in read_grants:
                if grant_udi == udi:
                    raise SdradError("cannot read-grant a domain to itself")
                granted_domains.append(self.domain(grant_udi))

        started = self.clock.now
        if self.keys is not None:
            self.keys.ensure_bound(domain)
            for granted in granted_domains:
                self.keys.ensure_bound(granted)
            parent = self._domains.get(domain.parent_udi or ROOT_UDI)
            if (
                domain.nonisolated_heap
                and parent is not None
                and parent.udi != ROOT_UDI
            ):
                self.keys.ensure_bound(parent)
        self.charge(self._enter_cost)
        gate = self.space.gate
        saved_gate = gate.snapshot()
        # SFI's per-access tax anchors: checked accesses between here and
        # the matching leave are charged at exit (minus any already taxed
        # by nested entries). Zero-tax substrates never read these.
        access_mark = taxed_mark = 0
        if self._access_tax:
            access_mark = self.space.loads + self.space.stores
            taxed_mark = self._taxed_accesses
        context = self.contexts.push(udi, saved_gate, self.clock.now)
        # Re-entry fast path: from the same caller gate state, entering the
        # same domain always derives the same final gate value and an
        # equivalent handle, so replay the prepared ticket instead of
        # re-deriving. Entries with read grants or a shared parent heap
        # depend on *other* domains' tags too and stay on the slow path.
        if (
            self.reentry_enabled
            and not granted_domains
            and not domain.nonisolated_heap
        ):
            ticket = self._entry_tickets.get((saved_gate, udi))
            if ticket is None:
                writes_before = gate.writes
                self._apply_domain_gate(domain)
                ticket = _EntryTicket(
                    pkru=gate.value,
                    modelled_writes=gate.writes - writes_before,
                    handle=DomainHandle(self, domain),
                    domain=domain,
                    check_heap=domain.check_heap_on_exit,
                )
                if len(self._entry_tickets) >= 4096:
                    self._entry_tickets.clear()
                self._entry_tickets[(saved_gate, udi)] = ticket
                self.reentry_misses += 1
            else:
                gate.write_prepared(ticket.pkru, ticket.modelled_writes)
                self.reentry_hits += 1
            handle = ticket.handle
            check_heap = ticket.check_heap
        else:
            self._apply_domain_gate(domain)
            for granted in granted_domains:
                gate.grant(granted.pkey, read=True, write=False)
            handle = DomainHandle(self, domain)
            check_heap = domain.check_heap_on_exit
        self.tracer.record(self.clock.now, "domain.enter", udi=udi)
        obs = self.obs
        span = None
        if obs is not None:
            span = obs.start_span("domain.execute", udi=udi)
            self._obs_entries.increment()

        attempt = 0
        recovery_time = 0.0
        while True:
            domain.mark_active()
            try:
                value = fn(handle, *args)
                if check_heap:
                    domain.heap.check()
            except BaseException as exc:  # noqa: BLE001 - boundary must see all
                if not is_recoverable(exc):
                    # Logic error: restore trusted state, propagate.
                    self._leave(domain, context, saved_gate, access_mark, taxed_mark, clean=False)
                    if obs is not None:
                        obs.end_span(span, status="error")
                    raise
                report = classify(exc, domain_udi=udi, timestamp=self.clock.now)
                domain.mark_faulted()
                domain.stats.record_fault(report.mechanism.value)
                self.tracer.record(
                    self.clock.now,
                    "domain.fault",
                    udi=udi,
                    mechanism=report.mechanism.value,
                )
                attempt += 1
                if obs is not None:
                    obs.event(
                        "domain.fault", attempt=attempt, **report.span_attrs()
                    )
                    obs.registry.counter(
                        "sdrad_domain_faults_total",
                        mechanism=report.mechanism.value,
                    ).increment()
                decision = policy.decide(report, attempt)
                if decision.abort:
                    self._leave(domain, context, saved_gate, access_mark, taxed_mark, clean=False)
                    self.tracer.record(self.clock.now, "process.crash", udi=udi)
                    if obs is not None:
                        obs.registry.counter(
                            "sdrad_crashes_total",
                            mechanism=report.mechanism.value,
                        ).increment()
                        obs.end_span(span, status="crash")
                    raise ProcessCrashed(report) from exc
                recovery_time += self._rewind(
                    domain, cause=report.mechanism.value
                )
                if decision.quarantine > 0.0:
                    # Quarantine is advisory: the domain records when it may
                    # be re-entered and callers (campaign closure, serving
                    # layers) decide whether to honour it — enforcement here
                    # would turn every later entry into a hard error.
                    domain.quarantined_until = self.clock.now + decision.quarantine
                    self.tracer.record(
                        self.clock.now,
                        "domain.quarantine",
                        udi=udi,
                        until=domain.quarantined_until,
                    )
                    if obs is not None:
                        obs.registry.counter(
                            "sdrad_quarantines_total"
                        ).increment()
                if decision.retry:
                    if decision.backoff > 0.0:
                        self.charge(decision.backoff)
                        recovery_time += decision.backoff
                    continue
                self._leave(domain, context, saved_gate, access_mark, taxed_mark, clean=False)
                if obs is not None:
                    obs.end_span(span, status="fault", retries=attempt - 1)
                return DomainResult(
                    ok=False,
                    fault=report,
                    retries=attempt - 1,
                    recovery_time=recovery_time,
                    elapsed=self.clock.now - started,
                )
            else:
                domain.mark_exited()
                self._leave(domain, context, saved_gate, access_mark, taxed_mark, clean=True)
                if obs is not None:
                    obs.end_span(span, status="ok")
                return DomainResult(
                    ok=True,
                    value=value,
                    retries=attempt,
                    recovery_time=recovery_time,
                    elapsed=self.clock.now - started,
                )

    def execute_with_checkpoint(
        self,
        udi: int,
        fn: Callable[..., object],
        *args: object,
    ) -> DomainResult:
        """Alternative recovery design: checkpoint/restore instead of
        rewind-and-discard (ablation of DESIGN.md D2/D3).

        Before entering the domain, its heap and stack are snapshotted; a
        fault restores the snapshot byte-for-byte instead of discarding.
        This preserves domain state across faults (which discard does not),
        but pays a copy of the whole domain *on every call* — the design
        SDRaD explicitly rejected, quantified by E2c.
        """
        from ..memory.snapshot import capture, restore

        domain = self.domain(udi)
        footprint = domain.heap_size + domain.stack_size
        # checkpoint: allocator mirror state first (exporting retires any
        # deferred free, which writes boundary tags), then heap + stack
        # bytes, so the byte snapshot matches the exported metadata.
        heap_state = domain.heap.export_state()
        heap_snap = capture(self.space, domain.heap_base, domain.heap_size)
        stack_snap = capture(self.space, domain.stack_base, domain.stack_size)
        self.charge(self.cost.copy_time(footprint))

        result = self.execute(udi, fn, *args, policy=RewindPolicy())
        if result.ok:
            return result
        # restore: copy the checkpoint back and charge it as recovery
        before = self.clock.now
        restore(self.space, heap_snap)
        restore(self.space, stack_snap)
        domain.heap.import_state(heap_state)
        self.charge(self.cost.copy_time(footprint))
        self.tracer.record(self.clock.now, "domain.restore", udi=udi)
        result.recovery_time += self.clock.now - before
        return result

    def execute_unisolated(self, fn: Callable[..., object], *args: object) -> object:
        """Run ``fn(handle, *args)`` in the root compartment, no isolation.

        This is the *baseline* execution mode (E1's control): no PKRU
        switch, no enter/exit cost, no rewind context. A recoverable memory
        fault therefore has nothing to contain it and kills the process —
        exactly what happens to a mitigation-hardened but un-compartmented
        service.
        """
        handle = DomainHandle(self, self._root)
        try:
            return fn(handle, *args)
        except BaseException as exc:  # noqa: BLE001 - boundary must see all
            if not is_recoverable(exc):
                raise
            report = classify(exc, domain_udi=ROOT_UDI, timestamp=self.clock.now)
            self.tracer.record(
                self.clock.now,
                "process.crash",
                udi=ROOT_UDI,
                mechanism=report.mechanism.value,
            )
            if self.obs is not None:
                self.obs.event("process.crash", **report.span_attrs())
                self.obs.registry.counter(
                    "sdrad_crashes_total", mechanism=report.mechanism.value
                ).increment()
            raise ProcessCrashed(report) from exc

    def _rewind(self, domain: Domain, cause: str = "fault") -> float:
        """Discard the domain and charge rewind cost; returns that cost."""
        before = self.clock.now
        pages = domain.discard()
        self.charge(self.cost.rewind_time(scrub_pages=pages))
        self.tracer.record(
            self.clock.now, "domain.rewind", udi=domain.udi, scrubbed_pages=pages
        )
        obs = self.obs
        if obs is not None:
            elapsed = self.clock.now - before
            # Every rewind span carries its cause (the detection mechanism
            # that fired) and its simulated duration — the per-recovery
            # record the sustainability ledger and E-series audits consume.
            obs.event(
                "domain.rewind",
                udi=domain.udi,
                cause=cause,
                duration=elapsed,
                scrubbed_pages=pages,
            )
            obs.registry.counter("sdrad_rewinds_total", cause=cause).increment()
            obs.registry.histogram("sdrad_rewind_latency_seconds").observe(elapsed)
        return self.clock.now - before

    def _leave(
        self,
        domain: Domain,
        context,
        saved_gate: int,
        access_mark: int = 0,
        taxed_mark: int = 0,
        *,
        clean: bool,
    ) -> None:
        self.contexts.pop(context)
        self.space.gate.write(saved_gate)
        self.charge(self._exit_cost)
        if self._access_tax:
            # SFI: charge the instrumentation tax for every checked access
            # executed inside this entry that an inner entry has not
            # already paid for (an access is masked exactly once).
            space = self.space
            fresh = (space.loads + space.stores - access_mark) - (
                self._taxed_accesses - taxed_mark
            )
            if fresh > 0:
                self.charge(fresh * self._access_tax)
                self._taxed_accesses += fresh
        self.tracer.record(
            self.clock.now, "domain.exit", udi=domain.udi, clean=clean
        )

    def _apply_domain_gate(self, domain: Domain) -> None:
        """Grant access only to the domain's tag (plus shared-heap parents).

        On MPK this is the historical three-WRPKRU entry sequence (deny
        all, revoke key 0, grant the domain key); ``close_all`` folds the
        first two so the same code drives a capability install (CHERI) or
        a mask setup (SFI) through the generic gate protocol.
        """
        gate = self.space.gate
        # Close the gate entirely — the caller's memory (root included)
        # must be unreachable from inside the domain — then grant only the
        # domain's own tag.
        gate.close_all()
        gate.grant(domain.pkey, read=True, write=True)
        if domain.nonisolated_heap and domain.parent_udi is not None:
            parent = self._domains.get(domain.parent_udi)
            if parent is not None:
                gate.grant(parent.pkey, read=True, write=True)
        # The gate writes above are the switch instructions of a real
        # entry; their latency is part of the backend's entry cost, not
        # charged per write.

    # Shared service state lives in the root compartment whose tag is 0 on
    # every backend (MPK pkey 0, CHERI/SFI root tag) — backend-neutral.
    def map_shared_region(self, size: int, pkey: int = PKEY_DEFAULT) -> int:  # sdradlint: ignore[R6]
        """Map a page-aligned region outside any domain (service state).

        Applications use this for long-lived state that survives domain
        rewinds — e.g. the Memcached hash table and slab arena, which SDRaD
        keeps in the trusted/root compartment precisely so that discarding
        a client's domain never touches it.
        """
        return self._map_region(size, pkey)

    # ------------------------------------------------------------------
    # Cross-domain data movement (used by SDRaD-FFI marshalling)
    # ------------------------------------------------------------------

    def _ffi_plan(self, domain: Domain):
        """Kernel plan over a domain's heap for FFI marshalling I/O."""
        cache = self.space.plans
        if cache is None:
            return None
        return cache.kernel_plan(domain.heap_base, domain.heap_size)

    def copy_into(self, udi: int, data: bytes) -> int:
        """Copy ``data`` into ``udi``'s heap; returns the domain address."""
        domain = self.domain(udi)
        addr = domain.heap.malloc(max(len(data), 1))
        plan = self._ffi_plan(domain)
        if plan is not None:
            plan.store(addr, data)
        else:
            self.space.raw_store(addr, data)
        self.charge(self.cost.domain_alloc + self.cost.copy_time(len(data)))
        domain.stats.bytes_copied_in += len(data)
        return addr

    def copy_out(self, udi: int, addr: int, nbytes: int) -> bytes:
        """Copy ``nbytes`` out of ``udi``'s heap into the trusted side."""
        domain = self.domain(udi)
        plan = self._ffi_plan(domain)
        if plan is not None:
            data = plan.load(addr, nbytes)
        else:
            data = self.space.raw_load(addr, nbytes)
        self.charge(self.cost.copy_time(nbytes))
        domain.stats.bytes_copied_out += nbytes
        return data

    # ------------------------------------------------------------------
    # Region management + cost charging
    # ------------------------------------------------------------------

    def charge(self, seconds: float) -> None:
        self.clock.advance(seconds)

    def _map_region(self, size: int, pkey: int) -> int:
        size = page_align_up(size)
        for i, region in enumerate(self._free_regions):
            if region.size == size:
                del self._free_regions[i]
                self.space.page_table.map_range(region.base, size, pkey=pkey)
                return region.base
        base = self._bump
        guard = PAGE_SIZE if self.guard_pages else 0
        if base + size + guard > self.space.size:
            raise AllocationFailure(
                f"simulated address space exhausted mapping {size} bytes "
                f"({self._bump}/{self.space.size} used)"
            )
        self._bump += size + guard  # the guard page stays unmapped
        self.space.page_table.map_range(base, size, pkey=pkey)
        return base

    def _unmap_region(self, base: int, size: int) -> None:
        self.space.page_table.unmap_range(base, size)
        self._free_regions.append(_Region(base=base, size=size))
