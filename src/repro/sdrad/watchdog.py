"""Fault-rate watchdog: quarantine for repeatedly faulting principals.

Rewind makes individual faults nearly free, which creates a new problem the
paper's §II scenario implies but does not solve: a malicious client can
spin the fault-rewind loop forever, burning CPU (and, at scale, energy —
the very resource §IV is trying to save). The watchdog closes that loop:

* every fault is attributed to a *principal* (client id, session id, ...);
* a sliding-window counter per principal tracks recent faults;
* when a principal exceeds ``threshold`` faults within ``window`` seconds,
  it is **quarantined** for ``quarantine_period`` seconds — its requests
  are refused at the front door, at zero isolation cost;
* repeat offenders escalate: each new quarantine doubles the period up to
  a cap (classic exponential backoff).

This mirrors the operational posture of fail2ban/anomaly throttles, using
SDRaD's *perfect attribution* (a fault names its domain, a domain maps to
one client) as the signal — something an unisolated server simply does not
have, since its first fault kills it.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Deque, Dict, Optional

from ..sim.clock import VirtualClock

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from ..obs.hub import Observability


@dataclass
class QuarantineRecord:
    """State the watchdog keeps per principal."""

    fault_times: Deque[float] = field(default_factory=deque)
    quarantined_until: float = 0.0
    quarantine_count: int = 0
    total_faults: int = 0


@dataclass
class WatchdogConfig:
    """Quarantine policy knobs."""

    #: Faults tolerated within the window before quarantine.
    threshold: int = 5
    #: Sliding-window length in seconds.
    window: float = 1.0
    #: First quarantine duration; doubles per repeat offence.
    quarantine_period: float = 10.0
    #: Cap on the escalated quarantine duration.
    max_quarantine: float = 3600.0

    def __post_init__(self) -> None:
        if self.threshold < 1:
            raise ValueError(f"threshold must be >= 1, got {self.threshold}")
        if self.window <= 0:
            raise ValueError(f"window must be positive, got {self.window}")
        if self.quarantine_period <= 0:
            raise ValueError("quarantine period must be positive")
        if self.max_quarantine < self.quarantine_period:
            raise ValueError("max quarantine below the initial period")


class FaultWatchdog:
    """Sliding-window fault accounting with escalating quarantine."""

    def __init__(
        self,
        clock: VirtualClock,
        config: Optional[WatchdogConfig] = None,
        obs: Optional["Observability"] = None,
    ) -> None:
        self.clock = clock
        self.config = config or WatchdogConfig()
        self.obs = obs
        self._records: Dict[str, QuarantineRecord] = {}
        self.total_quarantines = 0

    # ------------------------------------------------------------------

    def record_fault(self, principal: str) -> bool:
        """Register one fault; returns True if this tripped a quarantine."""
        record = self._records.setdefault(principal, QuarantineRecord())
        now = self.clock.now
        record.total_faults += 1
        record.fault_times.append(now)
        self._trim(record, now)
        if self.obs is not None:
            self.obs.registry.counter("watchdog_faults_total").increment()
        if len(record.fault_times) >= self.config.threshold:
            period = min(
                self.config.quarantine_period * (2**record.quarantine_count),
                self.config.max_quarantine,
            )
            record.quarantined_until = now + period
            record.quarantine_count += 1
            record.fault_times.clear()
            self.total_quarantines += 1
            if self.obs is not None:
                self.obs.event(
                    "watchdog.quarantine",
                    principal=principal,
                    duration=period,
                    offence=record.quarantine_count,
                )
                self.obs.registry.counter("watchdog_quarantines_total").increment()
                self.obs.registry.gauge("watchdog_quarantined_principals").set(
                    len(self.quarantined_principals())
                )
            return True
        return False

    def is_quarantined(self, principal: str) -> bool:
        record = self._records.get(principal)
        if record is None:
            return False
        return self.clock.now < record.quarantined_until

    def quarantine_remaining(self, principal: str) -> float:
        record = self._records.get(principal)
        if record is None:
            return 0.0
        return max(0.0, record.quarantined_until - self.clock.now)

    def pardon(self, principal: str) -> None:
        """Operator override: lift a quarantine and reset escalation."""
        self._records.pop(principal, None)

    # ------------------------------------------------------------------

    def record_for(self, principal: str) -> Optional[QuarantineRecord]:
        return self._records.get(principal)

    def quarantined_principals(self) -> list[str]:
        now = self.clock.now
        return [
            principal
            for principal, record in self._records.items()
            if now < record.quarantined_until
        ]

    def _trim(self, record: QuarantineRecord, now: float) -> None:
        cutoff = now - self.config.window
        while record.fault_times and record.fault_times[0] < cutoff:
            record.fault_times.popleft()
