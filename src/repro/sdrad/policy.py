"""Recovery policies: what happens after a domain fault is detected.

The paper's contribution is precisely the *rewind* policy; the others exist
as baselines so experiments can compare like for like:

* :class:`RewindPolicy` — discard the domain, charge the 3.5 µs rewind cost,
  return an error result to the caller (SDRaD).
* :class:`AbortPolicy` — the mitigation-only baseline: detection terminates
  the process (``__stack_chk_fail`` → ``abort()``), surfacing as
  :class:`ProcessCrashed`; the resilience layer then models a process or
  container restart.
* :class:`RetryPolicy` — rewind and transparently re-execute the domain call
  up to ``max_retries`` times; useful when faults are transient (fault
  injection campaigns) rather than attacker-controlled.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from ..errors import ReproError
from .detect import FaultReport


class ProcessCrashed(ReproError):
    """The whole simulated process died (abort-on-detection baseline)."""

    def __init__(self, report: FaultReport) -> None:
        super().__init__(f"process aborted after fault: {report}")
        self.report = report


@dataclass(frozen=True)
class PolicyDecision:
    """Outcome of consulting a policy about a fault."""

    #: Discard the domain and resume at the entry point with an error.
    rewind: bool
    #: Re-execute the faulted call after rewinding.
    retry: bool = False
    #: Terminate the whole process (propagates ProcessCrashed).
    abort: bool = False
    #: Virtual seconds to wait (charged to the clock) before a retry —
    #: exponential backoff for transient faults. Ignored unless ``retry``.
    backoff: float = 0.0
    #: Virtual seconds the domain should refuse re-entry after the fault
    #: (recorded on the domain as ``quarantined_until``; enforcement is the
    #: caller's concern, mirroring the fleet watchdog's quarantine).
    quarantine: float = 0.0


class RecoveryPolicy:
    """Interface: decide what to do about a classified fault."""

    name = "abstract"

    def decide(self, report: FaultReport, attempt: int) -> PolicyDecision:
        raise NotImplementedError

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"{type(self).__name__}()"


class RewindPolicy(RecoveryPolicy):
    """SDRaD's default: always rewind, never retry, never abort."""

    name = "rewind"

    def decide(self, report: FaultReport, attempt: int) -> PolicyDecision:
        return PolicyDecision(rewind=True)


class AbortPolicy(RecoveryPolicy):
    """Mitigation-only baseline: detection kills the process."""

    name = "abort"

    def decide(self, report: FaultReport, attempt: int) -> PolicyDecision:
        return PolicyDecision(rewind=False, abort=True)


class RetryPolicy(RecoveryPolicy):
    """Rewind then re-execute, up to ``max_retries`` attempts.

    After the retry budget is exhausted the fault is surfaced like plain
    rewind (error result to the caller) — never an abort, because the domain
    is still contained.
    """

    name = "retry"

    def __init__(self, max_retries: int = 1) -> None:
        if max_retries < 0:
            raise ValueError(f"max_retries must be >= 0, got {max_retries}")
        self.max_retries = max_retries

    def decide(self, report: FaultReport, attempt: int) -> PolicyDecision:
        return PolicyDecision(rewind=True, retry=attempt <= self.max_retries)


class BackoffRetryPolicy(RecoveryPolicy):
    """Rewind, wait an exponentially growing backoff, then re-execute.

    Plain :class:`RetryPolicy` re-executes immediately, which against a
    persistent trigger just burns rewinds back to back. The backoff variant
    charges ``base_backoff * multiplier**(attempt-1)`` virtual seconds to
    the clock before each retry — the campaign decision layer's
    "retry-with-backoff" candidate.
    """

    name = "retry-backoff"

    def __init__(
        self,
        max_retries: int = 1,
        base_backoff: float = 100e-6,
        multiplier: float = 2.0,
    ) -> None:
        if max_retries < 0:
            raise ValueError(f"max_retries must be >= 0, got {max_retries}")
        if base_backoff < 0:
            raise ValueError(f"base_backoff must be >= 0, got {base_backoff}")
        self.max_retries = max_retries
        self.base_backoff = base_backoff
        self.multiplier = multiplier

    def decide(self, report: FaultReport, attempt: int) -> PolicyDecision:
        if attempt <= self.max_retries:
            return PolicyDecision(
                rewind=True,
                retry=True,
                backoff=self.base_backoff * self.multiplier ** (attempt - 1),
            )
        return PolicyDecision(rewind=True)


class QuarantinePolicy(RecoveryPolicy):
    """Rewind, then quarantine the domain for a fixed window.

    Models the fleet watchdog's per-shard quarantine at domain granularity:
    a faulted domain still rewinds (the process survives) but is marked
    unavailable for ``window`` virtual seconds, shedding a repeat-offender
    trigger instead of absorbing a rewind per hit.
    """

    name = "quarantine"

    def __init__(self, window: float = 0.05) -> None:
        if window <= 0:
            raise ValueError(f"window must be > 0, got {window}")
        self.window = window

    def decide(self, report: FaultReport, attempt: int) -> PolicyDecision:
        return PolicyDecision(rewind=True, quarantine=self.window)


#: Policy names the campaign decision layer chooses between. ``restart``
#: maps to the abort policy: detection kills the process and the resilience
#: layer models the process restart that follows.
POLICY_CHOICES = ("rewind", "retry", "quarantine", "restart")


def make_policy(name: str, **kwargs: float) -> RecoveryPolicy:
    """Build a recovery policy from its campaign/CLI name."""
    if name == "rewind":
        return RewindPolicy()
    if name in ("retry", "retry-backoff"):
        return BackoffRetryPolicy(**kwargs)
    if name == "quarantine":
        return QuarantinePolicy(**kwargs)
    if name in ("restart", "abort"):
        return AbortPolicy()
    raise ValueError(f"unknown recovery policy {name!r}")


def default_policy() -> RecoveryPolicy:
    return RewindPolicy()


@dataclass
class RecoveryOutcome:
    """What actually happened for one faulted call (for traces/metrics)."""

    report: FaultReport
    policy: str
    rewound: bool
    retried: int
    aborted: bool
    recovery_time: float
    final_report: Optional[FaultReport] = None
