"""Recovery policies: what happens after a domain fault is detected.

The paper's contribution is precisely the *rewind* policy; the others exist
as baselines so experiments can compare like for like:

* :class:`RewindPolicy` — discard the domain, charge the 3.5 µs rewind cost,
  return an error result to the caller (SDRaD).
* :class:`AbortPolicy` — the mitigation-only baseline: detection terminates
  the process (``__stack_chk_fail`` → ``abort()``), surfacing as
  :class:`ProcessCrashed`; the resilience layer then models a process or
  container restart.
* :class:`RetryPolicy` — rewind and transparently re-execute the domain call
  up to ``max_retries`` times; useful when faults are transient (fault
  injection campaigns) rather than attacker-controlled.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from ..errors import ReproError
from .detect import FaultReport


class ProcessCrashed(ReproError):
    """The whole simulated process died (abort-on-detection baseline)."""

    def __init__(self, report: FaultReport) -> None:
        super().__init__(f"process aborted after fault: {report}")
        self.report = report


@dataclass(frozen=True)
class PolicyDecision:
    """Outcome of consulting a policy about a fault."""

    #: Discard the domain and resume at the entry point with an error.
    rewind: bool
    #: Re-execute the faulted call after rewinding.
    retry: bool = False
    #: Terminate the whole process (propagates ProcessCrashed).
    abort: bool = False


class RecoveryPolicy:
    """Interface: decide what to do about a classified fault."""

    name = "abstract"

    def decide(self, report: FaultReport, attempt: int) -> PolicyDecision:
        raise NotImplementedError

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"{type(self).__name__}()"


class RewindPolicy(RecoveryPolicy):
    """SDRaD's default: always rewind, never retry, never abort."""

    name = "rewind"

    def decide(self, report: FaultReport, attempt: int) -> PolicyDecision:
        return PolicyDecision(rewind=True)


class AbortPolicy(RecoveryPolicy):
    """Mitigation-only baseline: detection kills the process."""

    name = "abort"

    def decide(self, report: FaultReport, attempt: int) -> PolicyDecision:
        return PolicyDecision(rewind=False, abort=True)


class RetryPolicy(RecoveryPolicy):
    """Rewind then re-execute, up to ``max_retries`` attempts.

    After the retry budget is exhausted the fault is surfaced like plain
    rewind (error result to the caller) — never an abort, because the domain
    is still contained.
    """

    name = "retry"

    def __init__(self, max_retries: int = 1) -> None:
        if max_retries < 0:
            raise ValueError(f"max_retries must be >= 0, got {max_retries}")
        self.max_retries = max_retries

    def decide(self, report: FaultReport, attempt: int) -> PolicyDecision:
        return PolicyDecision(rewind=True, retry=attempt <= self.max_retries)


def default_policy() -> RecoveryPolicy:
    return RewindPolicy()


@dataclass
class RecoveryOutcome:
    """What actually happened for one faulted call (for traces/metrics)."""

    report: FaultReport
    policy: str
    rewound: bool
    retried: int
    aborted: bool
    recovery_time: float
    final_report: Optional[FaultReport] = None
