"""SDRaD: Secure Domain Rewind and Discard — the paper's core contribution.

Public surface:

* :class:`SdradRuntime` / :class:`DomainHandle` / :class:`DomainResult` —
  the Pythonic API (``runtime.execute(udi, fn, ...)``);
* :class:`SdradApi` — the C-shaped facade with return codes;
* :class:`DomainFlags`, recovery policies, and fault classification.
"""

from .api import SdradApi
from .constants import ROOT_UDI, DomainFlags, DomainState, ReturnCode
from .context import ContextStack, ExecutionContext
from .detect import (
    RECOVERABLE_FAULTS,
    DetectionMechanism,
    FaultReport,
    classify,
    is_recoverable,
)
from .domain import Domain, DomainStats
from .keyvirt import KeyVirtStats, VirtualKeyManager
from .policy import (
    AbortPolicy,
    PolicyDecision,
    ProcessCrashed,
    RecoveryOutcome,
    RecoveryPolicy,
    RetryPolicy,
    RewindPolicy,
    default_policy,
)
from .runtime import DomainHandle, DomainResult, SdradRuntime
from .telemetry import consistency_check, snapshot
from .watchdog import FaultWatchdog, QuarantineRecord, WatchdogConfig

__all__ = [
    "SdradApi",
    "ROOT_UDI",
    "DomainFlags",
    "DomainState",
    "ReturnCode",
    "ContextStack",
    "ExecutionContext",
    "RECOVERABLE_FAULTS",
    "DetectionMechanism",
    "FaultReport",
    "classify",
    "is_recoverable",
    "Domain",
    "DomainStats",
    "KeyVirtStats",
    "VirtualKeyManager",
    "AbortPolicy",
    "PolicyDecision",
    "ProcessCrashed",
    "RecoveryOutcome",
    "RecoveryPolicy",
    "RetryPolicy",
    "RewindPolicy",
    "default_policy",
    "DomainHandle",
    "DomainResult",
    "SdradRuntime",
    "FaultWatchdog",
    "QuarantineRecord",
    "WatchdogConfig",
    "consistency_check",
    "snapshot",
]
