"""Runtime telemetry: one structured snapshot of everything observable.

Operators of a rewind-based service need the numbers SDRaD makes available
— per-domain fault mixes, rewind counts, isolation costs, key-virtualisation
pressure — in one place. :func:`snapshot` aggregates them from a runtime
into a JSON-friendly dict; servers and experiments attach it to their
reports, and tests use it as a single consistency check across subsystems.
"""

from __future__ import annotations

from typing import Any

from .constants import ROOT_UDI
from .runtime import SdradRuntime


def snapshot(runtime: SdradRuntime) -> dict[str, Any]:
    """Aggregate a runtime's observable state."""
    domains = []
    total_faults = 0
    total_rewinds = 0
    total_entries = 0
    fault_mix: dict[str, int] = {}
    for domain in runtime.domains():
        stats = domain.stats
        total_faults += stats.faults
        total_rewinds += stats.rewinds
        total_entries += stats.entries
        for mechanism, count in stats.fault_kinds.items():
            fault_mix[mechanism] = fault_mix.get(mechanism, 0) + count
        domains.append(
            {
                "udi": domain.udi,
                "pkey": domain.pkey,
                "state": domain.state.value,
                "entries": stats.entries,
                "clean_exits": stats.clean_exits,
                "faults": stats.faults,
                "rewinds": stats.rewinds,
                "heap_bytes": domain.heap_size,
                "stack_bytes": domain.stack_size,
                "heap_live_blocks": domain.heap.stats().live_blocks,
                "bytes_copied_in": stats.bytes_copied_in,
                "bytes_copied_out": stats.bytes_copied_out,
            }
        )

    space = runtime.space
    tlb_lookups = space.tlb_hits + space.tlb_misses
    memory = {
        "backend": space.backend.name,
        "space_bytes": space.size,
        "mapped_bytes": space.page_table.mapped_bytes(),
        "checked_loads": space.loads,
        "checked_stores": space.stores,
        "hardware_faults": space.faults,
        # Gate-write count; "wrpkru" is the historical (MPK) name, kept so
        # dashboards and goldens survive the backend axis. gate_writes is
        # the substrate-neutral alias.
        "wrpkru_writes": space.gate.writes,
        "gate_writes": space.gate.writes,
        "tlb_enabled": space.tlb_enabled,
        "tlb_hits": space.tlb_hits,
        "tlb_misses": space.tlb_misses,
        "tlb_flushes": space.tlb_flushes,
        "tlb_hit_rate": space.tlb_hits / tlb_lookups if tlb_lookups else 0.0,
        "reentry_cache_enabled": runtime.reentry_enabled,
        "reentry_hits": runtime.reentry_hits,
        "reentry_misses": runtime.reentry_misses,
        "reentry_invalidations": runtime.reentry_invalidations,
    }

    out: dict[str, Any] = {
        "virtual_time": runtime.clock.now,
        "domains": domains,
        "domain_count": len(domains) - 1,  # excluding root
        "totals": {
            "entries": total_entries,
            "faults": total_faults,
            "rewinds": total_rewinds,
            "fault_mix": fault_mix,
            "recovery_time": total_rewinds * runtime.cost.rewind,
        },
        "memory": memory,
        "trace_events": len(runtime.tracer),
    }
    if runtime.keys is not None:
        out["key_virtualization"] = {
            "binds": runtime.keys.stats.binds,
            "evictions": runtime.keys.stats.evictions,
            "hits": runtime.keys.stats.hits,
            "hit_rate": runtime.keys.hit_rate(),
            "pages_retagged": runtime.keys.stats.pages_retagged,
            "bound_domains": len(runtime.keys.bound_domains),
            "free_physical_keys": runtime.keys.free_physical_keys,
        }
    if runtime.obs is not None:
        out["obs"] = {
            "sampling": runtime.obs.sampling,
            "spans": len(runtime.obs.buffer),
            "open_spans": runtime.obs.open_span_count,
            "dropped_spans": runtime.obs.buffer.dropped,
            "metrics": runtime.obs.registry.snapshot(),
        }
    return out


def consistency_check(runtime: SdradRuntime) -> list[str]:
    """Cross-subsystem invariants; returns human-readable violations.

    Used by integration tests as a final sweep: an empty list means the
    runtime's books balance.
    """
    problems: list[str] = []
    data = snapshot(runtime)
    totals = data["totals"]

    trace_rewinds = runtime.tracer.count("domain.rewind")
    if trace_rewinds != totals["rewinds"]:
        problems.append(
            f"trace says {trace_rewinds} rewinds, domain stats say "
            f"{totals['rewinds']}"
        )
    trace_faults = runtime.tracer.count("domain.fault")
    if trace_faults != totals["faults"]:
        problems.append(
            f"trace says {trace_faults} faults, domain stats say "
            f"{totals['faults']}"
        )
    if sum(totals["fault_mix"].values()) != totals["faults"]:
        problems.append("fault mix does not sum to total faults")

    for domain in data["domains"]:
        if domain["udi"] == ROOT_UDI:
            continue
        if domain["state"] == "destroyed":
            problems.append(f"destroyed domain {domain['udi']} still listed")
        if domain["faults"] < domain["rewinds"] and domain["rewinds"] > 0:
            # every rewind follows a fault (discard() can also be called
            # directly, in which case stats.rewinds may exceed faults —
            # only runtime-driven domains are checked here)
            pass

    entries = runtime.contexts.depth
    if entries != 0:
        problems.append(f"{entries} execution context(s) left on the stack")

    # Obs cross-checks: the obs metric counters must track the tracer
    # event-for-event (the tracer, unlike domain stats, survives domain
    # destroys, so it is the authoritative count for ephemeral domains).
    # Metrics are exempt from span sampling precisely so this holds at any
    # sampling rate. Caveat: these compare one runtime against the hub, so
    # they assume the hub is not shared with other runtimes (a cluster's
    # shared hub aggregates across workers and must be checked at the
    # cluster level instead).
    obs = runtime.obs
    if obs is not None:
        pairs = [
            ("domain.rewind", "sdrad_rewinds_total"),
            ("domain.fault", "sdrad_domain_faults_total"),
            ("domain.enter", "sdrad_domain_entries_total"),
            ("domain.init", "sdrad_domains_created_total"),
            ("domain.destroy", "sdrad_domains_destroyed_total"),
        ]
        for trace_kind, counter_name in pairs:
            traced = runtime.tracer.count(trace_kind)
            counted = obs.registry.counter_total(counter_name)
            if traced != counted:
                problems.append(
                    f"tracer saw {traced} {trace_kind!r} events but obs "
                    f"counter {counter_name!r} totals {counted}"
                )
        if obs.open_span_count != 0:
            problems.append(
                f"{obs.open_span_count} span(s) still open at rest"
            )
        tree_problems = obs.buffer.tree_violations()
        problems.extend(f"span tree: {p}" for p in tree_problems)
    return problems
