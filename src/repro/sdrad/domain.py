"""Domain objects: an isolated heap + stack behind one protection key.

A :class:`Domain` owns page-aligned heap and stack regions tagged with its
protection key, a :class:`~repro.memory.allocator.FreeListAllocator` over
the heap and a canaried :class:`~repro.memory.stack.CallStack`. The runtime
(:mod:`repro.sdrad.runtime`) handles entry/exit and recovery; the domain
itself only knows how to *discard* — reset its memory to a known-good empty
state, the core of rewind-and-discard.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field

from ..errors import DomainStateError
from ..memory.address_space import AddressSpace
from ..memory.allocator import FreeListAllocator
from ..memory.stack import CallStack
from .constants import DomainFlags, DomainState


@dataclass
class DomainStats:
    """Per-domain lifetime statistics (reported by E1/E4 harnesses)."""

    entries: int = 0
    clean_exits: int = 0
    faults: int = 0
    rewinds: int = 0
    bytes_copied_in: int = 0
    bytes_copied_out: int = 0
    fault_kinds: dict[str, int] = field(default_factory=dict)

    def record_fault(self, kind: str) -> None:
        self.faults += 1
        self.fault_kinds[kind] = self.fault_kinds.get(kind, 0) + 1


class Domain:
    """One isolated execution domain (SDRaD's unit of rewind)."""

    def __init__(
        self,
        udi: int,
        pkey: int,
        space: AddressSpace,
        heap_base: int,
        heap_size: int,
        stack_base: int,
        stack_size: int,
        flags: DomainFlags = DomainFlags.DEFAULT,
        parent_udi: int | None = None,
        stack_rng: random.Random | None = None,
        lazy_scrub: bool = False,
    ) -> None:
        self.udi = udi
        self.pkey = pkey
        self.space = space
        self.flags = flags  # property setter caches the per-flag booleans
        self.parent_udi = parent_udi
        #: When true, ``SCRUB_ON_DISCARD`` defers the zero-fill to
        #: reallocation time (scrub-on-reallocate): discard cost stays flat
        #: regardless of domain size. The eager mode remains for E2b.
        self.lazy_scrub = lazy_scrub
        self.state = DomainState.INITIALIZED
        self.heap_base = heap_base
        self.heap_size = heap_size
        self.stack_base = stack_base
        self.stack_size = stack_size
        self._stack_rng = stack_rng or random.Random(0x5DAD ^ udi)
        self.heap = FreeListAllocator(
            space, heap_base, heap_size, name=f"domain-{udi}-heap"
        )
        self.stack = CallStack(space, stack_base, stack_size, rng=self._stack_rng)
        self.stats = DomainStats()
        #: Virtual timestamp before which a quarantine policy asked callers
        #: not to re-enter this domain (0.0 = never quarantined).
        self.quarantined_until = 0.0

    # ------------------------------------------------------------------
    # Flags (policy bits), with derived booleans cached
    # ------------------------------------------------------------------

    @property
    def flags(self) -> DomainFlags:
        return self._flags

    @flags.setter
    def flags(self, value: DomainFlags) -> None:
        # Flag tests sit on the entry/exit hot path; IntFlag's ``&`` is two
        # orders of magnitude slower than an attribute load, so the checks
        # below read these cached booleans. Anything that changes flags after
        # construction must go through this setter (the runtime's
        # ``set_domain_flags`` does, and also invalidates entry tickets).
        self._flags = value
        bits = int(value)
        self.nonisolated_heap = bool(bits & DomainFlags.NONISOLATED_HEAP)
        self.check_heap_on_exit = bool(bits & DomainFlags.CHECK_HEAP_ON_EXIT)
        self.scrub_on_discard = bool(bits & DomainFlags.SCRUB_ON_DISCARD)
        self.return_to_parent = bool(bits & DomainFlags.RETURN_TO_PARENT)

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------

    def mark_active(self) -> None:
        if self.state is DomainState.DESTROYED:
            raise DomainStateError(f"domain {self.udi} is destroyed")
        self.state = DomainState.ACTIVE
        self.stats.entries += 1

    def mark_exited(self) -> None:
        if self.state is not DomainState.ACTIVE:
            raise DomainStateError(
                f"domain {self.udi} exit while in state {self.state.value}"
            )
        self.state = DomainState.INITIALIZED
        self.stats.clean_exits += 1

    def mark_faulted(self) -> None:
        self.state = DomainState.FAULTED

    def mark_destroyed(self) -> None:
        self.state = DomainState.DESTROYED

    # ------------------------------------------------------------------
    # Discard (the "D" in SDRaD)
    # ------------------------------------------------------------------

    def discard(self) -> int:
        """Reset heap and stack to a pristine state; returns pages scrubbed.

        This is deliberately *not* a snapshot restore: SDRaD's insight is
        that abandoning the domain's allocations and unwinding its stack is
        sufficient (and orders of magnitude cheaper) because domain state is
        reconstructed from the trusted side on the next entry.
        """
        scrub = self.scrub_on_discard
        lazy = scrub and self.lazy_scrub
        pages = self.heap.reset(scrub=scrub, lazy=lazy)
        self.stack.unwind_all()
        if scrub:
            if lazy:
                self.stack.scrub_pending = True
            else:
                self.space.raw_fill(self.stack_base, self.stack_size, 0)
                pages += (self.stack_size + 4095) // 4096
        self.state = DomainState.INITIALIZED
        self.stats.rewinds += 1
        return pages

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------

    @property
    def is_isolated_heap(self) -> bool:
        return not self.nonisolated_heap

    @property
    def rewinds_on_fault(self) -> bool:
        return self.return_to_parent

    def footprint_bytes(self) -> int:
        """Total simulated memory owned by this domain."""
        return self.heap_size + self.stack_size

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"Domain(udi={self.udi}, pkey={self.pkey}, "
            f"state={self.state.value}, entries={self.stats.entries})"
        )
