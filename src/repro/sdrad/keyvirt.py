"""Protection-key virtualisation (libmpk-style), lifting the 15-domain limit.

MPK provides 16 protection keys; SDRaD reserves one, so at most 15 domains
can be *concurrently* isolated — a real limitation for per-connection
compartmentalisation of a busy server. The paper cites libmpk (Park et al.,
ATC'19), which virtualises keys: domains get unlimited *virtual* keys, and a
small pool of *physical* keys is bound to them on demand, like a TLB.

Mechanism reproduced here:

* one physical key is reserved as the **lock key**: no PKRU ever grants it,
  so pages tagged with it are unreachable from any domain;
* a domain whose virtual key is *bound* has its pages tagged with the bound
  physical key (normal operation);
* binding a domain when no physical key is free **evicts** the
  least-recently-entered bound domain: its pages are retagged to the lock
  key (it stays fully isolated — more isolated, in fact: even its own code
  can't run until rebinding);
* rebinding retags the domain's pages back to a physical key, paying
  ``pkey_mprotect`` syscalls plus a per-page cost — the libmpk eviction
  overhead experiment E9 measures exactly this.

The manager is optional: ``SdradRuntime(key_virtualization=True)`` enables
it, default behaviour (hard 15-domain limit) is unchanged.
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass
from typing import TYPE_CHECKING

from ..errors import SdradError, UnsupportedByBackend
from ..memory.mpk import NUM_PKEYS, PKEY_DEFAULT

if TYPE_CHECKING:  # pragma: no cover - typing only
    from .domain import Domain
    from .runtime import SdradRuntime


@dataclass
class KeyVirtStats:
    """Binding-activity counters (E9's dependent variables)."""

    binds: int = 0
    evictions: int = 0
    hits: int = 0  # entries that found the domain already bound
    pages_retagged: int = 0


class VirtualKeyManager:
    """Binds virtual domain keys onto the physical MPK key pool."""

    def __init__(self, runtime: "SdradRuntime") -> None:
        # Key virtualisation is MPK-backend-private: it exists to stretch
        # a scarce physical key pool, which other substrates do not have.
        # Constructing the manager over them must fail loudly, not quietly
        # manage an infinite pool (see repro.memory.backends).
        backend = runtime.space.backend
        if not backend.supports_key_virtualization:
            raise UnsupportedByBackend(
                f"VirtualKeyManager requires the MPK backend; "
                f"backend {backend.name!r} has unbounded domain tags"
            )
        self.runtime = runtime
        # Reserve the lock key out of the normal allocator so nothing else
        # ever grants it.
        self.lock_pkey = runtime.space.pkeys.alloc()
        # Remaining physical keys are managed here, not by the kernel
        # allocator: free the pool into our own structures.
        self._free_pkeys: list[int] = []
        for _ in range(NUM_PKEYS - 2):  # minus default, minus lock key
            self._free_pkeys.append(runtime.space.pkeys.alloc())
        #: udi -> bound physical key, ordered by recency (LRU first).
        self._bindings: "OrderedDict[int, int]" = OrderedDict()
        self.stats = KeyVirtStats()

    # ------------------------------------------------------------------
    # Domain lifecycle hooks
    # ------------------------------------------------------------------

    def assign_initial_key(self) -> int:
        """Key for a freshly created domain's pages.

        If a physical key is free the domain starts bound-on-first-entry;
        otherwise its pages start on the lock key and the first entry pays
        the rebind. Either way the *initial tag* is the lock key — binding
        happens lazily at entry, which keeps creation cheap.
        """
        return self.lock_pkey

    def release_domain(self, domain: "Domain") -> None:
        """Domain destroyed: return its physical key to the pool.

        This recycles a physical key outside the kernel allocator's view
        (no ``pkey_free`` fires), so the permission cache must be flushed
        here explicitly — the next ``ensure_bound`` may hand the same
        physical key to a different domain.
        """
        bound = self._bindings.pop(domain.udi, None)
        if bound is not None:
            self._free_pkeys.append(bound)
            self.runtime.space.tlb_flush()

    # ------------------------------------------------------------------
    # The bind path (called on every domain entry)
    # ------------------------------------------------------------------

    def ensure_bound(self, domain: "Domain") -> int:
        """Make sure ``domain`` holds a physical key; returns that key."""
        bound = self._bindings.get(domain.udi)
        if bound is not None:
            self._bindings.move_to_end(domain.udi)
            self.stats.hits += 1
            return bound
        if not self._free_pkeys:
            self._evict_one()
        pkey = self._free_pkeys.pop()
        self._retag_domain(domain, pkey)
        domain.pkey = pkey
        self._bindings[domain.udi] = pkey
        self._bindings.move_to_end(domain.udi)
        self.stats.binds += 1
        return pkey

    def _evict_one(self) -> None:
        """Evict the least-recently-entered bound domain to the lock key.

        Never evicts a domain that is (a) currently entered or (b) whose
        key is readable under the live PKRU — the latter covers read-granted
        vaults: recycling their key mid-grant would alias another domain's
        pages into the grantee's view.
        """
        pkru = self.runtime.space.pkru
        for udi, pkey in self._bindings.items():
            if self.runtime.contexts.contains_udi(udi):
                continue
            if self.runtime.contexts.depth > 0 and pkru.allows_read(pkey):
                continue  # live read grant (or active key) — not safe
            victim_udi = udi
            break
        else:
            raise SdradError(
                "all physical protection keys are held by live domain "
                "entries or grants; cannot evict"
            )
        pkey = self._bindings.pop(victim_udi)
        victim = self.runtime.domain(victim_udi)
        self._retag_domain(victim, self.lock_pkey)
        victim.pkey = self.lock_pkey
        self._free_pkeys.append(pkey)
        self.stats.evictions += 1
        self.runtime.tracer.record(
            self.runtime.clock.now, "keyvirt.evict", udi=victim_udi
        )

    def _retag_domain(self, domain: "Domain", pkey: int) -> None:
        """Retag every page of the domain's regions (``pkey_mprotect``).

        ``tag_range`` fires the page-table update hook, so cached access
        verdicts for the retagged pages are shot down automatically. The
        runtime's entry tickets are keyed on the domain, not on pages, so
        they need an explicit shootdown: a ticket prepared while this domain
        held its old key would grant that key — which may now tag someone
        else's pages — on the next re-entry.
        """
        self.runtime.invalidate_entry_tickets(domain=domain)
        table = self.runtime.space.page_table
        table.tag_range(domain.heap_base, domain.heap_size, pkey)
        table.tag_range(domain.stack_base, domain.stack_size, pkey)
        pages = (domain.heap_size + domain.stack_size) // 4096
        self.stats.pages_retagged += pages
        cost = self.runtime.cost
        self.runtime.charge(
            2 * cost.pkey_syscall + pages * cost.pkey_mprotect_per_page
        )

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------

    @property
    def bound_domains(self) -> list[int]:
        return list(self._bindings)

    @property
    def free_physical_keys(self) -> int:
        return len(self._free_pkeys)

    def is_bound(self, udi: int) -> bool:
        return udi in self._bindings

    def hit_rate(self) -> float:
        total = self.stats.hits + self.stats.binds
        return self.stats.hits / total if total else 0.0


def reserved_keys() -> int:
    """Physical keys not available for domain binding (default + lock)."""
    return 2


__all__ = [
    "KeyVirtStats",
    "VirtualKeyManager",
    "reserved_keys",
    "PKEY_DEFAULT",
]
