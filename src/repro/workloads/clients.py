"""Client behaviours: benign request generators and attack generators.

E4's population mixes these: benign clients issue realistic protocol
traffic; malicious clients interleave protocol-conformant requests with
exploit payloads against the deliberate parser bugs
(:mod:`repro.apps.memcached_server`, :mod:`repro.apps.http`,
:mod:`repro.apps.tls`).
"""

from __future__ import annotations

import random
from .zipf import KeyValueWorkload


class MemcachedClient:
    """Benign Memcached traffic: a get/set mix over a Zipfian keyspace."""

    def __init__(
        self,
        client_id: str,
        workload: KeyValueWorkload,
        rng: random.Random,
        set_fraction: float = 0.1,
    ) -> None:
        if not 0.0 <= set_fraction <= 1.0:
            raise ValueError(f"set fraction must be in [0, 1], got {set_fraction}")
        self.client_id = client_id
        self.workload = workload
        self.set_fraction = set_fraction
        self._rng = rng

    def next_request(self) -> bytes:
        key = self.workload.next_key()
        if self._rng.random() < self.set_fraction:
            value = self.workload.next_value()
            return b"set %s 0 0 %d\r\n" % (key, len(value)) + value + b"\r\n"
        return b"get %s\r\n" % key

    def next_batch(self, n: int) -> list[bytes]:
        """A pipeline of ``n`` requests (``MemcachedServer.handle_batch``).

        Subclass behaviour carries over: a malicious client's pipeline mixes
        exploit payloads in at the same rate as its serial traffic.
        """
        return [self.next_request() for _ in range(n)]

    def next_multiget(self, n: int) -> bytes:
        """One multi-key ``get k1 k2 ...`` request over the Zipf keyspace."""
        keys = [self.workload.next_key() for _ in range(max(n, 1))]
        return b"get " + b" ".join(keys) + b"\r\n"

    def is_malicious(self) -> bool:
        return False


class MaliciousMemcachedClient(MemcachedClient):
    """Attacker: mixes exploit payloads into otherwise-normal traffic."""

    def __init__(
        self,
        client_id: str,
        workload: KeyValueWorkload,
        rng: random.Random,
        attack_fraction: float = 0.2,
    ) -> None:
        super().__init__(client_id, workload, rng)
        if not 0.0 < attack_fraction <= 1.0:
            raise ValueError(
                f"attack fraction must be in (0, 1], got {attack_fraction}"
            )
        self.attack_fraction = attack_fraction

    def next_request(self) -> bytes:
        if self._rng.random() >= self.attack_fraction:
            return super().next_request()
        if self._rng.random() < 0.5:
            # Stack-smash payload: key overflows the parser's 256-byte buffer.
            length = self._rng.randrange(260, 272)
            return b"get " + b"K" * length + b"\r\n"
        # Heap-overflow payload: declared length lies about the data size.
        declared = self._rng.randrange(1, 8)
        actual = declared + self._rng.randrange(64, 512)
        return (
            b"set pwn 0 0 %d\r\n" % declared + b"Z" * actual + b"\r\n"
        )

    def is_malicious(self) -> bool:
        return True


class HttpClient:
    """Benign HTTP traffic over the default router's paths."""

    PATHS = (b"/", b"/health", b"/static/app.js", b"/static/site.css")

    def __init__(self, client_id: str, rng: random.Random) -> None:
        self.client_id = client_id
        self._rng = rng

    def next_request(self) -> bytes:
        path = self._rng.choice(self.PATHS)
        return (
            b"GET %s HTTP/1.1\r\nHost: repro.example\r\n"
            b"User-Agent: repro-client\r\n\r\n" % path
        )

    def is_malicious(self) -> bool:
        return False


class MaliciousHttpClient(HttpClient):
    """Attacker: over-long request lines and lying Content-Length."""

    def __init__(
        self, client_id: str, rng: random.Random, attack_fraction: float = 0.2
    ) -> None:
        super().__init__(client_id, rng)
        if not 0.0 < attack_fraction <= 1.0:
            raise ValueError(
                f"attack fraction must be in (0, 1], got {attack_fraction}"
            )
        self.attack_fraction = attack_fraction

    def next_request(self) -> bytes:
        if self._rng.random() >= self.attack_fraction:
            return super().next_request()
        if self._rng.random() < 0.5:
            # Request line overflows the 1024-byte stack buffer.
            path = b"/" + b"A" * self._rng.randrange(1040, 1060)
            return b"GET %s HTTP/1.1\r\nHost: x\r\n\r\n" % path
        declared = self._rng.randrange(1, 8)
        body = b"B" * (declared + self._rng.randrange(64, 512))
        return (
            b"POST /upload HTTP/1.1\r\nHost: x\r\n"
            b"Content-Length: %d\r\n\r\n" % declared + body
        )

    def is_malicious(self) -> bool:
        return True


def build_population(
    n_benign: int,
    n_malicious: int,
    workload_factory,
    rng_factory,
    kind: str = "memcached",
    attack_fraction: float = 0.2,
) -> list:
    """Construct a mixed client population for E4.

    ``workload_factory(client_id, rng)`` builds the benign workload object
    (ignored for HTTP clients); ``rng_factory.stream(label)`` supplies
    per-client deterministic randomness.
    """
    clients: list = []
    for i in range(n_benign):
        cid = f"benign-{i}"
        rng = rng_factory.stream(f"client/{cid}")
        if kind == "memcached":
            clients.append(MemcachedClient(cid, workload_factory(cid, rng), rng))
        else:
            clients.append(HttpClient(cid, rng))
    for i in range(n_malicious):
        cid = f"mallory-{i}"
        rng = rng_factory.stream(f"client/{cid}")
        if kind == "memcached":
            clients.append(
                MaliciousMemcachedClient(
                    cid, workload_factory(cid, rng), rng, attack_fraction
                )
            )
        else:
            clients.append(MaliciousHttpClient(cid, rng, attack_fraction))
    return clients
