"""Workload generation: key popularity, arrivals, clients, traces."""

from .arrivals import ClosedLoop, OpenLoop
from .clients import (
    HttpClient,
    MaliciousHttpClient,
    MaliciousMemcachedClient,
    MemcachedClient,
    build_population,
)
from .traces import TraceEntry, WorkloadTrace, generate_trace
from .zipf import Keyspace, KeyValueWorkload, ValueSizer

__all__ = [
    "ClosedLoop",
    "OpenLoop",
    "HttpClient",
    "MaliciousHttpClient",
    "MaliciousMemcachedClient",
    "MemcachedClient",
    "build_population",
    "TraceEntry",
    "WorkloadTrace",
    "generate_trace",
    "Keyspace",
    "KeyValueWorkload",
    "ValueSizer",
]
