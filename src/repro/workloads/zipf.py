"""Key/value workload shaping: Zipfian popularity, sized values.

Key-value cache workloads (the Memcached use case) are characterised by a
skewed key popularity and a heavy-tailed value-size distribution; both
matter here because they drive slab occupancy (restart cost) and LRU
behaviour. Defaults follow the commonly used YCSB-style parameters
(Zipf 0.99, small-to-medium values).
"""

from __future__ import annotations

import random

from ..sim.rng import ZipfSampler


class Keyspace:
    """Deterministic mapping from rank to key bytes."""

    def __init__(self, size: int, prefix: bytes = b"key") -> None:
        if size <= 0:
            raise ValueError(f"keyspace size must be positive, got {size}")
        self.size = size
        self.prefix = prefix

    def key(self, rank: int) -> bytes:
        if not 0 <= rank < self.size:
            raise ValueError(f"rank {rank} outside keyspace of {self.size}")
        return b"%s-%08d" % (self.prefix, rank)

    def all_keys(self) -> list[bytes]:
        return [self.key(rank) for rank in range(self.size)]


class ValueSizer:
    """Samples value sizes from a clamped log-normal distribution."""

    def __init__(
        self,
        rng: random.Random,
        median: int = 128,
        sigma: float = 0.8,
        minimum: int = 8,
        maximum: int = 8192,
    ) -> None:
        if median <= 0:
            raise ValueError(f"median must be positive, got {median}")
        if not minimum <= median <= maximum:
            raise ValueError("need minimum <= median <= maximum")
        self._rng = rng
        self.median = median
        self.sigma = sigma
        self.minimum = minimum
        self.maximum = maximum

    def sample(self) -> int:
        import math

        size = int(round(self.median * math.exp(self._rng.gauss(0.0, self.sigma))))
        return max(self.minimum, min(self.maximum, size))


class KeyValueWorkload:
    """Bundles keyspace + popularity + value sizing for one workload."""

    def __init__(
        self,
        keyspace: Keyspace,
        skew: float,
        rng: random.Random,
        value_sizer: ValueSizer | None = None,
    ) -> None:
        self.keyspace = keyspace
        self.sampler = ZipfSampler(keyspace.size, skew, rng)
        self.values = value_sizer or ValueSizer(rng)
        self._rng = rng

    def next_key(self) -> bytes:
        return self.keyspace.key(self.sampler.sample())

    def next_value(self) -> bytes:
        size = self.values.sample()
        fill = self._rng.randrange(256)
        return bytes([fill]) * size
