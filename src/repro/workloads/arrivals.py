"""Request arrival processes for driving the use-case servers.

Two classic load shapes:

* :class:`OpenLoop` — requests arrive at a fixed mean rate regardless of
  service progress (Internet-facing traffic); inter-arrivals exponential.
* :class:`ClosedLoop` — a fixed client population, each issuing the next
  request one think-time after the previous response (benchmark harness
  style, what memtier/wrk generate).
"""

from __future__ import annotations

import random
from typing import Iterator


class OpenLoop:
    """Poisson arrivals at ``rate`` requests/second."""

    def __init__(self, rate: float, rng: random.Random) -> None:
        if rate <= 0:
            raise ValueError(f"arrival rate must be positive, got {rate}")
        self.rate = rate
        self._rng = rng

    def times(self, horizon: float) -> Iterator[float]:
        t = 0.0
        while True:
            t += self._rng.expovariate(self.rate)
            if t >= horizon:
                return
            yield t


class ClosedLoop:
    """Fixed population of ``clients`` with exponential think time."""

    def __init__(
        self, clients: int, think_time: float, rng: random.Random
    ) -> None:
        if clients <= 0:
            raise ValueError(f"client count must be positive, got {clients}")
        if think_time < 0:
            raise ValueError(f"think time cannot be negative, got {think_time}")
        self.clients = clients
        self.think_time = think_time
        self._rng = rng

    def next_think(self) -> float:
        if self.think_time == 0:
            return 0.0
        return self._rng.expovariate(1.0 / self.think_time)

    def offered_rate(self, service_time: float) -> float:
        """Approximate offered load (requests/s) for a mean service time."""
        if service_time < 0:
            raise ValueError(f"service time cannot be negative, got {service_time}")
        denominator = self.think_time + service_time
        if denominator == 0:
            raise ValueError("think time and service time cannot both be zero")
        return self.clients / denominator
