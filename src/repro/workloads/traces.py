"""Synthetic request traces: deterministic interleavings of client traffic.

A :class:`WorkloadTrace` freezes "who sends what, in which order" so that
two server configurations (e.g. isolated vs baseline in E1/E4) can be fed
*byte-identical* input — the comparison is then purely about the server.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator, Sequence

from ..sim.rng import RngFactory


@dataclass(frozen=True)
class TraceEntry:
    """One request in the trace."""

    seq: int
    client_id: str
    payload: bytes
    malicious: bool


class WorkloadTrace:
    """An immutable, replayable sequence of requests.

    Traces serialise to JSON (:meth:`to_json` / :meth:`from_json`) so a
    regression-triggering workload can be committed alongside the fix that
    addresses it, exactly like a recorded pcap.
    """

    def __init__(self, entries: Sequence[TraceEntry]) -> None:
        self._entries = list(entries)

    def __len__(self) -> int:
        return len(self._entries)

    def __iter__(self) -> Iterator[TraceEntry]:
        return iter(self._entries)

    def __getitem__(self, index: int) -> TraceEntry:
        return self._entries[index]

    @property
    def clients(self) -> list[str]:
        seen: dict[str, None] = {}
        for entry in self._entries:
            seen.setdefault(entry.client_id, None)
        return list(seen)

    @property
    def malicious_count(self) -> int:
        return sum(1 for e in self._entries if e.malicious)

    def for_client(self, client_id: str) -> list[TraceEntry]:
        return [e for e in self._entries if e.client_id == client_id]

    # ------------------------------------------------------------------
    # Persistence
    # ------------------------------------------------------------------

    def to_json(self) -> str:
        """Serialise to a JSON document (payloads latin-1-escaped)."""
        import json

        return json.dumps(
            [
                {
                    "seq": e.seq,
                    "client_id": e.client_id,
                    "payload": e.payload.decode("latin-1"),
                    "malicious": e.malicious,
                }
                for e in self._entries
            ]
        )

    @classmethod
    def from_json(cls, document: str) -> "WorkloadTrace":
        import json

        try:
            raw = json.loads(document)
        except ValueError as exc:
            raise ValueError(f"invalid trace document: {exc}") from exc
        entries = [
            TraceEntry(
                seq=int(item["seq"]),
                client_id=str(item["client_id"]),
                payload=str(item["payload"]).encode("latin-1"),
                malicious=bool(item["malicious"]),
            )
            for item in raw
        ]
        return cls(entries)

    def save(self, path: str) -> None:
        with open(path, "w", encoding="utf-8") as handle:
            handle.write(self.to_json())

    @classmethod
    def load(cls, path: str) -> "WorkloadTrace":
        with open(path, "r", encoding="utf-8") as handle:
            return cls.from_json(handle.read())


def generate_trace(
    clients: Sequence[object],
    total_requests: int,
    rng_factory: RngFactory,
) -> WorkloadTrace:
    """Interleave ``total_requests`` requests from a client population.

    Clients are drawn uniformly per slot; each contributes its own
    ``next_request()``. The interleaving RNG is split from the clients'
    own streams, so changing the mix does not perturb per-client payloads.
    """
    if not clients:
        raise ValueError("need at least one client")
    if total_requests < 0:
        raise ValueError(f"request count cannot be negative: {total_requests}")
    pick = rng_factory.stream("trace/interleave")
    entries = []
    for seq in range(total_requests):
        client = clients[pick.randrange(len(clients))]
        entries.append(
            TraceEntry(
                seq=seq,
                client_id=client.client_id,
                payload=client.next_request(),
                malicious=client.is_malicious(),
            )
        )
    return WorkloadTrace(entries)
