"""Reproduction of "Exploring the Environmental Benefits of In-Process
Isolation for Software Resilience" (DSN 2023).

See ``DESIGN.md`` for the system inventory and ``EXPERIMENTS.md`` for the
paper-claim ↔ experiment mapping. The most common entry points:

* :class:`repro.sdrad.SdradRuntime` — create domains, execute code inside
  them, get rewind-and-discard recovery on memory faults.
* :func:`repro.ffi.sandboxed` — SDRaD-FFI style annotation for sandboxing
  "unsafe foreign functions" with serialization and alternate actions.
* :mod:`repro.apps` — Memcached/NGINX/OpenSSL-like use-case services.
* :mod:`repro.resilience` — recovery-strategy baselines and availability.
* :mod:`repro.sustainability` — energy/carbon models for the paper's §IV.
"""

__version__ = "1.0.0"
