"""R3 — no rewind-unsafe side effects inside a rewindable domain body.

Rewind-and-discard's contract is that a faulting domain leaves *no trace*:
its heap and stack are discarded and the trusted side re-derives state on
the next entry. That only holds if the domain body's effects are confined
to domain memory and the virtual clock. A file write, a socket send, a
spawned process or a mutated module global survives the rewind — the
half-completed effect is exactly the inconsistency the paper's recovery
model excludes.

Effect *sites* are collected per function (:func:`collect_effect_sites`,
the cacheable layer shared with :mod:`.summaries`):

* calls to effectful builtins (``open``, ``print``, ``input``, ``exec``,
  ``eval``, ``breakpoint``, ``__import__``);
* calls into effectful modules (``os`` — except the pure ``os.path`` —
  ``sys``, ``socket``, ``subprocess``, ``shutil``, ``logging``, …);
* telemetry writes outside the sanctioned API: the tracer and telemetry
  surfaces belong to the *trusted* side of the boundary
  (``handle.charge`` is the one sanctioned way to account work, and the
  :mod:`repro.obs` span/metric calls are rewind-safe by design — but raw
  tracer writes or obs internals reached from a domain body still flag);
* rebinding or augmenting a module global (``global x; x = ...``);
* mutating attributes of caller-owned objects (any parameter other than
  the domain handle) — domain bodies only: a helper mutating its own
  parameter is the out-param story R5 tells with taint precision.

PR 3 stopped at the domain body's own statements. The whole-program
version (:func:`check_project`) also follows calls: every function's
*representative* effect propagates bottom-up through the summary fixpoint
(:mod:`.summaries`), so an ``open()`` three helpers down reports at the
domain body's call site with an ``f -> g -> h`` witness pointing at the
actual write.
"""

from __future__ import annotations

import ast

from .findings import Finding, Hop
from .model import (
    FunctionInfo,
    call_func_name,
    call_receiver_path,
    dotted_name,
)

EFFECTFUL_BUILTINS = {
    "open", "print", "input", "exec", "eval", "breakpoint", "__import__",
}

#: Module roots whose calls are side effects a rewind cannot undo.
EFFECTFUL_MODULES = {
    "os", "sys", "socket", "subprocess", "shutil", "pathlib", "logging",
    "tempfile", "sqlite3", "threading", "multiprocessing", "requests",
    "urllib", "http", "smtplib", "ftplib", "signal", "atexit",
}

#: ``os.path`` is pure string manipulation; don't flag it.
PURE_PREFIXES = ("os.path",)

#: Receiver path segments that mark the telemetry/trace surface.
TELEMETRY_SEGMENTS = {"tracer", "telemetry"}

#: The handle's own accounting call is the sanctioned telemetry channel.
SANCTIONED_CALLS = {"charge"}

#: Receiver path segments that mark the :mod:`repro.obs` surface.
OBS_SEGMENTS = {"obs", "registry", "metrics", "hub", "ledger"}

#: Obs calls that are rewind-safe by design: spans are sampled trusted-side
#: buffers and metric counters are monotone aggregates — neither leaves the
#: half-completed state a rewind cannot undo. Reads are sanctioned too: the
#: campaign subsystem folds per-round energy/carbon off the live ledger and
#: registry (``entries``, ``request_rate``, ...), and a read cannot leave
#: state a rewind would need to undo. Anything else reached through an obs
#: receiver (buffer surgery, exporter writes, clock rebinding) is still a
#: telemetry write and flags.
OBS_SAFE_CALLS = {
    "event", "start_span", "end_span", "span", "set_attrs",
    "counter", "gauge", "histogram", "increment", "observe", "add", "set",
    "record_request", "record_batch",
    # ledger/registry reads (PR 10 campaigns)
    "entries", "entry_for", "format_entries", "default_strategies",
    "requests_served", "faults_observed", "request_rate",
    "value", "count", "sum", "mean", "quantile",
}

_SUFFIX = " inside a rewindable domain body — a rewind cannot undo it"


class _EffectCollector(ast.NodeVisitor):
    """Collect (line, col, message-core) effect sites in one function."""

    def __init__(self, info: FunctionInfo) -> None:
        self.info = info
        self.globals_declared: set[str] = set()
        self.sites: list = []
        args = info.node.args
        params = args.posonlyargs + args.args
        self.handle_param = params[0].arg if params else None
        self.param_names = {a.arg for a in params + args.kwonlyargs}

    def _flag(self, node: ast.AST, message: str) -> None:
        self.sites.append((node.lineno, node.col_offset, message))

    # ------------------------------------------------------------------

    def visit_Call(self, node: ast.Call) -> None:
        name = call_func_name(node)
        func = node.func
        if isinstance(func, ast.Name) and func.id in EFFECTFUL_BUILTINS:
            self._flag(node, f"call to builtin {func.id}()")
        elif isinstance(func, ast.Attribute):
            path = dotted_name(func)
            recv = call_receiver_path(node)
            if path is not None:
                root = path.split(".")[0]
                if root in EFFECTFUL_MODULES and not path.startswith(
                    PURE_PREFIXES
                ):
                    self._flag(node, f"call to {path}()")
            if recv is not None and name not in SANCTIONED_CALLS:
                segments = recv.split(".")
                if any(seg in TELEMETRY_SEGMENTS for seg in segments):
                    # Raw tracer/telemetry writes always flag — even when
                    # reached through an obs object (obs.tracer.record()).
                    self._flag(
                        node,
                        f"telemetry write {recv}.{name}() outside the "
                        f"sanctioned API (use handle.charge)",
                    )
                elif (
                    any(seg in OBS_SEGMENTS for seg in segments)
                    and name not in OBS_SAFE_CALLS
                ):
                    self._flag(
                        node,
                        f"telemetry write {recv}.{name}() outside the "
                        f"sanctioned API (use handle.charge or the "
                        f"repro.obs span/metric calls)",
                    )
        self.generic_visit(node)

    def _check_store(self, target: ast.AST, node: ast.stmt) -> None:
        if isinstance(target, ast.Name):
            if target.id in self.globals_declared:
                self._flag(node, f"assignment to module global {target.id!r}")
        elif isinstance(target, ast.Attribute):
            # Caller-owned mutation is a *domain-body* rule: a helper
            # mutating its parameter is R5's out-param case, judged with
            # taint rather than flagged wholesale.
            if not self.info.is_domain_body:
                return
            base = dotted_name(target.value)
            if base is None:
                return
            root = base.split(".")[0]
            if root in self.param_names and root != self.handle_param:
                self._flag(
                    node,
                    f"mutation of caller-owned object "
                    f"{base}.{target.attr}",
                )
        elif isinstance(target, (ast.Tuple, ast.List)):
            for elt in target.elts:
                self._check_store(elt, node)

    def visit_Assign(self, node: ast.Assign) -> None:
        for target in node.targets:
            self._check_store(target, node)
        self.generic_visit(node)

    def visit_AugAssign(self, node: ast.AugAssign) -> None:
        self._check_store(node.target, node)
        self.generic_visit(node)

    def visit_FunctionDef(self, node: ast.FunctionDef) -> None:
        pass  # nested scopes are analyzed on their own

    visit_AsyncFunctionDef = visit_FunctionDef

    def visit_Lambda(self, node: ast.Lambda) -> None:
        pass


def collect_effect_sites(info: FunctionInfo) -> list:
    """Direct rewind-unsafe effect sites of one function."""
    collector = _EffectCollector(info)
    # Collect ``global`` declarations first: they may follow a use
    # lexically but scope the whole function.
    for sub in ast.walk(info.node):
        if isinstance(sub, ast.Global):
            collector.globals_declared.update(sub.names)
    for stmt in info.node.body:
        collector.visit(stmt)
    return collector.sites


def check_project(facts_by_path: dict, graph, summaries) -> list:
    """Run R3 over every domain body, following calls via summaries."""
    findings: list = []
    for path in sorted(facts_by_path):
        facts = facts_by_path[path]
        for fn in facts.functions:
            if not fn.is_domain_body:
                continue
            # Direct sites: PR 3's findings, byte-for-byte.
            for line, col, message in fn.effects:
                findings.append(
                    Finding(
                        rule="R3",
                        path=path,
                        line=line,
                        col=col,
                        qualname=fn.qualname,
                        message=f"{message}{_SUFFIX}",
                    )
                )
            # Calls whose summary reaches an effect somewhere below.
            for name, line, col in fn.calls:
                callee_key = graph.resolve(path, name)
                if callee_key is None:
                    continue
                summary = summaries.get(callee_key)
                if summary is None or summary.effect is None:
                    continue
                message, chain = summary.effect
                findings.append(
                    Finding(
                        rule="R3",
                        path=path,
                        line=line,
                        col=col,
                        qualname=fn.qualname,
                        message=(
                            f"call to {name}() reaches a rewind-unsafe "
                            f"effect ({message}){_SUFFIX}"
                        ),
                        call_path=(Hop(fn.qualname, path, line),) + chain,
                    )
                )
    return findings
