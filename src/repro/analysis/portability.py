"""R6 — backend portability: MPK-only idioms need a capability guard.

PR 8 made the isolation substrate pluggable (:mod:`repro.memory.backends`:
MPK, simulated-CHERI, SFI), but most of the tree grew up MPK-first.  Code
that names the MPK surface directly — :class:`PkruRegister`,
:data:`NUM_PKEYS`, the key-virtualization manager — silently asserts
"the backend is MPK", and on a CHERI or SFI run it either crashes or,
worse, mis-simulates the gate cost model the paper's energy argument is
built on.  The Morello port of SDRaD ("Secure Rewind and Discard on ARM
Morello") hit exactly this class of bug: pkey-count assumptions baked
into allocator code.

The rule flags two idiom families inside a function:

* **references to MPK-only symbols** — ``PkruRegister``, ``PkeyAllocator``,
  ``VirtualKeyManager``, ``KeyVirtStats``, ``NUM_PKEYS``, ``PKEY_DEFAULT``,
  ``pkru_bits`` as bare names (unless the module defines them itself —
  the MPK substrate is allowed to be MPK) or as attribute accesses
  (``memory.NUM_PKEYS``, ``runtime._keyvirt``);
* **raw gate-state pokes** — assignment to a private attribute of a gate
  register receiver (``space.pkru._value = …``), bypassing the write API
  that every :func:`gate_idiom_table` class fronts.

A function is *effectively guarded* when it performs a backend capability
check itself — reads ``.supports_key_virtualization``, tests
``isinstance(x, MpkBackend)``, compares a backend name against ``"mpk"``,
or raises/handles :class:`~repro.errors.UnsupportedByBackend` — or when
**every** call path into it goes through a guarded function (greatest
fixpoint over the call graph; an unreachable cycle is vacuously guarded
because no unguarded root reaches it).  Backend implementation classes
(subclasses of ``IsolationBackend`` / ``*Backend``) and the gate register
classes themselves are exempt: they *are* the per-backend code.

Findings are :class:`~.findings.Severity.WARNING` — the fix is either a
guard or a justified ``# sdradlint: ignore[R6]`` on backend-private code.
"""

from __future__ import annotations

import ast
from typing import Optional

from .findings import Finding, Hop, Severity
from .gadgets import GATE_RECEIVER_NAMES, REGISTER_CLASSES
from .model import call_func_name, dotted_name

#: Symbols that only exist on (or only make sense for) the MPK backend.
MPK_ONLY_NAMES = frozenset(
    {
        "PkruRegister",
        "PkeyAllocator",
        "VirtualKeyManager",
        "KeyVirtStats",
        "NUM_PKEYS",
        "PKEY_DEFAULT",
        "pkru_bits",
    }
)

#: Attribute spellings that reach the key-virtualization manager.
MPK_ONLY_ATTRS = frozenset({"keyvirt", "_keyvirt"})

#: The guard exception type (raising or handling it *is* the guard).
_GUARD_EXC = "UnsupportedByBackend"

_RECEIVER_SUFFIXES = tuple(f"_{name}" for name in sorted(GATE_RECEIVER_NAMES))


def _is_gate_receiver(path: Optional[str]) -> bool:
    if path is None:
        return False
    return any(
        seg in GATE_RECEIVER_NAMES or seg.endswith(_RECEIVER_SUFFIXES)
        for seg in path.split(".")
    )


def _iter_own(node: ast.AST):
    """Child nodes of a function, excluding nested function/class scopes."""
    stack = list(ast.iter_child_nodes(node))
    while stack:
        sub = stack.pop()
        if isinstance(sub, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)):
            continue
        yield sub
        stack.extend(ast.iter_child_nodes(sub))


# ----------------------------------------------------------------------
# Extraction-time helpers (consumed by summaries.extract_file_facts)
# ----------------------------------------------------------------------


def module_defined_names(tree: ast.Module) -> set:
    """Names a module defines itself (defs, classes, module assigns)."""
    defined: set = set()
    for node in ast.walk(tree):
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)):
            defined.add(node.name)
    for node in tree.body:
        if isinstance(node, ast.Assign):
            for target in node.targets:
                if isinstance(target, ast.Name):
                    defined.add(target.id)
        elif isinstance(node, ast.AnnAssign) and isinstance(
            node.target, ast.Name
        ):
            defined.add(node.target.id)
    return defined


def class_base_names(tree: ast.Module) -> dict:
    """class name -> tuple of base-class trailing names."""
    bases: dict = {}
    for node in ast.walk(tree):
        if isinstance(node, ast.ClassDef):
            names = []
            for base in node.bases:
                name = dotted_name(base)
                if name is not None:
                    names.append(name.split(".")[-1])
            bases[node.name] = tuple(names)
    return bases


def is_exempt(info, class_bases: dict) -> bool:
    """Backend-implementation code: the per-backend substrate itself."""
    if info.class_name is None:
        return False
    if info.class_name in REGISTER_CLASSES:
        return True
    return any(
        base.endswith("Backend") for base in class_bases.get(info.class_name, ())
    )


def idiom_sites(info, module_defined: set) -> list:
    """MPK-only idiom sites inside one function: (line, col, description)."""
    sites: list = []
    for sub in _iter_own(info.node):
        if isinstance(sub, ast.Name) and isinstance(sub.ctx, ast.Load):
            if sub.id in MPK_ONLY_NAMES and sub.id not in module_defined:
                sites.append(
                    (
                        sub.lineno,
                        sub.col_offset,
                        f"reference to MPK-only symbol {sub.id}",
                    )
                )
        elif isinstance(sub, ast.Attribute):
            if sub.attr in MPK_ONLY_ATTRS:
                sites.append(
                    (
                        sub.lineno,
                        sub.col_offset,
                        "access to the key-virtualization manager "
                        f"(.{sub.attr})",
                    )
                )
            elif sub.attr in MPK_ONLY_NAMES:
                sites.append(
                    (
                        sub.lineno,
                        sub.col_offset,
                        f"reference to MPK-only symbol .{sub.attr}",
                    )
                )
        elif isinstance(sub, (ast.Assign, ast.AugAssign)):
            targets = (
                sub.targets if isinstance(sub, ast.Assign) else [sub.target]
            )
            for target in targets:
                if (
                    isinstance(target, ast.Attribute)
                    and target.attr.startswith("_")
                    and _is_gate_receiver(dotted_name(target.value))
                ):
                    sites.append(
                        (
                            sub.lineno,
                            sub.col_offset,
                            f"raw gate-state poke "
                            f"{dotted_name(target.value)}.{target.attr} "
                            f"bypassing the gate write API",
                        )
                    )
    # Deterministic order regardless of the walk's stack discipline.
    sites.sort()
    return sites


def has_guard(info) -> bool:
    """Does this function perform a backend capability check?"""
    for sub in _iter_own(info.node):
        if isinstance(sub, ast.Attribute):
            if sub.attr == "supports_key_virtualization":
                return True
        elif isinstance(sub, ast.Call):
            name = call_func_name(sub)
            if name == "isinstance" and len(sub.args) == 2:
                target = dotted_name(sub.args[1])
                if target is not None and target.split(".")[-1].endswith(
                    "MpkBackend"
                ):
                    return True
        elif isinstance(sub, ast.Compare):
            operands = [sub.left] + list(sub.comparators)
            if any(
                isinstance(op, ast.Constant) and op.value == "mpk"
                for op in operands
            ):
                return True
        elif isinstance(sub, ast.Raise):
            exc = sub.exc
            target = exc.func if isinstance(exc, ast.Call) else exc
            name = dotted_name(target) if target is not None else None
            if name is not None and name.split(".")[-1] == _GUARD_EXC:
                return True
        elif isinstance(sub, ast.ExceptHandler):
            handled = sub.type
            names = (
                handled.elts
                if isinstance(handled, ast.Tuple)
                else [handled]
                if handled is not None
                else []
            )
            for h in names:
                name = dotted_name(h)
                if name is not None and name.split(".")[-1] == _GUARD_EXC:
                    return True
    return False


# ----------------------------------------------------------------------
# Project-level check
# ----------------------------------------------------------------------


def check_project(facts_by_path: dict, graph, summaries) -> list:
    """Run R6 over the whole program."""
    # Greatest fixpoint: everything starts guarded; a function with no
    # local guard loses the property unless every caller keeps it (and
    # it has at least one caller — a root must guard itself).
    locally = {
        key: fn.r6_guard or fn.r6_exempt for key, fn in graph.nodes.items()
    }
    guarded = {key: True for key in graph.nodes}
    changed = True
    while changed:
        changed = False
        for key in graph.nodes:
            if locally[key] or not guarded[key]:
                continue
            callers = graph.callers[key]
            ok = bool(callers) and all(guarded[c] for c in callers)
            if not ok:
                guarded[key] = False
                changed = True

    findings: list = []
    for path in sorted(facts_by_path):
        facts = facts_by_path[path]
        for fn in facts.functions:
            key = f"{path}::{fn.qualname}"
            if not fn.r6_sites or guarded.get(key, False):
                continue
            callers_chain = _unguarded_path(graph, locally, key)
            for line, col, desc in fn.r6_sites:
                witness = (
                    callers_chain + (Hop(fn.qualname, fn.path, line),)
                    if callers_chain
                    else ()
                )
                findings.append(
                    Finding(
                        rule="R6",
                        path=path,
                        line=line,
                        col=col,
                        qualname=fn.qualname,
                        message=(
                            f"{desc} reachable without a backend capability "
                            f"check — guard with "
                            f"backend.supports_key_virtualization / a "
                            f"backend-name check or handle "
                            f"UnsupportedByBackend"
                        ),
                        severity=Severity.WARNING,
                        call_path=witness,
                    )
                )
    return findings


def _unguarded_path(graph, locally: dict, key: str) -> tuple:
    """Shortest unguarded call chain from an unguarded root down to ``key``.

    Returns hops for the *callers* (the flagged function's own hop is
    appended by the caller of this helper); empty when ``key`` is itself
    a root.
    """
    # BFS backwards through unguarded callers until a root.
    parent: dict = {key: None}
    queue = [key]
    root = None
    while queue:
        node = queue.pop(0)
        callers = sorted(c for c in graph.callers[node] if not locally[c])
        if not graph.callers[node]:
            root = node
            break
        advanced = False
        for caller in callers:
            if caller not in parent:
                parent[caller] = node
                queue.append(caller)
                advanced = True
        if not advanced and not queue:
            root = node
            break
    if root is None or root == key:
        return ()
    # Walk root -> ... -> key, emitting each caller at its call-site line.
    chain = []
    node = root
    while node is not None and node != key:
        child = parent[node]
        fn = graph.nodes[node]
        line = fn.line
        if child is not None:
            child_fn = graph.nodes[child]
            for name, call_line, _col in fn.calls:
                if graph.resolve(fn.path, name) == child:
                    line = call_line
                    break
        chain.append(Hop(fn.qualname, fn.path, line))
        node = child
    return tuple(chain)
