"""Project-wide call graph over extracted :class:`~.summaries.FileFacts`.

The graph is deliberately modest — Python's dynamism makes a sound call
graph impossible, and the rules are designed to degrade *conservatively*
when resolution fails (an unresolved call propagates its argument taint,
PR 3 style, instead of being trusted).  Resolution of a call-site name:

1. a function defined in the **same module** with that bare name
   (last definition wins, matching :class:`~.model.ModuleModel`);
2. otherwise a **globally unique** bare name across the project;
3. otherwise unresolved (``None``).

Method calls resolve by bare attribute name under the same policy — the
``self`` parameter offset is handled at argument-mapping time
(:meth:`~.summaries.FunctionFacts.arg_param_index`).

:meth:`CallGraph.sccs` yields Tarjan strongly-connected components in
**reverse topological order** (callees before callers) — exactly the
order the bottom-up summary fixpoint wants.  The implementation is
iterative: analyzer recursion limits must not depend on analyzed-code
call depth.
"""

from __future__ import annotations

from typing import Iterator, Optional


class CallGraph:
    """Nodes are function keys ``path::qualname``; edges follow calls."""

    def __init__(self, facts_by_path: dict) -> None:
        #: key -> FunctionFacts
        self.nodes: dict = {}
        #: module path -> {bare name -> key} (last definition wins)
        self._module_index: dict[str, dict[str, str]] = {}
        #: bare name -> key if globally unique, else None (ambiguous)
        self._global_index: dict[str, Optional[str]] = {}
        for path in sorted(facts_by_path):
            facts = facts_by_path[path]
            module_names = self._module_index.setdefault(path, {})
            for fn in facts.functions:
                key = f"{path}::{fn.qualname}"
                self.nodes[key] = fn
                module_names[fn.name] = key
                if fn.name in self._global_index:
                    self._global_index[fn.name] = None  # ambiguous
                else:
                    self._global_index[fn.name] = key
        #: key -> sorted tuple of callee keys
        self.edges: dict[str, tuple] = {}
        #: key -> set of caller keys
        self.callers: dict[str, set] = {key: set() for key in self.nodes}
        for key, fn in self.nodes.items():
            seen: dict = {}
            for name, _line, _col in fn.calls:
                callee = self.resolve(fn.path, name)
                if callee is not None:
                    seen.setdefault(callee, None)
            self.edges[key] = tuple(seen)
            for callee in seen:
                self.callers[callee].add(key)

    # ------------------------------------------------------------------

    def resolve(self, path: str, name: str) -> Optional[str]:
        """Resolve a call-site bare name to a function key, or ``None``."""
        local = self._module_index.get(path, {}).get(name)
        if local is not None:
            return local
        return self._global_index.get(name)

    # ------------------------------------------------------------------

    def sccs(self) -> Iterator[list]:
        """Tarjan SCCs, callees-before-callers, deterministic order."""
        index: dict[str, int] = {}
        lowlink: dict[str, int] = {}
        on_stack: set = set()
        stack: list = []
        counter = [0]
        out: list[list] = []

        for root in sorted(self.nodes):
            if root in index:
                continue
            # Iterative Tarjan: (node, iterator position) work stack.
            work = [(root, 0)]
            while work:
                node, pos = work.pop()
                if pos == 0:
                    index[node] = lowlink[node] = counter[0]
                    counter[0] += 1
                    stack.append(node)
                    on_stack.add(node)
                recurse = False
                succs = self.edges[node]
                for i in range(pos, len(succs)):
                    succ = succs[i]
                    if succ not in index:
                        work.append((node, i + 1))
                        work.append((succ, 0))
                        recurse = True
                        break
                    if succ in on_stack:
                        lowlink[node] = min(lowlink[node], index[succ])
                if recurse:
                    continue
                if lowlink[node] == index[node]:
                    component = []
                    while True:
                        member = stack.pop()
                        on_stack.discard(member)
                        component.append(member)
                        if member == node:
                            break
                    out.append(sorted(component))
                if work:
                    parent = work[-1][0]
                    lowlink[parent] = min(lowlink[parent], lowlink[node])
        yield from out
