"""Orchestration: discover files, run the rules, apply suppressions.

``lint_source`` is the unit the self-tests drive directly (one source
string in, findings out); ``lint_paths`` is what the CLI and CI use.
"""

from __future__ import annotations

import os
from dataclasses import dataclass, field
from typing import Callable, Iterable, Optional

from . import effects, gadgets, pairing, taint
from .model import ModuleModel

#: rule id -> checker entry point. Order fixes report ordering.
CHECKERS: dict[str, Callable[[ModuleModel], list]] = {
    "R1": pairing.check,
    "R2": taint.check,
    "R3": effects.check,
    "R4": gadgets.check,
}


@dataclass
class LintResult:
    """Everything one lint run produced."""

    findings: list = field(default_factory=list)
    suppressed: list = field(default_factory=list)
    errors: list = field(default_factory=list)  # (path, message) parse failures
    files: int = 0

    def sorted_findings(self) -> list:
        return sorted(
            self.findings, key=lambda f: (f.path, f.line, f.col, f.rule)
        )


def lint_source(
    path: str, source: str, rules: Optional[Iterable[str]] = None
) -> LintResult:
    """Lint one in-memory source file."""
    result = LintResult(files=1)
    try:
        model = ModuleModel.parse(path, source)
    except SyntaxError as exc:
        result.errors.append((path, f"syntax error: {exc}"))
        return result
    selected = set(rules) if rules is not None else set(CHECKERS)
    for rule, checker in CHECKERS.items():
        if rule not in selected:
            continue
        for finding in checker(model):
            if model.is_suppressed(finding.rule, finding.line):
                result.suppressed.append(finding)
            else:
                result.findings.append(finding)
    return result


def discover(paths: Iterable[str]) -> list:
    """Expand files/directories into a sorted list of ``.py`` files."""
    out: list[str] = []
    for path in paths:
        if os.path.isdir(path):
            for root, dirs, files in os.walk(path):
                dirs[:] = sorted(
                    d for d in dirs if d not in ("__pycache__", ".git")
                )
                for name in sorted(files):
                    if name.endswith(".py"):
                        out.append(os.path.join(root, name))
        elif path.endswith(".py"):
            out.append(path)
    return out


def lint_paths(
    paths: Iterable[str], rules: Optional[Iterable[str]] = None
) -> LintResult:
    """Lint every ``.py`` file under ``paths``."""
    result = LintResult()
    for filename in discover(paths):
        try:
            with open(filename, "r", encoding="utf-8") as fh:
                source = fh.read()
        except OSError as exc:
            result.errors.append((filename, str(exc)))
            continue
        sub = lint_source(os.path.relpath(filename), source, rules)
        result.findings.extend(sub.findings)
        result.suppressed.extend(sub.suppressed)
        result.errors.extend(sub.errors)
        result.files += 1
    return result
