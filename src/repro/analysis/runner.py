"""Orchestration: discover files, run the two analysis layers, report.

The analyzer is split into a cacheable per-file layer and a cheap
whole-program layer:

* **Layer A** (per file, content-addressed via :mod:`.cache`): parse to a
  :class:`~.model.ModuleModel`, run the local rules (R1 pairing, R4
  gadget scan), extract the :class:`~.summaries.FileFacts` every
  interprocedural rule consumes.
* **Layer B** (whole program, always recomputed): build the call graph,
  run the summary fixpoint, then the summary-based rules — R2/R5
  (:mod:`.taint`), R3 (:mod:`.effects`), R6 (:mod:`.portability`), R7
  (:mod:`.ffi_boundary`).  Because Layer B only ever sees facts — never
  ASTs — a warm-cache run is byte-identical to ``--no-cache`` by
  construction.

``lint_source`` is the unit the self-tests drive directly (one source
string in, findings out — the file is its own whole program);
``lint_paths`` is what the CLI and CI use.
"""

from __future__ import annotations

import os
import subprocess
from dataclasses import dataclass, field
from typing import Callable, Iterable, Optional

from . import effects, ffi_boundary, gadgets, pairing, portability, taint
from .cache import SummaryCache
from .callgraph import CallGraph
from .model import ModuleModel
from .summaries import compute_summaries, extract_file_facts

#: rule id -> local (per-file) checker. Order fixes report ordering.
CHECKERS: dict[str, Callable[[ModuleModel], list]] = {
    "R1": pairing.check,
    "R4": gadgets.check,
}

#: Whole-program checkers; each may emit several rule ids (R2+R5 share
#: the taint substrate).
PROJECT_CHECKERS: tuple = (
    taint.check_project,  # R2 + R5
    effects.check_project,  # R3
    portability.check_project,  # R6
    ffi_boundary.check_project,  # R7
)


@dataclass
class LintResult:
    """Everything one lint run produced."""

    findings: list = field(default_factory=list)
    suppressed: list = field(default_factory=list)
    errors: list = field(default_factory=list)  # (path, message) parse failures
    files: int = 0
    cache_hits: int = 0
    cache_misses: int = 0

    def sorted_findings(self) -> list:
        return sorted(
            self.findings, key=lambda f: (f.path, f.line, f.col, f.rule)
        )


def analyze_sources(
    sources: dict,
    rules: Optional[Iterable[str]] = None,
    cache: Optional[SummaryCache] = None,
) -> LintResult:
    """Run both layers over ``{path: source}`` as one whole program."""
    from . import RULES

    selected = set(rules) if rules is not None else set(RULES)
    result = LintResult()
    facts_by_path: dict = {}
    raw_findings: list = []

    # Layer A: per-file, cache-addressed.
    for path in sorted(sources):
        source = sources[path]
        result.files += 1
        cached = cache.get(path, source) if cache is not None else None
        if cached is not None:
            facts, local = cached
        else:
            try:
                model = ModuleModel.parse(path, source)
            except SyntaxError as exc:
                result.errors.append((path, f"syntax error: {exc}"))
                continue
            local = []
            for checker in CHECKERS.values():
                local.extend(checker(model))
            facts = extract_file_facts(model)
            if cache is not None:
                cache.put(path, source, facts, local)
        facts_by_path[path] = facts
        raw_findings.extend(local)

    # Layer B: whole-program, always recomputed from facts.
    graph = CallGraph(facts_by_path)
    summaries = compute_summaries(graph)
    for project_checker in PROJECT_CHECKERS:
        raw_findings.extend(project_checker(facts_by_path, graph, summaries))

    if cache is not None:
        result.cache_hits = cache.hits
        result.cache_misses = cache.misses

    # Rule selection + suppression filtering happen at report time so
    # cache entries stay rule-independent.
    for finding in raw_findings:
        if finding.rule not in selected:
            continue
        facts = facts_by_path.get(finding.path)
        if facts is not None and facts.is_suppressed(finding.rule, finding.line):
            result.suppressed.append(finding)
        else:
            result.findings.append(finding)
    return result


def lint_source(
    path: str, source: str, rules: Optional[Iterable[str]] = None
) -> LintResult:
    """Lint one in-memory source file (it is its own whole program)."""
    return analyze_sources({path: source}, rules)


def discover(paths: Iterable[str]) -> list:
    """Expand files/directories into a sorted list of ``.py`` files."""
    out: list[str] = []
    for path in paths:
        if os.path.isdir(path):
            for root, dirs, files in os.walk(path):
                dirs[:] = sorted(
                    d for d in dirs if d not in ("__pycache__", ".git")
                )
                for name in sorted(files):
                    if name.endswith(".py"):
                        out.append(os.path.join(root, name))
        elif path.endswith(".py"):
            out.append(path)
    return out


def changed_files() -> Optional[set]:
    """Repo-relative paths changed vs ``merge-base HEAD origin/main``.

    Returns ``None`` when the answer cannot be computed (not a git
    checkout, no ``origin/main``, git missing) — callers fall back to a
    full run.
    """
    def _git(*args) -> str:
        return subprocess.run(
            ["git", *args],
            capture_output=True,
            text=True,
            check=True,
            timeout=30,
        ).stdout

    try:
        base = _git("merge-base", "HEAD", "origin/main").strip()
        diff = _git("diff", "--name-only", base)
        untracked = _git("ls-files", "--others", "--exclude-standard")
    except (OSError, subprocess.SubprocessError):
        return None
    return {
        line.strip()
        for line in (diff + untracked).splitlines()
        if line.strip()
    }


def lint_paths(
    paths: Iterable[str],
    rules: Optional[Iterable[str]] = None,
    use_cache: bool = False,
    cache_path: Optional[str] = None,
    changed_only: bool = False,
) -> LintResult:
    """Lint every ``.py`` file under ``paths`` as one whole program."""
    result = LintResult()
    changed: Optional[set] = None
    if changed_only:
        changed = changed_files()  # None -> full run

    sources: dict = {}
    for filename in discover(paths):
        rel = os.path.relpath(filename).replace("\\", "/")
        if changed is not None and rel not in changed:
            continue
        try:
            with open(filename, "r", encoding="utf-8") as fh:
                sources[rel] = fh.read()
        except OSError as exc:
            result.errors.append((rel, str(exc)))

    cache: Optional[SummaryCache] = None
    if use_cache:
        cache = SummaryCache(cache_path)
        cache.load()

    analyzed = analyze_sources(sources, rules, cache)
    result.findings = analyzed.findings
    result.suppressed = analyzed.suppressed
    result.errors.extend(analyzed.errors)
    result.files = analyzed.files
    result.cache_hits = analyzed.cache_hits
    result.cache_misses = analyzed.cache_misses

    if cache is not None:
        cache.save()
    return result
