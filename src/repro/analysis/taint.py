"""R2 — domain-heap values must not escape a domain body unmarshalled.

Inside a domain body, ``handle.malloc``/``frame.alloca`` return raw
addresses into the domain's heap/stack and ``handle.load_view`` returns a
zero-copy view aliasing domain memory. All three are meaningless — or
dangerous — outside the domain: the rewind discards the backing pages, a
successor domain may reuse them, and another domain must never receive a
live alias into this one's heap. The sanctioned ways across the boundary
are materialisation (``bytes(...)`` and the copying readers ``load``/
``read_buffer``/``copy_out``) and the ``ffi.marshal``/``ffi.serialization``
API, whose signatures seed the sanitizer set below.

The pass is intraprocedural taint propagation over each *domain body*
(functions the registry in :mod:`repro.analysis.model` identified):
sources taint names, unknown calls propagate taint from arguments (a
tainted constructor argument taints the constructed object), sanitizers
stop it, and three sink classes report an escape — returning/yielding a
tainted value, binding one to a module global, and storing one into an
attribute or a caller-owned container.

Compiled access plans (:mod:`repro.memory.plans`) extend the surface: a
plan object captures raw memoryviews of the run it was compiled over, so
*acquiring* one inside a domain body (``checked_plan``/``kernel_plan``/
``_heap_plan``, or the handle's cached ``._plan``) taints like a view —
a plan leaked past discard is a live alias into freed pages. The plan's
*copying* accessors (``load``/``load_many``/``unpack_from``) are already
sanitizers by name, matching the handle readers they mirror, while the
zero-copy ``view`` accessor is a source exactly like ``load_view``.
"""

from __future__ import annotations

import ast
from typing import Optional

from .findings import Finding
from .model import FunctionInfo, ModuleModel, call_func_name

#: Calls whose result aliases domain memory (the taint sources).
SOURCE_CALLS = {
    "load_view": "zero-copy view of domain memory",
    "view": "zero-copy view of domain memory",
    "malloc": "raw domain-heap address",
    "alloca": "raw domain-stack address",
    "sdrad_malloc": "raw domain-heap address",
    "checked_plan": "compiled access plan aliasing domain memory",
    "kernel_plan": "compiled access plan aliasing domain memory",
    "_heap_plan": "compiled access plan aliasing domain memory",
}

#: Attribute reads that alias domain memory (the handle's cached plan).
SOURCE_ATTRS = {
    "_plan": "compiled access plan aliasing domain memory",
}

#: Calls whose result is a trusted-side (or at least materialised) copy —
#: seeded from the ffi.marshal / ffi.serialization / DomainHandle reader
#: signatures. Taint does not flow through these.
SANITIZER_CALLS = {
    # materialisation builtins
    "bytes", "bytearray", "str", "int", "float", "bool", "len", "repr",
    "hash", "ord", "hex", "sum", "min", "max",
    # copying readers on the handle / stack frame
    "load", "load_many", "read_buffer",
    # the sanctioned cross-boundary carriers (ffi.marshal + runtime)
    "copy_out", "copy_into", "marshal_result", "marshal_args",
    "unmarshal_result",
    # serializer surface (ffi.serialization.Serializer)
    "encode", "decode", "pack", "unpack", "unpack_from",
}

#: Calls that consume an address (the alias is dead afterwards).
CONSUMER_CALLS = {"free", "sdrad_free", "pop_frame"}


class _TaintChecker(ast.NodeVisitor):
    def __init__(self, model: ModuleModel, info: FunctionInfo) -> None:
        self.model = model
        self.info = info
        #: tainted name -> description of its source
        self.tainted: dict[str, str] = {}
        self.globals_declared: set[str] = set()
        self.local_names: set[str] = set()
        self.findings: list[Finding] = []
        args = info.node.args
        self.param_names = {
            a.arg
            for a in (
                args.posonlyargs + args.args + args.kwonlyargs
                + ([args.vararg] if args.vararg else [])
                + ([args.kwarg] if args.kwarg else [])
            )
        }

    # ------------------------------------------------------------------
    # Expression-level taint
    # ------------------------------------------------------------------

    def taint_of(self, node: Optional[ast.AST]) -> Optional[str]:
        """Description of the taint carried by ``node``, or ``None``."""
        if node is None:
            return None
        if isinstance(node, ast.Name):
            return self.tainted.get(node.id)
        if isinstance(node, ast.Call):
            name = call_func_name(node)
            if name in SOURCE_CALLS:
                return SOURCE_CALLS[name]
            if name in SANITIZER_CALLS or name in CONSUMER_CALLS:
                return None
            # Unknown call: a tainted argument taints the result (e.g.
            # a record constructed around a live view).
            for arg in list(node.args) + [kw.value for kw in node.keywords]:
                sub = self.taint_of(arg)
                if sub is not None:
                    return sub
            return None
        if isinstance(node, (ast.BinOp,)):
            return self.taint_of(node.left) or self.taint_of(node.right)
        if isinstance(node, ast.BoolOp):
            for value in node.values:
                sub = self.taint_of(value)
                if sub is not None:
                    return sub
            return None
        if isinstance(node, ast.UnaryOp):
            return self.taint_of(node.operand)
        if isinstance(node, ast.IfExp):
            return self.taint_of(node.body) or self.taint_of(node.orelse)
        if isinstance(node, ast.Subscript):
            return self.taint_of(node.value)  # a slice of a view is a view
        if isinstance(node, ast.Attribute):
            if node.attr in SOURCE_ATTRS:
                return SOURCE_ATTRS[node.attr]
            return self.taint_of(node.value)
        if isinstance(node, ast.Starred):
            return self.taint_of(node.value)
        if isinstance(node, (ast.Tuple, ast.List, ast.Set)):
            for elt in node.elts:
                sub = self.taint_of(elt)
                if sub is not None:
                    return sub
            return None
        if isinstance(node, ast.Dict):
            for value in node.values:
                sub = self.taint_of(value)
                if sub is not None:
                    return sub
            return None
        if isinstance(node, ast.NamedExpr):
            return self.taint_of(node.value)
        if isinstance(node, ast.Compare):
            return None  # booleans are values, not aliases
        return None

    # ------------------------------------------------------------------
    # Statements
    # ------------------------------------------------------------------

    def _escape(self, node: ast.AST, what: str, how: str) -> None:
        self.findings.append(
            Finding(
                rule="R2",
                path=self.model.path,
                line=node.lineno,
                col=node.col_offset,
                qualname=self.info.qualname,
                message=(
                    f"{what} {how} without passing through "
                    f"ffi.marshal/serialization (materialise with bytes() "
                    f"or marshal it)"
                ),
            )
        )

    def _bind(self, target: ast.AST, taint: Optional[str], site: ast.AST) -> None:
        if isinstance(target, ast.Name):
            name = target.id
            self.local_names.add(name)
            if taint is None:
                self.tainted.pop(name, None)
                return
            if name in self.globals_declared:
                self._escape(site, taint, "is bound to a module global")
                return
            self.tainted[name] = taint
        elif isinstance(target, ast.Attribute):
            if taint is not None:
                self._escape(site, taint, "is stored into an object attribute")
        elif isinstance(target, ast.Subscript):
            base = target.value
            if taint is None:
                return
            if isinstance(base, ast.Name) and base.id in self.local_names:
                self.tainted[base.id] = taint  # local container now carries it
            else:
                self._escape(
                    site, taint, "is stored into a caller-owned container"
                )
        elif isinstance(target, (ast.Tuple, ast.List)):
            for elt in target.elts:
                self._bind(elt, taint, site)

    def visit_Global(self, node: ast.Global) -> None:
        self.globals_declared.update(node.names)

    def visit_Assign(self, node: ast.Assign) -> None:
        taint = self.taint_of(node.value)
        for target in node.targets:
            self._bind(target, taint, node)
        self.generic_visit(node.value)

    def visit_AnnAssign(self, node: ast.AnnAssign) -> None:
        if node.value is not None:
            self._bind(node.target, self.taint_of(node.value), node)

    def visit_AugAssign(self, node: ast.AugAssign) -> None:
        taint = self.taint_of(node.value) or self.taint_of(node.target)
        self._bind(node.target, taint, node)

    def visit_Return(self, node: ast.Return) -> None:
        taint = self.taint_of(node.value)
        if taint is not None:
            self._escape(node, taint, "is returned from the domain body")

    def visit_Yield(self, node: ast.Yield) -> None:
        taint = self.taint_of(node.value)
        if taint is not None:
            self._escape(node, taint, "is yielded from the domain body")
        self.generic_visit(node)

    def visit_Call(self, node: ast.Call) -> None:
        name = call_func_name(node)
        if name in CONSUMER_CALLS:
            for arg in node.args:
                if isinstance(arg, ast.Name):
                    self.tainted.pop(arg.id, None)
        self.generic_visit(node)

    def visit_FunctionDef(self, node: ast.FunctionDef) -> None:
        pass  # nested scopes are analyzed on their own

    visit_AsyncFunctionDef = visit_FunctionDef

    def visit_Lambda(self, node: ast.Lambda) -> None:
        pass


def check(model: ModuleModel) -> list:
    """Run R2 over every domain body of ``model``."""
    findings: list[Finding] = []
    for info in model.functions:
        if not info.is_domain_body:
            continue
        checker = _TaintChecker(model, info)
        for stmt in info.node.body:
            checker.visit(stmt)
        findings.extend(checker.findings)
    return findings
