"""R2/R5 — domain-heap values must not escape a domain body unmarshalled.

Inside a domain body, ``handle.malloc``/``frame.alloca`` return raw
addresses into the domain's heap/stack and ``handle.load_view`` returns a
zero-copy view aliasing domain memory. All three are meaningless — or
dangerous — outside the domain: the rewind discards the backing pages, a
successor domain may reuse them, and another domain must never receive a
live alias into this one's heap. The sanctioned ways across the boundary
are materialisation (``bytes(...)`` and the copying readers ``load``/
``read_buffer``/``copy_out``) and the ``ffi.marshal``/``ffi.serialization``
API, whose signatures seed the sanitizer set below.

PR 3 checked this *intraprocedurally*; this version is summary-based
whole-program analysis over :mod:`.summaries` + :mod:`.callgraph`:

* **R2** — the classic escape (source and sink both visible from the
  domain body), now including sinks reached *through a helper*: passing
  a live view to a helper whose summary says the corresponding parameter
  escapes is the same defect as returning it, and the finding carries
  the ``f -> g -> h`` call-path witness.
* **R5** — the purely interprocedural escapes PR 3 could not see: a
  helper *returns* a domain-memory alias which the body then leaks, a
  helper stores a fresh alias into a caller-owned argument (out-param
  escape), or a helper reached from the body leaks an alias to trusted
  state outright.

Compiled access plans (:mod:`repro.memory.plans`) extend the surface: a
plan object captures raw memoryviews of the run it was compiled over, so
*acquiring* one inside a domain body (``checked_plan``/``kernel_plan``/
``_heap_plan``, or the handle's cached ``._plan``) taints like a view —
a plan leaked past discard is a live alias into freed pages. The plan's
*copying* accessors (``load``/``load_many``/``unpack_from``) are already
sanitizers by name, matching the handle readers they mirror, while the
zero-copy ``view`` accessor is a source exactly like ``load_view``.
"""

from __future__ import annotations

from .findings import Finding, Hop

#: Calls whose result aliases domain memory (the taint sources).
SOURCE_CALLS = {
    "load_view": "zero-copy view of domain memory",
    "view": "zero-copy view of domain memory",
    "malloc": "raw domain-heap address",
    "alloca": "raw domain-stack address",
    "sdrad_malloc": "raw domain-heap address",
    "checked_plan": "compiled access plan aliasing domain memory",
    "kernel_plan": "compiled access plan aliasing domain memory",
    "_heap_plan": "compiled access plan aliasing domain memory",
}

#: Attribute reads that alias domain memory (the handle's cached plan).
SOURCE_ATTRS = {
    "_plan": "compiled access plan aliasing domain memory",
}

#: Calls whose result is a trusted-side (or at least materialised) copy —
#: seeded from the ffi.marshal / ffi.serialization / DomainHandle reader
#: signatures. Taint does not flow through these.
SANITIZER_CALLS = {
    # materialisation builtins
    "bytes", "bytearray", "str", "int", "float", "bool", "len", "repr",
    "hash", "ord", "hex", "sum", "min", "max",
    # copying readers on the handle / stack frame
    "load", "load_many", "read_buffer",
    # the sanctioned cross-boundary carriers (ffi.marshal + runtime)
    "copy_out", "copy_into", "marshal_result", "marshal_args",
    "unmarshal_result",
    # serializer surface (ffi.serialization.Serializer)
    "encode", "decode", "pack", "unpack", "unpack_from",
}

#: Calls that consume an address (the alias is dead afterwards).
CONSUMER_CALLS = {"free", "sdrad_free", "pop_frame"}

_SINK_HOW = {
    "return": "is returned from the domain body",
    "yield": "is yielded from the domain body",
    "global": "is bound to a module global",
    "attr": "is stored into an object attribute",
    "container": "is stored into a caller-owned container",
}

_MARSHAL_HINT = (
    "without passing through ffi.marshal/serialization "
    "(materialise with bytes() or marshal it)"
)


def check_project(facts_by_path: dict, graph, summaries) -> list:
    """Run R2 + R5 over every domain body of the project."""
    findings: list = []
    for path in sorted(facts_by_path):
        facts = facts_by_path[path]
        for fn in facts.functions:
            if not fn.is_domain_body:
                continue
            _check_body(fn, graph, summaries, findings)
    return findings


def _check_body(fn, graph, summaries, findings: list) -> None:
    path = fn.path

    # Sinks visible in the body itself. A local source keeps PR 3's R2
    # message byte-for-byte (fingerprint/baseline continuity); a taint
    # that arrived through a helper return is R5 with a witness.
    for kind, line, col, atoms, base in fn.flows:
        taint, _params = summaries.resolve_atoms(fn, atoms)
        if taint is None:
            continue
        desc, chain = taint
        how = _SINK_HOW[kind]
        if not chain:
            findings.append(
                Finding(
                    rule="R2",
                    path=path,
                    line=line,
                    col=col,
                    qualname=fn.qualname,
                    message=f"{desc} {how} {_MARSHAL_HINT}",
                )
            )
        else:
            helper = chain[-1].function
            findings.append(
                Finding(
                    rule="R5",
                    path=path,
                    line=line,
                    col=col,
                    qualname=fn.qualname,
                    message=(
                        f"{desc} obtained through helper {helper}() "
                        f"{how} {_MARSHAL_HINT}"
                    ),
                    call_path=chain,
                )
            )

    # Sinks inside helpers the body hands values to.
    for name, line, col, args in fn.call_args:
        callee_key = graph.resolve(path, name)
        if callee_key is None:
            continue
        callee = graph.nodes[callee_key]
        summary = summaries.get(callee_key)
        if summary is None:
            continue
        for i, (atoms, arg_kind, kw) in enumerate(args):
            pidx = _param_index(callee, i, kw)
            if pidx is None:
                continue
            # A live alias passed into a helper that escapes it.
            escape = summary.param_escape.get(pidx)
            if escape is not None:
                taint, _params = summaries.resolve_atoms(fn, atoms)
                if taint is not None:
                    desc, tchain = taint
                    how, echain = escape
                    witness = (Hop(fn.qualname, path, line),) + echain
                    findings.append(
                        Finding(
                            rule="R2" if not tchain else "R5",
                            path=path,
                            line=line,
                            col=col,
                            qualname=fn.qualname,
                            message=(
                                f"{desc} passed to {name}(), where it "
                                f"{how} {_MARSHAL_HINT}"
                            ),
                            call_path=witness,
                        )
                    )
            # A helper that plants a fresh alias into a caller-owned
            # argument (the out-param escape PR 3 could not see).
            planted = summary.taints_param.get(pidx)
            if planted is not None and arg_kind[0] in ("param", "owned"):
                desc, tchain = planted
                findings.append(
                    Finding(
                        rule="R5",
                        path=path,
                        line=line,
                        col=col,
                        qualname=fn.qualname,
                        message=(
                            f"helper {name}() stores {desc} into its "
                            f"argument — the alias outlives the domain "
                            f"body (out-param escape)"
                        ),
                        call_path=(Hop(fn.qualname, path, line),) + tchain,
                    )
                )

    # Helpers that leak an alias outright, any number of calls deep.
    for name, line, col in fn.calls:
        callee_key = graph.resolve(path, name)
        if callee_key is None:
            continue
        summary = summaries.get(callee_key)
        if summary is None or summary.alias_leak is None:
            continue
        desc, how, chain = summary.alias_leak
        findings.append(
            Finding(
                rule="R5",
                path=path,
                line=line,
                col=col,
                qualname=fn.qualname,
                message=(
                    f"call to {name}() leaks {desc} ({how}) outside the "
                    f"domain body {_MARSHAL_HINT}"
                ),
                call_path=(Hop(fn.qualname, path, line),) + chain,
            )
        )


def _param_index(callee, arg_index: int, kw):
    if kw is not None:
        if kw in callee.params:
            return list(callee.params).index(kw)
        return None
    return callee.arg_param_index(arg_index)
