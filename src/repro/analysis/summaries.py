"""Per-function effect/escape summaries — the whole-program substrate.

PR 3's rules each walked one function body; nothing connected what a
*helper* does to the domain body that calls it.  This module closes that
gap in two stages:

1. **Fact extraction** (:func:`extract_file_facts`) — one AST pass per
   file produces a :class:`FileFacts`: for every function, its taint
   *flows* (where values carrying domain-memory aliases go), its call
   sites with per-argument taint atoms, its direct rewind-unsafe effect
   sites, and the R6/R7 raw facts.  Facts are plain JSON-serializable
   data — this is what the incremental cache (:mod:`.cache`) stores, so
   a warm run never re-parses an unchanged file.

2. **Summary computation** (:func:`compute_summaries`) — bottom-up over
   the call graph's SCCs (:mod:`.callgraph`), a fixpoint derives one
   :class:`FunctionSummary` per function: does it *return* a domain-memory
   alias, which parameters flow to its return value, which parameter
   values escape inside it, which rewind-unsafe effect it (transitively)
   performs, and whether it crosses the FFI boundary raw.  Every derived
   fact carries a *witness chain* of :class:`~.findings.Hop` entries so
   interprocedural findings can print ``f -> g -> h`` with file:line per
   hop.

Taint is tracked as **atoms** rather than bare descriptions:

* ``("param", i)`` — the value derives from parameter *i* (symbolic until
  a caller is known);
* ``("source", desc, line)`` — a fresh domain-memory alias created here
  (``load_view``/``malloc``/plan acquisition — the R2 source table);
* ``("call", name, line, (arg_atoms, ...))`` — the result of a call whose
  taint depends on the callee's summary (or, for unresolved callees, on
  the embedded argument atoms — PR 3's conservative propagation).

The flow walk itself is flow-*sensitive* exactly like PR 3's R2 checker:
sanitizers (``bytes()``, the copying readers, the ``ffi.marshal``
surface) stop taint, rebinding clears it, and the near-miss fixtures that
keep the rules honest still lint clean.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from typing import Optional

from .findings import Hop
from .model import FunctionInfo, ModuleModel, call_func_name
from .taint import CONSUMER_CALLS, SANITIZER_CALLS, SOURCE_ATTRS, SOURCE_CALLS
from .effects import collect_effect_sites
from . import portability as _r6
from . import ffi_boundary as _r7

#: Flow kinds a sink record may carry.
SINK_KINDS = ("return", "yield", "global", "attr", "container")

#: How a call argument is owned, for out-param escalation.
ARG_PARAM = "param"  # a parameter of the calling function (caller-owned)
ARG_LOCAL = "local"  # a function-local name
ARG_OWNED = "owned"  # a global or attribute expression (caller-owned)
ARG_EXPR = "expr"  # anything else


# ----------------------------------------------------------------------
# Facts: the cacheable, JSON-serializable per-file analysis product
# ----------------------------------------------------------------------


def _atoms_to_json(atoms: tuple) -> list:
    out = []
    for atom in atoms:
        if atom[0] == "call":
            out.append(
                [
                    "call",
                    atom[1],
                    atom[2],
                    [_atoms_to_json(arg) for arg in atom[3]],
                ]
            )
        else:
            out.append(list(atom))
    return out


def _atoms_from_json(data: list) -> tuple:
    out = []
    for atom in data:
        if atom[0] == "call":
            out.append(
                (
                    "call",
                    atom[1],
                    atom[2],
                    tuple(_atoms_from_json(arg) for arg in atom[3]),
                )
            )
        else:
            out.append(tuple(atom))
    return tuple(out)


@dataclass
class FunctionFacts:
    """Everything later passes need to know about one function."""

    qualname: str
    name: str
    path: str
    line: int
    class_name: Optional[str] = None
    params: tuple = ()
    is_domain_body: bool = False
    #: Sink flows: (kind, line, col, atoms, base) — ``base`` describes the
    #: store target's ownership for attr/container sinks, else ``None``.
    flows: list = field(default_factory=list)
    #: Every call site: (name, line, col) — the call-graph edges.
    calls: list = field(default_factory=list)
    #: Taint-relevant call sites: (name, line, col, args) where each arg
    #: is (atoms, kind) and kind is (ARG_*,) or (ARG_PARAM, i) etc.
    call_args: list = field(default_factory=list)
    #: Direct rewind-unsafe effect sites: (line, col, message core).
    effects: list = field(default_factory=list)
    #: R6: MPK-only idiom sites (line, col, description).
    r6_sites: list = field(default_factory=list)
    #: R6: does this function perform a backend capability check?
    r6_guard: bool = False
    #: R6: substrate-implementation code (backend classes, gate registers).
    r6_exempt: bool = False
    #: R7: raw boundary-crossing calls (line, col, name).
    r7_raw_calls: list = field(default_factory=list)
    #: R7: sandbox-entry declaration, when this is an FFI sandbox entry:
    #: (line, col, has_fallback, has_retries, wants_handle).
    sandbox: Optional[tuple] = None

    @property
    def skip_self(self) -> bool:
        return bool(
            self.class_name is not None
            and self.params
            and self.params[0] in ("self", "cls")
        )

    def arg_param_index(self, arg_index: int) -> int:
        """Map a call-site argument position to my parameter index."""
        return arg_index + (1 if self.skip_self else 0)

    def to_json(self) -> dict:
        return {
            "qualname": self.qualname,
            "name": self.name,
            "line": self.line,
            "class_name": self.class_name,
            "params": list(self.params),
            "is_domain_body": self.is_domain_body,
            "flows": [
                [kind, line, col, _atoms_to_json(atoms), list(base) if base else None]
                for kind, line, col, atoms, base in self.flows
            ],
            "calls": [list(c) for c in self.calls],
            "call_args": [
                [
                    name,
                    line,
                    col,
                    [
                        [_atoms_to_json(atoms), list(kind), kw]
                        for atoms, kind, kw in args
                    ],
                ]
                for name, line, col, args in self.call_args
            ],
            "effects": [list(e) for e in self.effects],
            "r6_sites": [list(s) for s in self.r6_sites],
            "r6_guard": self.r6_guard,
            "r6_exempt": self.r6_exempt,
            "r7_raw_calls": [list(c) for c in self.r7_raw_calls],
            "sandbox": list(self.sandbox) if self.sandbox else None,
        }

    @classmethod
    def from_json(cls, path: str, data: dict) -> "FunctionFacts":
        return cls(
            qualname=data["qualname"],
            name=data["name"],
            path=path,
            line=data["line"],
            class_name=data["class_name"],
            params=tuple(data["params"]),
            is_domain_body=data["is_domain_body"],
            flows=[
                (
                    kind,
                    line,
                    col,
                    _atoms_from_json(atoms),
                    tuple(base) if base else None,
                )
                for kind, line, col, atoms, base in data["flows"]
            ],
            calls=[tuple(c) for c in data["calls"]],
            call_args=[
                (
                    name,
                    line,
                    col,
                    tuple(
                        (_atoms_from_json(atoms), tuple(kind), kw)
                        for atoms, kind, kw in args
                    ),
                )
                for name, line, col, args in data["call_args"]
            ],
            effects=[tuple(e) for e in data["effects"]],
            r6_sites=[tuple(s) for s in data["r6_sites"]],
            r6_guard=data["r6_guard"],
            r6_exempt=data["r6_exempt"],
            r7_raw_calls=[tuple(c) for c in data["r7_raw_calls"]],
            sandbox=tuple(data["sandbox"]) if data["sandbox"] else None,
        )


@dataclass
class FileFacts:
    """One file's functions plus the report-time metadata."""

    path: str
    functions: list = field(default_factory=list)
    #: line -> set of suppressed rule ids (def-line extension applied).
    suppressions: dict = field(default_factory=dict)

    def to_json(self) -> dict:
        return {
            "functions": [fn.to_json() for fn in self.functions],
            "suppressions": {
                str(line): sorted(rules)
                for line, rules in sorted(self.suppressions.items())
            },
        }

    @classmethod
    def from_json(cls, path: str, data: dict) -> "FileFacts":
        return cls(
            path=path,
            functions=[
                FunctionFacts.from_json(path, fn) for fn in data["functions"]
            ],
            suppressions={
                int(line): set(rules)
                for line, rules in data["suppressions"].items()
            },
        )

    def is_suppressed(self, rule: str, line: int) -> bool:
        rules = self.suppressions.get(line)
        return rules is not None and (rule in rules or "ALL" in rules)


# ----------------------------------------------------------------------
# Extraction: ModuleModel -> FileFacts
# ----------------------------------------------------------------------


class _FlowWalker(ast.NodeVisitor):
    """Flow-sensitive taint-atom propagation over one function body.

    Same statement discipline as PR 3's R2 checker — sequential visit,
    rebinding clears, sanitizers stop taint — but values carry *atom
    sets* so param- and call-derived taint stays symbolic for the
    summary fixpoint to resolve.
    """

    def __init__(self, info: FunctionInfo, facts: FunctionFacts) -> None:
        self.facts = facts
        self.vals: dict[str, tuple] = {}
        self.globals_declared: set = set()
        self.local_names: set = set()
        args = info.node.args
        params = [
            a.arg
            for a in (
                args.posonlyargs
                + args.args
                + args.kwonlyargs
                + ([args.vararg] if args.vararg else [])
                + ([args.kwarg] if args.kwarg else [])
            )
        ]
        self.param_names = set(params)
        for i, name in enumerate(params):
            self.vals[name] = (("param", i),)
        for sub in ast.walk(info.node):
            if isinstance(sub, ast.Global):
                self.globals_declared.update(sub.names)

    # -- atoms ---------------------------------------------------------

    @staticmethod
    def _merge(*atom_groups) -> tuple:
        seen: dict = {}
        for group in atom_groups:
            for atom in group:
                seen.setdefault(atom, None)
        return tuple(seen)

    def atoms_of(self, node: Optional[ast.AST]) -> tuple:
        if node is None:
            return ()
        if isinstance(node, ast.Name):
            return self.vals.get(node.id, ())
        if isinstance(node, ast.Call):
            name = call_func_name(node)
            if name in SOURCE_CALLS:
                return (("source", SOURCE_CALLS[name], node.lineno),)
            if name in SANITIZER_CALLS or name in CONSUMER_CALLS:
                return ()
            arg_atoms = tuple(
                self.atoms_of(arg)
                for arg in list(node.args) + [kw.value for kw in node.keywords]
            )
            if name is None:
                # Call of an arbitrary expression: propagate argument
                # taint directly (no summary could resolve it).
                return self._merge(*arg_atoms)
            return (("call", name, node.lineno, arg_atoms),)
        if isinstance(node, ast.BinOp):
            return self._merge(self.atoms_of(node.left), self.atoms_of(node.right))
        if isinstance(node, ast.BoolOp):
            return self._merge(*(self.atoms_of(v) for v in node.values))
        if isinstance(node, ast.UnaryOp):
            return self.atoms_of(node.operand)
        if isinstance(node, ast.IfExp):
            return self._merge(self.atoms_of(node.body), self.atoms_of(node.orelse))
        if isinstance(node, ast.Subscript):
            return self.atoms_of(node.value)  # a slice of a view is a view
        if isinstance(node, ast.Attribute):
            if node.attr in SOURCE_ATTRS:
                return (("source", SOURCE_ATTRS[node.attr], node.lineno),)
            return self.atoms_of(node.value)
        if isinstance(node, ast.Starred):
            return self.atoms_of(node.value)
        if isinstance(node, (ast.Tuple, ast.List, ast.Set)):
            return self._merge(*(self.atoms_of(e) for e in node.elts))
        if isinstance(node, ast.Dict):
            return self._merge(*(self.atoms_of(v) for v in node.values))
        if isinstance(node, ast.NamedExpr):
            return self.atoms_of(node.value)
        if isinstance(node, ast.Compare):
            return ()  # booleans are values, not aliases
        return ()

    # -- sinks ---------------------------------------------------------

    def _flow(
        self, kind: str, site: ast.AST, atoms: tuple, base: Optional[tuple] = None
    ) -> None:
        if atoms:
            self.facts.flows.append(
                (kind, site.lineno, site.col_offset, atoms, base)
            )

    def _base_kind(self, node: ast.AST) -> tuple:
        """Ownership of a store-target base / call argument."""
        if isinstance(node, ast.Name):
            if node.id in self.param_names:
                params = list(self.facts.params)
                return (ARG_PARAM, params.index(node.id))
            if node.id in self.local_names:
                return (ARG_LOCAL, node.id)
            return (ARG_OWNED,)
        if isinstance(node, ast.Attribute):
            return (ARG_OWNED,)
        return (ARG_EXPR,)

    def _bind(self, target: ast.AST, atoms: tuple, site: ast.AST) -> None:
        if isinstance(target, ast.Name):
            name = target.id
            self.local_names.add(name)
            if not atoms:
                self.vals.pop(name, None)
                return
            if name in self.globals_declared:
                self._flow("global", site, atoms)
                return
            self.vals[name] = atoms
        elif isinstance(target, ast.Attribute):
            if atoms:
                self._flow("attr", site, atoms, self._base_kind(target.value))
        elif isinstance(target, ast.Subscript):
            base = target.value
            if not atoms:
                return
            if isinstance(base, ast.Name) and base.id in self.local_names:
                self.vals[base.id] = self._merge(
                    self.vals.get(base.id, ()), atoms
                )
            else:
                self._flow("container", site, atoms, self._base_kind(base))
        elif isinstance(target, (ast.Tuple, ast.List)):
            for elt in target.elts:
                self._bind(elt, atoms, site)

    # -- statements ----------------------------------------------------

    def visit_Assign(self, node: ast.Assign) -> None:
        atoms = self.atoms_of(node.value)
        for target in node.targets:
            self._bind(target, atoms, node)
        self.generic_visit(node.value)

    def visit_AnnAssign(self, node: ast.AnnAssign) -> None:
        if node.value is not None:
            self._bind(node.target, self.atoms_of(node.value), node)
            self.generic_visit(node.value)

    def visit_AugAssign(self, node: ast.AugAssign) -> None:
        atoms = self._merge(
            self.atoms_of(node.value), self.atoms_of(node.target)
        )
        self._bind(node.target, atoms, node)
        self.generic_visit(node.value)

    def visit_Return(self, node: ast.Return) -> None:
        self._flow("return", node, self.atoms_of(node.value))
        if node.value is not None:
            self.generic_visit(node.value)

    def visit_Yield(self, node: ast.Yield) -> None:
        self._flow("yield", node, self.atoms_of(node.value))
        self.generic_visit(node)

    def visit_Call(self, node: ast.Call) -> None:
        name = call_func_name(node)
        if name in CONSUMER_CALLS:
            for arg in node.args:
                if isinstance(arg, ast.Name):
                    self.vals.pop(arg.id, None)
        elif (
            name is not None
            and name not in SANITIZER_CALLS
            and name not in SOURCE_CALLS
        ):
            args = []
            interesting = False
            for arg in node.args:
                atoms = self.atoms_of(arg)
                kind = self._base_kind(arg)
                if atoms or kind[0] in (ARG_PARAM, ARG_OWNED):
                    interesting = True
                args.append((atoms, kind, None))
            for kw in node.keywords:
                if kw.arg is None:
                    continue
                atoms = self.atoms_of(kw.value)
                kind = self._base_kind(kw.value)
                if atoms or kind[0] in (ARG_PARAM, ARG_OWNED):
                    interesting = True
                args.append((atoms, kind, kw.arg))
            if interesting:
                self.facts.call_args.append(
                    (name, node.lineno, node.col_offset, tuple(args))
                )
        self.generic_visit(node)

    def visit_FunctionDef(self, node: ast.FunctionDef) -> None:
        pass  # nested scopes are analyzed on their own

    visit_AsyncFunctionDef = visit_FunctionDef

    def visit_Lambda(self, node: ast.Lambda) -> None:
        pass


def _iter_own_statements(node: ast.AST):
    """Walk a function body, *excluding* nested function/class scopes."""
    stack = list(ast.iter_child_nodes(node))
    while stack:
        sub = stack.pop()
        if isinstance(sub, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)):
            continue
        yield sub
        stack.extend(ast.iter_child_nodes(sub))


def extract_file_facts(model: ModuleModel) -> FileFacts:
    """Extract the whole-program facts for one parsed module."""
    facts = FileFacts(path=model.path, suppressions=dict(model.suppressions))
    module_defined = _r6.module_defined_names(model.tree)
    class_bases = _r6.class_base_names(model.tree)
    for info in model.functions:
        args = info.node.args
        params = tuple(
            a.arg
            for a in (
                args.posonlyargs
                + args.args
                + args.kwonlyargs
                + ([args.vararg] if args.vararg else [])
                + ([args.kwarg] if args.kwarg else [])
            )
        )
        fn = FunctionFacts(
            qualname=info.qualname,
            name=info.node.name,
            path=model.path,
            line=info.node.lineno,
            class_name=info.class_name,
            params=params,
            is_domain_body=info.is_domain_body,
        )
        if info.sandbox_decl is not None:
            decl = info.sandbox_decl
            fn.sandbox = (
                decl.line,
                decl.col,
                decl.has_fallback,
                decl.has_retries,
                decl.wants_handle,
            )
        # Taint flows + call-argument atoms (flow-sensitive walk).
        walker = _FlowWalker(info, fn)
        for stmt in info.node.body:
            walker.visit(stmt)
        # Call edges + R7 raw boundary calls (own statements only:
        # nested functions are their own nodes).
        for sub in _iter_own_statements(info.node):
            if isinstance(sub, ast.Call):
                name = call_func_name(sub)
                if name is not None:
                    fn.calls.append((name, sub.lineno, sub.col_offset))
                    if name in _r7.RAW_BOUNDARY_CALLS:
                        fn.r7_raw_calls.append(
                            (sub.lineno, sub.col_offset, name)
                        )
        # Direct rewind-unsafe effect sites (R3's local component).
        fn.effects = collect_effect_sites(info)
        # R6 portability facts.
        fn.r6_exempt = _r6.is_exempt(info, class_bases)
        if not fn.r6_exempt:
            fn.r6_sites = _r6.idiom_sites(info, module_defined)
        fn.r6_guard = _r6.has_guard(info)
        facts.functions.append(fn)
    return facts


# ----------------------------------------------------------------------
# Summaries: the bottom-up fixpoint
# ----------------------------------------------------------------------


@dataclass
class FunctionSummary:
    """What callers may assume about one function."""

    #: (description, witness chain) when the return value may alias
    #: domain memory; the chain's first hop is this function itself.
    returns_taint: Optional[tuple] = None
    #: Parameter indices whose taint may reach the return value.
    param_to_return: set = field(default_factory=set)
    #: param index -> (how, chain): the parameter's value escapes inside.
    param_escape: dict = field(default_factory=dict)
    #: param index -> (desc, chain): a fresh domain-memory alias is
    #: stored into the parameter's object (the out-param shape).
    taints_param: dict = field(default_factory=dict)
    #: (desc, how, chain) when a fresh alias escapes *inside* this
    #: function (global/attribute/container — not via the return value).
    alias_leak: Optional[tuple] = None
    #: (message core, chain) for the representative rewind-unsafe effect.
    effect: Optional[tuple] = None
    #: (call name, chain) for the representative raw FFI boundary call.
    raw_boundary: Optional[tuple] = None


_SINK_HOW = {
    "return": "is returned",
    "yield": "is yielded",
    "global": "is bound to a module global",
    "attr": "is stored into an object attribute",
    "container": "is stored into a caller-owned container",
}


class ProjectSummaries:
    """Summary table plus the atom-resolution helpers the rules share."""

    def __init__(self, graph) -> None:
        self.graph = graph
        self.summaries: dict[str, FunctionSummary] = {
            key: FunctionSummary() for key in graph.nodes
        }

    def __getitem__(self, key: str) -> FunctionSummary:
        return self.summaries[key]

    def get(self, key: str) -> Optional[FunctionSummary]:
        return self.summaries.get(key)

    # -- atom resolution ----------------------------------------------

    def resolve_atoms(
        self,
        fn,
        atoms: tuple,
        param_taints: Optional[dict] = None,
    ) -> tuple:
        """Resolve ``atoms`` in the frame of ``fn``.

        Returns ``(taint, params)``: ``taint`` is ``(desc, chain)`` with
        the chain ready to become a finding's call path (first hop =
        ``fn`` at the acquiring call), or ``None``; ``params`` is the set
        of parameter indices the value derives from (symbolic).
        ``param_taints`` maps a parameter index to a concrete taint for
        call-site evaluation.
        """
        params: set = set()
        for atom in atoms:
            if atom[0] == "param":
                params.add(atom[1])
                if param_taints and atom[1] in param_taints:
                    return param_taints[atom[1]], params
            elif atom[0] == "source":
                return (atom[1], ()), params
            elif atom[0] == "call":
                taint, sub_params = self._resolve_call_atom(
                    fn, atom, param_taints
                )
                params |= sub_params
                if taint is not None:
                    return taint, params
        return None, params

    def _resolve_call_atom(self, fn, atom, param_taints):
        _, name, line, arg_atom_lists = atom
        callee_key = self.graph.resolve(fn.path, name)
        params: set = set()
        if callee_key is None:
            # Unknown callee: PR 3's conservatism — a tainted argument
            # taints the result.
            for arg_atoms in arg_atom_lists:
                taint, sub_params = self.resolve_atoms(
                    fn, arg_atoms, param_taints
                )
                params |= sub_params
                if taint is not None:
                    return taint, params
            return None, params
        callee = self.graph.nodes[callee_key]
        summary = self.summaries[callee_key]
        if summary.returns_taint is not None:
            desc, chain = summary.returns_taint
            return (desc, (Hop(fn.qualname, fn.path, line),) + chain), params
        for i, arg_atoms in enumerate(arg_atom_lists):
            taint, sub_params = self.resolve_atoms(fn, arg_atoms, param_taints)
            if callee.arg_param_index(i) in summary.param_to_return:
                params |= sub_params
                if taint is not None:
                    return taint, params
        return None, params


def compute_summaries(graph) -> ProjectSummaries:
    """Bottom-up fixpoint over the call graph's SCC condensation."""
    table = ProjectSummaries(graph)
    for scc in graph.sccs():
        # Iterate the component until nothing changes; all summary fields
        # only ever go from absent to present (chains freeze on first
        # derivation, which the deterministic member order keeps stable).
        for _ in range(2 * len(scc) + 2):
            changed = False
            for key in scc:
                if _update_summary(table, key):
                    changed = True
            if not changed:
                break
    return table


def _update_summary(table: ProjectSummaries, key: str) -> bool:
    fn = table.graph.nodes[key]
    summary = table.summaries[key]
    changed = False

    # Flows: returns, escapes, out-params.
    for kind, line, col, atoms, base in fn.flows:
        taint, params = table.resolve_atoms(fn, atoms)
        if kind in ("return", "yield"):
            if taint is not None and summary.returns_taint is None:
                summary.returns_taint = _own_chain(fn, taint, line)
                changed = True
            new_params = params - summary.param_to_return
            if new_params:
                summary.param_to_return |= new_params
                changed = True
        else:
            how = _SINK_HOW[kind]
            if taint is not None and base is not None and base[0] == ARG_PARAM:
                if base[1] not in summary.taints_param:
                    summary.taints_param[base[1]] = _own_chain(fn, taint, line)
                    changed = True
            elif taint is not None:
                if summary.alias_leak is None:
                    desc, chain = _own_chain(fn, taint, line)
                    summary.alias_leak = (desc, how, chain)
                    changed = True
            for i in params:
                if i not in summary.param_escape:
                    summary.param_escape[i] = (
                        how,
                        (Hop(fn.qualname, fn.path, line),),
                    )
                    changed = True

    # Call sites: parameter forwarding and out-param transitivity.
    for name, line, col, args in fn.call_args:
        callee_key = table.graph.resolve(fn.path, name)
        if callee_key is None:
            continue
        callee = table.graph.nodes[callee_key]
        callee_summary = table.summaries[callee_key]
        for i, (atoms, kind, kw) in enumerate(args):
            pidx = _callee_param_index(callee, i, kw)
            if pidx is None:
                continue
            # My parameter forwarded into a callee that escapes it.
            if pidx in callee_summary.param_escape:
                how, chain = callee_summary.param_escape[pidx]
                _, params = table.resolve_atoms(fn, atoms)
                for p in params:
                    if p not in summary.param_escape:
                        summary.param_escape[p] = (
                            how,
                            (Hop(fn.qualname, fn.path, line),) + chain,
                        )
                        changed = True
            # The callee writes a fresh alias into my argument's object.
            if pidx in callee_summary.taints_param and kind[0] == ARG_PARAM:
                if kind[1] not in summary.taints_param:
                    desc, chain = callee_summary.taints_param[pidx]
                    summary.taints_param[kind[1]] = (
                        desc,
                        (Hop(fn.qualname, fn.path, line),) + chain,
                    )
                    changed = True

    # Transitive alias leaks / effects / raw boundary via plain calls.
    for name, line, col in fn.calls:
        callee_key = table.graph.resolve(fn.path, name)
        if callee_key is None:
            continue
        callee_summary = table.summaries[callee_key]
        hop = (Hop(fn.qualname, fn.path, line),)
        if callee_summary.alias_leak is not None and summary.alias_leak is None:
            desc, how, chain = callee_summary.alias_leak
            summary.alias_leak = (desc, how, hop + chain)
            changed = True
        if callee_summary.effect is not None and summary.effect is None and not fn.effects:
            msg, chain = callee_summary.effect
            summary.effect = (msg, hop + chain)
            changed = True
        if (
            callee_summary.raw_boundary is not None
            and summary.raw_boundary is None
            and not _r7.is_marshalling_module(fn.path)
        ):
            raw_name, chain = callee_summary.raw_boundary
            summary.raw_boundary = (raw_name, hop + chain)
            changed = True

    # Direct effects and raw boundary calls seed the transitive fields.
    if fn.effects and summary.effect is None:
        line, col, msg = fn.effects[0]
        summary.effect = (msg, (Hop(fn.qualname, fn.path, line),))
        changed = True
    if (
        fn.r7_raw_calls
        and summary.raw_boundary is None
        and not _r7.is_marshalling_module(fn.path)
    ):
        line, col, raw_name = fn.r7_raw_calls[0]
        summary.raw_boundary = (raw_name, (Hop(fn.qualname, fn.path, line),))
        changed = True

    return changed


def _own_chain(fn, taint: tuple, line: int) -> tuple:
    """Prefix ``taint``'s chain with this function's own hop.

    A local source has an empty chain — the hop anchors at the sink line;
    a call-derived taint already starts with ``fn``'s acquiring-call hop
    (``resolve_atoms`` adds it), so nothing is prepended.
    """
    desc, chain = taint
    if chain and chain[0].function == fn.qualname:
        return (desc, chain)
    return (desc, (Hop(fn.qualname, fn.path, line),) + chain)


def _callee_param_index(callee, arg_index: int, kw: Optional[str]) -> Optional[int]:
    """Parameter index of a call-site argument, or ``None`` if unmappable."""
    if kw is not None:
        if kw in callee.params:
            return list(callee.params).index(kw)
        return None
    return callee.arg_param_index(arg_index)
