"""R1 — structural enter/exit pairing on all control-flow paths.

The runtime's bracket idioms are ``frame = handle.push_frame(...)`` /
``handle.pop_frame(frame)`` and ``context = contexts.push(...)`` /
``contexts.pop(context)``. A push whose pop is skipped on *any* path —
an early ``return``, an exception swallowed by a bare ``except``, a
fall-through branch — leaks an activation record past the bracket and
skips its canary check, which is exactly the class of bug the C library
can only catch at fault time.

The checker runs a small abstract interpreter over each function body.
The abstract state is the set of open bracket tokens (the names pushed
frames were bound to); executing a statement list yields the possible
states at each kind of exit (fall-through, ``return``, ``raise``,
``break``, ``continue``). ``try``/``finally`` is modelled faithfully —
an exception is assumed possible at every statement boundary of a
``try`` body, and ``finally`` blocks run on every channel — so the
repo's push-then-``try``/``finally``-pop idiom verifies, while a pop
only on the happy path does not.

One level of interprocedural resolution keeps the runtime's own split
honest: a same-module function whose body contains the pop ("a closer",
e.g. ``SdradRuntime._leave``) counts as a pop site for any token passed
to it as an argument.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from typing import Optional

from .findings import Finding
from .model import ModuleModel, call_func_name, call_receiver_path

#: Method names that open a bracket. ``push`` only counts when called on a
#: receiver path ending in ``contexts`` (the ContextStack idiom).
PUSH_NAMES = {"push_frame", "push"}
POP_NAMES = {"pop_frame", "pop"}

State = frozenset  # of open token names
States = frozenset  # of State


@dataclass
class Outcomes:
    """Possible abstract states at each exit channel of a statement list."""

    fall: set = field(default_factory=set)
    ret: set = field(default_factory=set)
    raise_: set = field(default_factory=set)
    brk: set = field(default_factory=set)
    cont: set = field(default_factory=set)

    def merge(self, other: "Outcomes") -> None:
        self.fall |= other.fall
        self.ret |= other.ret
        self.raise_ |= other.raise_
        self.brk |= other.brk
        self.cont |= other.cont


def _is_bracket_call(call: ast.Call) -> bool:
    name = call_func_name(call)
    if name == "push_frame":
        return True
    if name == "push":
        recv = call_receiver_path(call)
        return recv is not None and recv.split(".")[-1] == "contexts"
    return False


def _is_pop_call(call: ast.Call) -> bool:
    name = call_func_name(call)
    if name == "pop_frame":
        return True
    if name == "pop":
        recv = call_receiver_path(call)
        return recv is not None and recv.split(".")[-1] == "contexts"
    return False


def _collect_closers(model: ModuleModel) -> set:
    """Names of same-module functions whose body contains a pop call."""
    closers = set()
    for info in model.functions:
        for call in model.iter_calls(info.node):
            if _is_pop_call(call):
                closers.add(info.node.name)
                break
    return closers


class _PairChecker:
    def __init__(self, model: ModuleModel, qualname: str, closers: set) -> None:
        self.model = model
        self.qualname = qualname
        self.closers = closers
        self.push_lines: dict[str, tuple[int, int, str]] = {}
        self.reported: set = set()
        self.findings: list[Finding] = []
        self._synth_names: dict[int, str] = {}

    # -- helpers --------------------------------------------------------

    def _track_push(self, call: ast.Call, target: Optional[str]) -> str:
        kind = call_func_name(call) or "push"
        if target is None:
            # Anonymous pushes keep one token per call site, even when a
            # loop body is interpreted more than once.
            target = self._synth_names.setdefault(
                id(call), f"<anonymous#{len(self._synth_names) + 1}>"
            )
        self.push_lines[target] = (call.lineno, call.col_offset, kind)
        return target

    def _closed_tokens(self, stmt: ast.stmt, state: State) -> set:
        """Tokens closed by pop calls / closer calls inside ``stmt``."""
        closed = set()
        for call in ast.walk(stmt):
            if not isinstance(call, ast.Call):
                continue
            if _is_pop_call(call):
                if call.args and isinstance(call.args[0], ast.Name):
                    closed.add(call.args[0].id)
                else:
                    # pop of something we cannot name: close everything
                    # rather than report false positives.
                    closed |= set(state)
            else:
                name = call_func_name(call)
                if name in self.closers:
                    for arg in call.args:
                        if isinstance(arg, ast.Name) and arg.id in state:
                            closed.add(arg.id)
        return closed

    def _pushes_in(self, stmt: ast.stmt) -> list:
        """(call, bound-name-or-None) for each bracket push in ``stmt``."""
        pushes = []
        bound: Optional[str] = None
        if isinstance(stmt, ast.Assign) and isinstance(stmt.value, ast.Call):
            if _is_bracket_call(stmt.value) and len(stmt.targets) == 1:
                target = stmt.targets[0]
                if isinstance(target, ast.Name):
                    bound = target.id
        for call in ast.walk(stmt):
            if isinstance(call, ast.Call) and _is_bracket_call(call):
                is_bound = (
                    bound is not None
                    and isinstance(stmt, ast.Assign)
                    and call is stmt.value
                )
                pushes.append((call, bound if is_bound else None))
        return pushes

    def _apply_simple(self, stmt: ast.stmt, states: set) -> set:
        """Transfer function for a non-control-flow statement."""
        tokens = [
            self._track_push(call, target)
            for call, target in self._pushes_in(stmt)
        ]
        out = set()
        for state in states:
            new = set(state)
            new.update(tokens)
            new -= self._closed_tokens(stmt, frozenset(new))
            out.add(frozenset(new))
        return out

    def _apply_exprs(self, exprs: list, states: set) -> set:
        """Transfer function for header expressions only (loop test/iter,
        with-items) — the statement's *body* is interpreted separately."""
        calls = [
            call
            for expr in exprs
            if expr is not None
            for call in ast.walk(expr)
            if isinstance(call, ast.Call)
        ]
        tokens = [
            self._track_push(call, None)
            for call in calls
            if _is_bracket_call(call)
        ]
        out = set()
        for state in states:
            new = set(state)
            new.update(tokens)
            out.add(frozenset(new))
        return out

    # -- the interpreter -------------------------------------------------

    def run(self, body: list, states: set) -> Outcomes:
        out = Outcomes()
        current = set(states)
        for stmt in body:
            if not current:
                break
            current = self._step(stmt, current, out)
        out.fall |= current
        return out

    def _step(self, stmt: ast.stmt, states: set, out: Outcomes) -> set:
        if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)):
            return states  # nested scopes are analyzed separately
        if isinstance(stmt, ast.Return):
            # A push in the returned expression transfers the bracket
            # obligation to the caller (the delegating-facade idiom, e.g.
            # ``DomainHandle.push_frame``): apply pops only.
            out.ret |= {
                frozenset(
                    set(state) - self._closed_tokens(stmt, frozenset(state))
                )
                for state in states
            }
            return set()
        if isinstance(stmt, ast.Raise):
            out.raise_ |= self._apply_simple(stmt, states)
            return set()
        if isinstance(stmt, ast.Break):
            out.brk |= states
            return set()
        if isinstance(stmt, ast.Continue):
            out.cont |= states
            return set()
        if isinstance(stmt, ast.If):
            sub = self.run(stmt.body, states)
            sub.merge(self.run(stmt.orelse, states))
            out.merge(Outcomes(ret=sub.ret, raise_=sub.raise_, brk=sub.brk, cont=sub.cont))
            return sub.fall
        if isinstance(stmt, (ast.While, ast.For, ast.AsyncFor)):
            return self._loop(stmt, states, out)
        if isinstance(stmt, ast.Try):
            return self._try(stmt, states, out)
        if isinstance(stmt, (ast.With, ast.AsyncWith)):
            entry = self._apply_exprs(
                [item.context_expr for item in stmt.items], states
            )
            sub = self.run(stmt.body, entry)
            out.merge(Outcomes(ret=sub.ret, raise_=sub.raise_, brk=sub.brk, cont=sub.cont))
            return sub.fall
        return self._apply_simple(stmt, states)

    def _loop(self, stmt, states: set, out: Outcomes) -> set:
        header = (
            [stmt.test] if isinstance(stmt, ast.While) else [stmt.iter]
        )
        head = self._apply_exprs(header, states)
        once = self.run(stmt.body, head)
        again = self.run(stmt.body, once.fall | once.cont)
        out.merge(Outcomes(ret=once.ret | again.ret, raise_=once.raise_ | again.raise_))
        infinite = (
            isinstance(stmt, ast.While)
            and isinstance(stmt.test, ast.Constant)
            and bool(stmt.test.value)
        )
        exits = once.brk | again.brk
        if not infinite:
            exits |= head | once.fall | again.fall | once.cont | again.cont
        orelse = self.run(getattr(stmt, "orelse", []) or [], exits or head)
        out.merge(Outcomes(ret=orelse.ret, raise_=orelse.raise_))
        return orelse.fall if (exits or not infinite) else set()

    def _try(self, stmt: ast.Try, states: set, out: Outcomes) -> set:
        # An exception may fire at any statement boundary of the body.
        may_raise: set = set(states)
        current = set(states)
        body_out = Outcomes()
        for sub in stmt.body:
            if not current:
                break
            may_raise |= current
            current = self._step(sub, current, body_out)
        body_out.fall |= current

        handler_out = Outcomes()
        handler_in = may_raise | body_out.raise_
        if stmt.handlers:
            for handler in stmt.handlers:
                handler_out.merge(self.run(handler.body, handler_in))
            unhandled: set = set(handler_out.raise_)
        else:
            unhandled = set(handler_in)

        orelse_out = self.run(stmt.orelse, body_out.fall)

        def through_finally(channel: set) -> set:
            if not stmt.finalbody or not channel:
                return channel
            fin = self.run(stmt.finalbody, channel)
            # return/raise inside finally replace the channel; fold their
            # states into the same channel conservatively.
            return fin.fall | fin.ret | fin.raise_

        out.merge(
            Outcomes(
                ret=through_finally(body_out.ret | handler_out.ret | orelse_out.ret),
                raise_=through_finally(unhandled | orelse_out.raise_),
                brk=through_finally(body_out.brk | handler_out.brk | orelse_out.brk),
                cont=through_finally(body_out.cont | handler_out.cont | orelse_out.cont),
            )
        )
        return through_finally(handler_out.fall | orelse_out.fall)

    # -- reporting -------------------------------------------------------

    def report(self, outcomes: Outcomes) -> None:
        leaky: dict[str, str] = {}
        for channel, label in (
            (outcomes.fall, "falls off the end"),
            (outcomes.ret, "returns"),
            (outcomes.raise_, "raises"),
        ):
            for state in channel:
                for token in state:
                    leaky.setdefault(token, label)
        for token, label in leaky.items():
            if token not in self.push_lines or token in self.reported:
                continue
            self.reported.add(token)
            line, col, kind = self.push_lines[token]
            pop = "pop_frame" if kind == "push_frame" else "pop"
            self.findings.append(
                Finding(
                    rule="R1",
                    path=self.model.path,
                    line=line,
                    col=col,
                    qualname=self.qualname,
                    message=(
                        f"{kind}({token!r}) is not matched by {pop} on a path "
                        f"that {label}; bracket it with try/finally"
                    ),
                )
            )


def check(model: ModuleModel) -> list:
    """Run R1 over every function of ``model``."""
    closers = _collect_closers(model)
    findings: list[Finding] = []
    for info in model.functions:
        checker = _PairChecker(model, info.qualname, closers)
        outcomes = checker.run(info.node.body, {frozenset()})
        checker.report(outcomes)
        findings.extend(checker.findings)
    return findings
