"""CLI: ``python -m repro.analysis [paths] [--json|--format sarif] ...``.

Exit codes: 0 — clean (or everything baselined/suppressed); 1 — new
findings; 2 — usage or parse errors.
"""

from __future__ import annotations

import argparse
import json
import os
import sys

from . import RULES, baseline as baseline_mod
from . import sarif as sarif_mod
from .cache import DEFAULT_CACHE
from .runner import lint_paths


def _default_paths() -> list:
    """Prefer ./src/repro (repo-root invocation); fall back to the
    installed package directory."""
    candidate = os.path.join("src", "repro")
    if os.path.isdir(candidate):
        return [candidate]
    return [os.path.dirname(os.path.abspath(__file__ + "/.."))]


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.analysis",
        description="sdradlint: whole-program static verification of SDRaD "
        "compartment invariants (R1 pairing, R2 heap escape, R3 rewind-unsafe "
        "effects, R4 WRPKRU gadgets, R5 interprocedural escape, R6 backend "
        "portability, R7 FFI boundary integrity).",
    )
    parser.add_argument(
        "paths", nargs="*", help="files or directories (default: src/repro)"
    )
    parser.add_argument(
        "--json",
        action="store_true",
        help="machine-readable JSON findings (alias for --format json)",
    )
    parser.add_argument(
        "--format",
        choices=("text", "json", "sarif"),
        default=None,
        help="output format (default: text)",
    )
    parser.add_argument(
        "--rules",
        help="comma-separated subset of rules to run (e.g. R1,R4)",
    )
    parser.add_argument(
        "--baseline",
        default=baseline_mod.DEFAULT_BASELINE,
        help=f"baseline file (default: {baseline_mod.DEFAULT_BASELINE})",
    )
    parser.add_argument(
        "--no-baseline",
        action="store_true",
        help="ignore the baseline file (report everything)",
    )
    parser.add_argument(
        "--write-baseline",
        action="store_true",
        help="accept all current findings into the baseline and exit 0",
    )
    parser.add_argument(
        "--no-cache",
        action="store_true",
        help="disable the incremental summary cache (full re-analysis)",
    )
    parser.add_argument(
        "--cache",
        default=DEFAULT_CACHE,
        help=f"summary cache file (default: {DEFAULT_CACHE})",
    )
    parser.add_argument(
        "--changed-only",
        action="store_true",
        help="lint only files changed vs merge-base HEAD origin/main "
        "(full run when that cannot be computed)",
    )
    parser.add_argument(
        "--list-rules", action="store_true", help="describe the rules and exit"
    )
    args = parser.parse_args(argv)

    if args.list_rules:
        for rule, description in RULES.items():
            print(f"{rule}  {description}")
        return 0

    fmt = args.format or ("json" if args.json else "text")

    rules = None
    if args.rules:
        rules = {part.strip().upper() for part in args.rules.split(",")}
        unknown = rules - set(RULES)
        if unknown:
            print(f"unknown rule(s): {', '.join(sorted(unknown))}", file=sys.stderr)
            return 2

    result = lint_paths(
        args.paths or _default_paths(),
        rules,
        use_cache=not args.no_cache,
        cache_path=args.cache,
        changed_only=args.changed_only,
    )
    for path, message in result.errors:
        print(f"{path}: {message}", file=sys.stderr)

    findings = result.sorted_findings()

    if args.write_baseline:
        baseline_mod.save(args.baseline, findings)
        print(
            f"sdradlint: baselined {len(findings)} finding(s) "
            f"into {args.baseline}"
        )
        return 0

    entries = {} if args.no_baseline else baseline_mod.load(args.baseline)
    new, baselined = baseline_mod.split(findings, entries)

    if fmt == "json":
        print(
            json.dumps(
                {
                    "files": result.files,
                    "findings": [f.to_dict() for f in new],
                    "baselined": [f.to_dict() for f in baselined],
                    "suppressed": len(result.suppressed),
                },
                indent=2,
            )
        )
    elif fmt == "sarif":
        print(sarif_mod.render(new))
    else:
        for finding in new:
            print(finding.render())
        summary = (
            f"sdradlint: {result.files} file(s), {len(new)} finding(s)"
            f", {len(baselined)} baselined, {len(result.suppressed)} suppressed"
        )
        print(summary)

    if result.errors:
        return 2
    return 1 if new else 0


if __name__ == "__main__":
    raise SystemExit(main())
