"""sdradlint: static verification of SDRaD compartment invariants.

The runtime only notices a broken invariant at fault time — a leaked domain
pointer, an unpopped stack frame, a side effect a rewind cannot undo. ERIM
(Vahldiek-Oberwagner et al., USENIX Security '19) showed that PKU-safety
properties can instead be enforced *statically* by scanning for unsafe
WRPKRU occurrences, and rule-based verification frameworks like Klever
demonstrate that API-contract checking scales to whole codebases. This
package brings both ideas to the reproduction: an ``ast``-based analyzer
that checks seven domain-safety rules over the repo's own sources before a
single simulated request runs.

Since PR 9 the analyzer is *whole-program*: a project-wide call graph
(:mod:`.callgraph`) with per-function effect/escape summaries computed
bottom-up over SCCs (:mod:`.summaries`) lets R2/R3 see through helper
calls, powers the purely interprocedural rules R5–R7, and annotates every
cross-function finding with a call-path witness (``f -> g -> h``, one
file:line per hop). An incremental cache (:mod:`.cache`) keyed by file
content hash keeps warm runs fast — and byte-identical to ``--no-cache``,
because the whole-program layer is always recomputed from cached facts.

Rules
-----

R1  **enter/exit pairing** — every ``push_frame`` (and ``contexts.push``)
    must be matched by its pop on *all* control-flow paths, the structural
    analogue of "every ``sdrad_enter`` has a ``sdrad_exit``".
R2  **domain-heap escape** — no value aliasing a domain's heap (raw
    ``malloc``/``alloca`` addresses, ``load_view`` views) may escape a
    domain body to module globals, object attributes or the return value
    without being materialised (``bytes(...)``) or marshalled through the
    ``ffi.marshal``/``ffi.serialization`` API — including sinks reached
    through a helper the body hands the value to.
R3  **rewind-unsafe side effects** — a rewindable domain body must not
    touch files, sockets, processes or module globals: a rewind discards
    the domain's memory but cannot undo an external write. Effects buried
    any number of helper calls deep report at the body's call site with a
    witness to the actual effect.
R4  **WRPKRU gadgets** — ERIM-style scan of the simulated instruction/API
    stream: every PKRU-write site must sit inside the entry-gate sequence
    (a function that brackets the write with ``contexts.push``/``pop``, or
    one only reachable from such a gate), including the entry-ticket
    replay path of the re-entry cache.
R5  **interprocedural heap escape** — a helper *returns* a domain-memory
    alias the body then leaks, stores a fresh alias into a caller-owned
    argument (out-param escape), or leaks an alias to trusted state
    itself while reachable from a domain body.
R6  **backend portability** — MPK-only idioms (``PkruRegister``/keyvirt/
    pkey-count assumptions, raw gate-state pokes) reachable from code not
    guarded by a backend capability check; per-backend gate spellings come
    from :func:`repro.memory.backends.gate_idiom_table`.
R7  **FFI boundary integrity** — every ``repro.ffi`` sandbox entry must
    declare an alternate action (``fallback=``/``retries=``), marshal
    through ``repro.ffi.serialization`` rather than the raw copy
    primitives, and never leak the raw domain handle across the boundary.

Usage::

    python -m repro.analysis [paths] [--json | --format sarif]
                             [--baseline FILE] [--no-cache] [--changed-only]
    # or: make lint-domains

Per-rule suppressions use ``# sdradlint: ignore[R2]`` on the offending
line (or the ``def`` line to cover a whole function), and a baseline file
keeps pre-existing findings from blocking CI.
"""

from .findings import Finding, Hop, Severity
from .runner import LintResult, lint_paths, lint_source

__all__ = [
    "Finding",
    "Hop",
    "Severity",
    "LintResult",
    "lint_paths",
    "lint_source",
    "RULES",
]

#: Rule id -> short description (the analyzer's public contract).
RULES = {
    "R1": "unpaired domain enter/exit (push_frame/pop_frame, contexts.push/pop)",
    "R2": "domain-heap value escapes the domain body unmarshalled",
    "R3": "rewind-unsafe side effect inside a rewindable domain body",
    "R4": "PKRU write outside the entry-gate sequence (WRPKRU gadget)",
    "R5": "domain-heap value escapes interprocedurally (helper return/out-param)",
    "R6": "MPK-only idiom reachable without a backend capability check",
    "R7": "FFI sandbox entry violates the boundary contract (marshal/fallback/handle)",
}
