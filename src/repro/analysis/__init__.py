"""sdradlint: static verification of SDRaD compartment invariants.

The runtime only notices a broken invariant at fault time — a leaked domain
pointer, an unpopped stack frame, a side effect a rewind cannot undo. ERIM
(Vahldiek-Oberwagner et al., USENIX Security '19) showed that PKU-safety
properties can instead be enforced *statically* by scanning for unsafe
WRPKRU occurrences, and rule-based verification frameworks like Klever
demonstrate that API-contract checking scales to whole codebases. This
package brings both ideas to the reproduction: an ``ast``-based analyzer
that checks four domain-safety rules over the repo's own sources before a
single simulated request runs.

Rules
-----

R1  **enter/exit pairing** — every ``push_frame`` (and ``contexts.push``)
    must be matched by its pop on *all* control-flow paths, the structural
    analogue of "every ``sdrad_enter`` has a ``sdrad_exit``".
R2  **domain-heap escape** — no value aliasing a domain's heap (raw
    ``malloc``/``alloca`` addresses, ``load_view`` views) may escape a
    domain body to module globals, object attributes or the return value
    without being materialised (``bytes(...)``) or marshalled through the
    ``ffi.marshal``/``ffi.serialization`` API.
R3  **rewind-unsafe side effects** — a rewindable domain body must not
    touch files, sockets, processes or module globals: a rewind discards
    the domain's memory but cannot undo an external write.
R4  **WRPKRU gadgets** — ERIM-style scan of the simulated instruction/API
    stream: every PKRU-write site must sit inside the entry-gate sequence
    (a function that brackets the write with ``contexts.push``/``pop``, or
    one only reachable from such a gate), including the entry-ticket
    replay path of the re-entry cache.

Usage::

    python -m repro.analysis [paths] [--json] [--baseline FILE]
    # or: make lint-domains

Per-rule suppressions use ``# sdradlint: ignore[R2]`` on the offending
line (or the ``def`` line to cover a whole function), and a baseline file
keeps pre-existing findings from blocking CI.
"""

from .findings import Finding, Severity
from .runner import LintResult, lint_paths, lint_source

__all__ = [
    "Finding",
    "Severity",
    "LintResult",
    "lint_paths",
    "lint_source",
    "RULES",
]

#: Rule id -> short description (the analyzer's public contract).
RULES = {
    "R1": "unpaired domain enter/exit (push_frame/pop_frame, contexts.push/pop)",
    "R2": "domain-heap value escapes the domain body unmarshalled",
    "R3": "rewind-unsafe side effect inside a rewindable domain body",
    "R4": "PKRU write outside the entry-gate sequence (WRPKRU gadget)",
}
