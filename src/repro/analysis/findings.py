"""Finding records: what a rule reports and how CI consumes it.

A finding pins a rule violation to a file, line and enclosing function.
The *fingerprint* identifies a finding across unrelated edits — it hashes
the rule, the file, the enclosing function's qualified name and the
message core, but **not** the line number, so reformatting a module does
not churn the baseline.

Interprocedural findings (the summary-based R2/R3/R5/R6/R7 checks) carry a
*call-path witness*: the chain of hops ``f -> g -> h`` from the reported
site down to the function that actually performs the escape or effect,
each hop pinned to a file and line. The witness lives in ``call_path`` —
rendered after the message and exported in ``--json``/``--format sarif``
output — but is deliberately **not** part of the fingerprint: a helper
moving by a few lines must not churn the baseline.
"""

from __future__ import annotations

import enum
import hashlib
from dataclasses import dataclass, field
from typing import Any, Optional


class Severity(enum.Enum):
    """How bad is a violation of this rule?"""

    #: Invariant violation the runtime would only catch at fault time.
    ERROR = "error"
    #: Suspicious idiom that deserves a justified suppression.
    WARNING = "warning"


@dataclass(frozen=True)
class Hop:
    """One step of a call-path witness: a function at a file:line."""

    function: str
    path: str
    line: int

    def to_dict(self) -> dict[str, Any]:
        return {"function": self.function, "path": self.path, "line": self.line}

    @classmethod
    def from_dict(cls, data: dict) -> "Hop":
        return cls(
            function=data["function"], path=data["path"], line=data["line"]
        )

    def render(self) -> str:
        return f"{self.function} ({self.path}:{self.line})"


@dataclass(frozen=True)
class Finding:
    """One rule violation at one site."""

    rule: str  # "R1".."R7"
    path: str  # repo-relative path of the offending file
    line: int  # 1-based line of the offending site
    col: int  # 0-based column
    qualname: str  # enclosing function ("<module>" at top level)
    message: str  # human-readable description
    severity: Severity = Severity.ERROR
    #: Interprocedural witness: reported site first, origin site last.
    call_path: tuple = ()
    extra: dict[str, Any] = field(default_factory=dict, compare=False)

    @property
    def fingerprint(self) -> str:
        """Stable identity for baselining (line-number independent)."""
        payload = "\x1f".join((self.rule, self.path, self.qualname, self.message))
        return hashlib.sha256(payload.encode("utf-8")).hexdigest()[:16]

    def to_dict(self) -> dict[str, Any]:
        """JSON-friendly form (the machine-readable CI output)."""
        return {
            "rule": self.rule,
            "severity": self.severity.value,
            "path": self.path,
            "line": self.line,
            "col": self.col,
            "function": self.qualname,
            "message": self.message,
            "call_path": [hop.to_dict() for hop in self.call_path],
            "fingerprint": self.fingerprint,
        }

    @classmethod
    def from_dict(cls, data: dict) -> "Finding":
        """Rebuild a finding from :meth:`to_dict` output (cache rehydration)."""
        return cls(
            rule=data["rule"],
            path=data["path"],
            line=data["line"],
            col=data["col"],
            qualname=data["function"],
            message=data["message"],
            severity=Severity(data["severity"]),
            call_path=tuple(
                Hop.from_dict(hop) for hop in data.get("call_path", ())
            ),
        )

    def witness(self) -> Optional[str]:
        """``f (a.py:3) -> g (b.py:7)`` call-path text, or ``None``."""
        if not self.call_path:
            return None
        return " -> ".join(hop.render() for hop in self.call_path)

    def render(self) -> str:
        """One-line ``path:line:col: rule message`` diagnostic."""
        text = (
            f"{self.path}:{self.line}:{self.col + 1}: "
            f"{self.rule} [{self.severity.value}] {self.message} "
            f"(in {self.qualname})"
        )
        witness = self.witness()
        if witness is not None:
            text += f" [witness: {witness}]"
        return text
