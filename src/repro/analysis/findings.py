"""Finding records: what a rule reports and how CI consumes it.

A finding pins a rule violation to a file, line and enclosing function.
The *fingerprint* identifies a finding across unrelated edits — it hashes
the rule, the file, the enclosing function's qualified name and the
message core, but **not** the line number, so reformatting a module does
not churn the baseline.
"""

from __future__ import annotations

import enum
import hashlib
from dataclasses import dataclass, field
from typing import Any


class Severity(enum.Enum):
    """How bad is a violation of this rule?"""

    #: Invariant violation the runtime would only catch at fault time.
    ERROR = "error"
    #: Suspicious idiom that deserves a justified suppression.
    WARNING = "warning"


@dataclass(frozen=True)
class Finding:
    """One rule violation at one site."""

    rule: str  # "R1".."R4"
    path: str  # repo-relative path of the offending file
    line: int  # 1-based line of the offending site
    col: int  # 0-based column
    qualname: str  # enclosing function ("<module>" at top level)
    message: str  # human-readable description
    severity: Severity = Severity.ERROR
    extra: dict[str, Any] = field(default_factory=dict, compare=False)

    @property
    def fingerprint(self) -> str:
        """Stable identity for baselining (line-number independent)."""
        payload = "\x1f".join((self.rule, self.path, self.qualname, self.message))
        return hashlib.sha256(payload.encode("utf-8")).hexdigest()[:16]

    def to_dict(self) -> dict[str, Any]:
        """JSON-friendly form (the machine-readable CI output)."""
        return {
            "rule": self.rule,
            "severity": self.severity.value,
            "path": self.path,
            "line": self.line,
            "col": self.col,
            "function": self.qualname,
            "message": self.message,
            "fingerprint": self.fingerprint,
        }

    def render(self) -> str:
        """One-line ``path:line:col: rule message`` diagnostic."""
        return (
            f"{self.path}:{self.line}:{self.col + 1}: "
            f"{self.rule} [{self.severity.value}] {self.message} "
            f"(in {self.qualname})"
        )
