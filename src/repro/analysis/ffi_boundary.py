"""R7 — FFI boundary integrity for SDRaD-FFI sandbox entries.

The ROADMAP's SDRaD-FFI front-end (after Gülmez et al.'s "Friend or Foe
Inside?") turns annotated functions into sandboxed domain entries.  The
whole point of the annotation contract is that the *boundary* stays
trustworthy: arguments and results cross as serialized copies, never as
raw references, and every entry declares what happens when its domain is
discarded mid-call.  This rule enforces the contract statically for every
sandbox entry (a function decorated ``@sandboxed`` or passed to a
``sandboxed(...)`` factory — :mod:`repro.analysis.model` records the
declaration site and keywords):

* **alternate action** — the declaration must carry ``fallback=`` or a
  non-zero ``retries=``; otherwise a violation inside the entry
  escalates straight to the caller, which is exactly the crash the
  sandbox was supposed to absorb;
* **no raw boundary crossings** — the entry must not reach
  ``copy_into``/``copy_out``/``raw_store``/``raw_load`` (directly or
  through helpers; witnessed via the summary chain): bytes cross the
  boundary through :mod:`repro.ffi.serialization`-backed marshalling,
  whose home modules (``ffi/marshal.py``, ``ffi/serialization.py``) are
  the sanctioned implementation and therefore exempt;
* **no raw reference leaks** — an entry that requested the live domain
  handle (``wants_handle=True``) must not return/yield/store it or pass
  it to a helper that escapes it: the handle outside the call is a live
  capability into a domain the runtime may already have discarded.
"""

from __future__ import annotations

from .findings import Finding, Hop

#: The raw boundary-crossing primitives (runtime/address-space surface).
RAW_BOUNDARY_CALLS = frozenset(
    {"copy_into", "copy_out", "raw_store", "raw_load"}
)

#: Module paths that *implement* marshalling — the sanctioned users of
#: the raw primitives.  Raw-boundary taint neither seeds nor propagates
#: inside them.
_MARSHAL_SUFFIXES = (
    "ffi/marshal.py",
    "ffi/serialization.py",
)


def is_marshalling_module(path: str) -> bool:
    return path.replace("\\", "/").endswith(_MARSHAL_SUFFIXES)


#: Injected taint for the entry's first parameter when it asked for the
#: live handle (``wants_handle=True``): :meth:`resolve_atoms` then tracks
#: the handle through helper param-to-return flows with summary
#: precision — ``size = measure(handle); return size`` stays clean when
#: ``measure`` does not return its argument.
_HANDLE_DESC = "raw domain handle"
_HANDLE_TAINTS = {0: (_HANDLE_DESC, ())}


def _carries_handle(summaries, fn, atoms: tuple) -> bool:
    taint, _params = summaries.resolve_atoms(fn, atoms, _HANDLE_TAINTS)
    return taint is not None and taint[0] == _HANDLE_DESC


_LEAK_HOW = {
    "return": "returns the raw domain handle across the FFI boundary",
    "yield": "yields the raw domain handle across the FFI boundary",
    "global": "binds the raw domain handle to a module global",
    "attr": "stores the raw domain handle into an object attribute",
    "container": "stores the raw domain handle into a caller-owned container",
}


def check_project(facts_by_path: dict, graph, summaries) -> list:
    """Run R7 over every sandbox entry of the project."""
    findings: list = []
    for path in sorted(facts_by_path):
        facts = facts_by_path[path]
        for fn in facts.functions:
            if fn.sandbox is None:
                continue
            decl_line, decl_col, has_fallback, has_retries, wants_handle = (
                fn.sandbox
            )
            key = f"{path}::{fn.qualname}"

            # (a) alternate action declared?
            if not (has_fallback or has_retries):
                findings.append(
                    Finding(
                        rule="R7",
                        path=path,
                        line=decl_line,
                        col=decl_col,
                        qualname=fn.qualname,
                        message=(
                            "sandbox entry declares no alternate action — "
                            "add fallback= (or retries=) so a domain "
                            "violation degrades instead of escalating to "
                            "the caller"
                        ),
                    )
                )

            # (b) raw boundary crossings, direct then through helpers.
            for line, col, name in fn.r7_raw_calls:
                findings.append(
                    Finding(
                        rule="R7",
                        path=path,
                        line=line,
                        col=col,
                        qualname=fn.qualname,
                        message=(
                            f"sandbox entry crosses the domain boundary "
                            f"with raw {name}() — marshal through "
                            f"repro.ffi.serialization instead"
                        ),
                    )
                )
            raw_seen = {(line, col) for line, col, _ in fn.r7_raw_calls}
            for name, line, col in fn.calls:
                callee_key = graph.resolve(path, name)
                if callee_key is None or (line, col) in raw_seen:
                    continue
                summary = summaries.get(callee_key)
                if summary is None or summary.raw_boundary is None:
                    continue
                raw_name, chain = summary.raw_boundary
                findings.append(
                    Finding(
                        rule="R7",
                        path=path,
                        line=line,
                        col=col,
                        qualname=fn.qualname,
                        message=(
                            f"sandbox entry reaches raw {raw_name}() "
                            f"through {name}() — marshal through "
                            f"repro.ffi.serialization instead"
                        ),
                        call_path=(Hop(fn.qualname, path, line),) + chain,
                    )
                )

            # (c) raw handle leaks (only entries that asked for it).
            if not wants_handle:
                continue
            for kind, line, col, atoms, base in fn.flows:
                if not _carries_handle(summaries, fn, atoms):
                    continue
                findings.append(
                    Finding(
                        rule="R7",
                        path=path,
                        line=line,
                        col=col,
                        qualname=fn.qualname,
                        message=f"sandbox entry {_LEAK_HOW[kind]}",
                    )
                )
            for name, line, col, args in fn.call_args:
                callee_key = graph.resolve(path, name)
                if callee_key is None:
                    continue
                callee = graph.nodes[callee_key]
                summary = summaries.get(callee_key)
                if summary is None:
                    continue
                for i, (atoms, arg_kind, kw) in enumerate(args):
                    if not _carries_handle(summaries, fn, atoms):
                        continue
                    if kw is not None:
                        if kw not in callee.params:
                            continue
                        pidx = list(callee.params).index(kw)
                    else:
                        pidx = callee.arg_param_index(i)
                    if pidx not in summary.param_escape:
                        continue
                    how, chain = summary.param_escape[pidx]
                    findings.append(
                        Finding(
                            rule="R7",
                            path=path,
                            line=line,
                            col=col,
                            qualname=fn.qualname,
                            message=(
                                f"sandbox entry passes the raw domain "
                                f"handle to {name}(), where it {how} — "
                                f"a live capability escapes the FFI "
                                f"boundary"
                            ),
                            call_path=(Hop(fn.qualname, path, line),) + chain,
                        )
                    )
    return findings
