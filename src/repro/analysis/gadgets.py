"""R4 — ERIM-style gate-write gadget scan over the simulated API stream.

ERIM's binary inspection rejects any executable WRPKRU occurrence that is
not immediately followed by the sanctioned permission check; everything
else is a gadget an attacker could jump to and grant itself access. The
simulation's privileged gate writes are declared *per isolation backend*
(:func:`repro.memory.backends.gate_idiom_table`): the MPK backend's WRPKRU
spellings (the :class:`~repro.memory.mpk.PkruRegister` write surface —
``write``/``write_prepared``/``grant``/``revoke``/``close_all``), CHERI's
capability installs (``CapabilityGate`` / ``cap_gate`` receivers) and
SFI's mask setup (``SfiMaskGate`` / ``mask_gate``). The scan walks every
call site whose receiver resolves to a gate register of *any* registered
backend and demands it sit inside the *entry-gate sequence*:

* the enclosing function brackets the write with the context stack — a
  ``contexts.push(...)`` or ``contexts.pop(...)`` call appears lexically
  **before** the write (the ``sigsetjmp`` analogue precedes the PKRU
  derivation on entry, and the context pop precedes the restore on exit);
  this also covers the re-entry cache's ticket-replay
  ``write_prepared`` (PR2), which replays only after the context push; or
* the enclosing function is only reachable from such a gate — computed as
  the same-module call closure of gate functions (e.g.
  ``SdradRuntime._apply_domain_gate``, called from ``execute`` between
  push and pop); or
* the write is a micro-op of a gate register class itself (the register
  *is* the instruction; its callers are what need gating); or
* the function carries an explicit ``# sdradlint: gate`` annotation on
  its ``def`` line — the audited-by-hand escape hatch.

Anything else is reported: an unguarded PKRU write is the simulated
equivalent of a stray WRPKRU gadget.

Generated accessor closures (the access-plan factories of
:mod:`repro.memory.plans`) sharpen one edge of the closure rule: a nested
function whose *name escapes* its definer — returned, stored into an
attribute like ``plan.load = load``, or bound into a container — outlives
the gate it was compiled inside and runs in whatever context later
invokes it. Such a closure must therefore NOT inherit guarding from a
gated encloser, even if the encloser also calls it once inside the gate:
a PKRU write captured in an escaping closure is a *callable* WRPKRU
gadget (ERIM's indirect-jump case). Plan accessor closures stay clean
precisely because they guard on a validity cell instead of touching the
register.
"""

from __future__ import annotations

import ast
from typing import Optional

from ..memory.backends import gate_idiom_table
from .findings import Finding
from .model import ModuleModel, call_func_name, call_receiver_path

#: The union of every registered backend's gate idiom — the substrates
#: declare their own privileged spellings; R4 only enforces the bracket.
_IDIOMS = gate_idiom_table()

#: The gate write surface (WRPKRU / capability install / mask setup
#: spellings). The historical name is kept: R4 consumers imported it.
PKRU_WRITE_CALLS = frozenset(_IDIOMS.write_calls)

#: Classes whose own methods are the register micro-ops, not call sites.
REGISTER_CLASSES = frozenset(_IDIOMS.register_classes)

#: Receiver spellings that resolve to a gate (exact segment or suffix).
GATE_RECEIVER_NAMES = frozenset(_IDIOMS.receiver_names)

_RECEIVER_SUFFIXES = tuple(f"_{name}" for name in sorted(GATE_RECEIVER_NAMES))


def _is_pkru_receiver(path: Optional[str]) -> bool:
    """Does a dotted receiver path resolve to an isolation gate?"""
    if path is None:
        return False
    return any(
        seg in GATE_RECEIVER_NAMES or seg.endswith(_RECEIVER_SUFFIXES)
        for seg in path.split(".")
    )


def _is_gate_call(call: ast.Call) -> bool:
    """A context-stack push/pop — the entry-gate bracket."""
    if call_func_name(call) not in ("push", "pop"):
        return False
    recv = call_receiver_path(call)
    return recv is not None and recv.split(".")[-1] == "contexts"


def _called_names(node: ast.AST) -> set:
    """Bare names of functions/methods called inside ``node``."""
    names = set()
    for call in ast.walk(node):
        if isinstance(call, ast.Call):
            name = call_func_name(call)
            if name is not None:
                names.add(name)
    return names


def _escaped_closures(model: ModuleModel) -> set:
    """Names of nested functions whose value escapes their definer.

    A nested ``def`` referenced other than as the target of a direct call
    (returned, assigned to an attribute/container, passed along) outlives
    the defining call — the plan-factory shape, where generated accessor
    closures are bound to ``plan.load``/``plan.store`` and invoked from
    arbitrary later contexts. Escaping closures must carry their own gate:
    they cannot inherit one from the function that built them.
    """
    escaped = set()
    for info in model.functions:
        node = info.node
        nested = {
            child.name
            for child in ast.walk(node)
            if isinstance(child, (ast.FunctionDef, ast.AsyncFunctionDef))
            and child is not node
        }
        if not nested:
            continue
        direct_call_funcs = {
            id(sub.func)
            for sub in ast.walk(node)
            if isinstance(sub, ast.Call) and isinstance(sub.func, ast.Name)
        }
        for sub in ast.walk(node):
            if (
                isinstance(sub, ast.Name)
                and isinstance(sub.ctx, ast.Load)
                and sub.id in nested
                and id(sub) not in direct_call_funcs
            ):
                escaped.add(sub.id)
    return escaped


def check(model: ModuleModel) -> list:
    """Run R4 over ``model``."""
    # Pass 1: direct gates (functions containing a contexts.push/pop) and
    # their first gate-call line, plus explicitly annotated gates.
    gate_first_line: dict[str, int] = {}
    annotated: set = set()
    for info in model.functions:
        node = info.node
        def_lines = range(node.lineno, node.body[0].lineno + 1)
        if any(line in model.gate_lines for line in def_lines):
            annotated.add(node.name)
        for call in model.iter_calls(node):
            if _is_gate_call(call):
                line = gate_first_line.get(node.name)
                if line is None or call.lineno < line:
                    gate_first_line[node.name] = call.lineno

    # Pass 2: closure — functions called (by bare name) from a gate or a
    # closure member are themselves guarded in full. Escaping closures are
    # exempt from propagation: even when a gated factory calls one while
    # building it, the escaped value runs post-gate (see module docstring).
    escaped = _escaped_closures(model)
    guarded_fully: set = set(annotated)
    frontier = set(gate_first_line) | annotated
    seen = set(frontier)
    by_name = {info.node.name: info for info in model.functions}
    while frontier:
        next_frontier = set()
        for name in frontier:
            info = by_name.get(name)
            if info is None:
                continue
            for callee in _called_names(info.node):
                if callee in by_name and callee not in seen and callee not in escaped:
                    seen.add(callee)
                    guarded_fully.add(callee)
                    next_frontier.add(callee)
        frontier = next_frontier

    # Pass 3: the scan itself.
    findings: list[Finding] = []
    for info in model.functions:
        node = info.node
        if info.class_name in REGISTER_CLASSES:
            continue
        for call in model.iter_calls(node):
            name = call_func_name(call)
            if name not in PKRU_WRITE_CALLS:
                continue
            if not _is_pkru_receiver(call_receiver_path(call)):
                continue
            if node.name in guarded_fully:
                continue
            gate_line = gate_first_line.get(node.name)
            if gate_line is not None and gate_line <= call.lineno:
                continue
            where = (
                "before the entry gate (contexts.push) in the same function"
                if gate_line is not None
                else "outside any entry-gate sequence"
            )
            findings.append(
                Finding(
                    rule="R4",
                    path=model.path,
                    line=call.lineno,
                    col=call.col_offset,
                    qualname=info.qualname,
                    message=(
                        f"PKRU write {name}() {where} — an unguarded "
                        f"WRPKRU gadget (ERIM); move it behind the "
                        f"context push/pop bracket or annotate the "
                        f"audited gate with '# sdradlint: gate'"
                    ),
                )
            )
    return findings
