"""Minimal SARIF 2.1.0 export for CI code-scanning upload.

One run, one tool (``sdradlint``), one result per finding.  The mapping
is deliberately small — rule id, message, physical location — plus the
call-path witness as ``relatedLocations`` (reported site first, origin
last), which is how SARIF viewers render interprocedural traces without
a full ``codeFlows`` graph.  Output is deterministic: findings arrive
already sorted from the runner and the serializer sorts keys.
"""

from __future__ import annotations

import json

from . import RULES
from .findings import Severity

SARIF_VERSION = "2.1.0"
SARIF_SCHEMA = (
    "https://raw.githubusercontent.com/oasis-tcs/sarif-spec/master/"
    "Schemata/sarif-schema-2.1.0.json"
)

_LEVELS = {Severity.ERROR: "error", Severity.WARNING: "warning"}


def _location(path: str, line: int, col: int, message=None) -> dict:
    loc = {
        "physicalLocation": {
            "artifactLocation": {"uri": path.replace("\\", "/")},
            "region": {"startLine": line, "startColumn": col + 1},
        }
    }
    if message is not None:
        loc["message"] = {"text": message}
    return loc


def to_sarif(findings) -> dict:
    """Build the SARIF log object for a list of findings."""
    results = []
    for finding in findings:
        result = {
            "ruleId": finding.rule,
            "level": _LEVELS[finding.severity],
            "message": {"text": f"{finding.message} (in {finding.qualname})"},
            "locations": [
                _location(finding.path, finding.line, finding.col)
            ],
            "partialFingerprints": {
                "sdradlint/v1": finding.fingerprint,
            },
        }
        if finding.call_path:
            result["relatedLocations"] = [
                _location(hop.path, hop.line, 0, message=hop.function)
                for hop in finding.call_path
            ]
        results.append(result)
    return {
        "$schema": SARIF_SCHEMA,
        "version": SARIF_VERSION,
        "runs": [
            {
                "tool": {
                    "driver": {
                        "name": "sdradlint",
                        "informationUri": (
                            "https://github.com/secure-rewind-and-discard/"
                            "secure-rewind-and-discard"
                        ),
                        "rules": [
                            {
                                "id": rule,
                                "shortDescription": {"text": description},
                            }
                            for rule, description in sorted(RULES.items())
                        ],
                    }
                },
                "results": results,
            }
        ],
    }


def render(findings) -> str:
    """Serialized SARIF log, stable across runs for identical findings."""
    return json.dumps(to_sarif(findings), indent=2, sort_keys=True)
