"""Baseline handling: pre-existing findings that must not block CI.

The baseline is a JSON file mapping finding fingerprints (line-number
independent, see :class:`~repro.analysis.findings.Finding.fingerprint`)
to a human-readable record of what was baselined. ``--write-baseline``
regenerates it; a lint run then fails only on findings *not* in the
baseline, so a PR adding sdradlint to an existing tree does not have to
fix (or litigate) every historical idiom at once.
"""

from __future__ import annotations

import json
import os
from typing import Iterable

from .findings import Finding

#: Default baseline location, relative to the repository root.
DEFAULT_BASELINE = "sdradlint.baseline.json"


def load(path: str) -> dict:
    """Fingerprint -> record; empty when the file does not exist."""
    if not os.path.exists(path):
        return {}
    with open(path, "r", encoding="utf-8") as fh:
        data = json.load(fh)
    entries = data.get("findings", data) if isinstance(data, dict) else {}
    return dict(entries)


def save(path: str, findings: Iterable[Finding]) -> dict:
    """Write a fresh baseline covering ``findings``; returns the entries."""
    entries = {
        finding.fingerprint: {
            "rule": finding.rule,
            "path": finding.path,
            "function": finding.qualname,
            "message": finding.message,
        }
        for finding in findings
    }
    payload = {
        "comment": (
            "sdradlint baseline: pre-existing findings accepted when the "
            "analyzer was introduced. Regenerate with "
            "'python -m repro.analysis --write-baseline'."
        ),
        "findings": entries,
    }
    with open(path, "w", encoding="utf-8") as fh:
        json.dump(payload, fh, indent=2, sort_keys=True)
        fh.write("\n")
    return entries


def split(
    findings: list, baseline_entries: dict
) -> tuple[list, list]:
    """(new, baselined) partition of ``findings``."""
    new: list[Finding] = []
    old: list[Finding] = []
    for finding in findings:
        (old if finding.fingerprint in baseline_entries else new).append(finding)
    return new, old
