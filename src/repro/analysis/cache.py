"""Incremental summary cache: skip re-parsing unchanged files.

Whole-program analysis re-reads every file on every run; most of them
have not changed.  The per-file layer (parse → :class:`ModuleModel` →
local R1/R4 findings + :class:`~.summaries.FileFacts` extraction) is a
pure function of the file's *content*, so it caches under the content's
SHA-256.  The whole-program layer (call graph, summaries, R2/R3/R5/R6/R7)
is cheap plain-data work and is **always recomputed** from the facts —
which is what makes a warm-cache run byte-identical to ``--no-cache``
by construction: the interprocedural pass never sees whether its inputs
came from a parse or from disk.

The cache file (:data:`DEFAULT_CACHE`, JSON) lives next to the baseline
at the repo root.  Entries are keyed by *path* and validated by content
hash, so an edited file simply misses; :data:`CACHE_VERSION` bumps
whenever the fact schema or rule tables change shape, invalidating
everything at once.  A corrupt or version-skewed cache is indistinguishable
from an absent one — the analyzer silently rebuilds it.
"""

from __future__ import annotations

import hashlib
import json
import os
from typing import Optional

from .findings import Finding
from .summaries import FileFacts

#: Bump when FileFacts / finding shapes or rule tables change.
CACHE_VERSION = 1

DEFAULT_CACHE = ".sdradlint.cache.json"


def content_key(source: str) -> str:
    return hashlib.sha256(source.encode("utf-8")).hexdigest()


class SummaryCache:
    """Content-hash keyed store of per-file analysis products."""

    def __init__(self, path: Optional[str] = None) -> None:
        self.path = path or DEFAULT_CACHE
        self._entries: dict = {}
        self.hits = 0
        self.misses = 0
        self._dirty = False

    # ------------------------------------------------------------------

    def load(self) -> None:
        try:
            with open(self.path, "r", encoding="utf-8") as fh:
                data = json.load(fh)
        except (OSError, ValueError):
            return
        if not isinstance(data, dict) or data.get("version") != CACHE_VERSION:
            return
        entries = data.get("files")
        if isinstance(entries, dict):
            self._entries = entries

    def save(self) -> None:
        if not self._dirty:
            return
        payload = {"version": CACHE_VERSION, "files": self._entries}
        tmp = f"{self.path}.tmp.{os.getpid()}"
        try:
            with open(tmp, "w", encoding="utf-8") as fh:
                json.dump(payload, fh, separators=(",", ":"), sort_keys=True)
            os.replace(tmp, self.path)
        except OSError:  # pragma: no cover - read-only checkout
            try:
                os.unlink(tmp)
            except OSError:
                pass

    # ------------------------------------------------------------------

    def get(self, path: str, source: str):
        """``(facts, local_findings)`` for an unchanged file, else ``None``."""
        entry = self._entries.get(path)
        if entry is None or entry.get("key") != content_key(source):
            self.misses += 1
            return None
        try:
            facts = FileFacts.from_json(path, entry["facts"])
            local = [Finding.from_dict(f) for f in entry["local_findings"]]
        except (KeyError, TypeError, ValueError, IndexError):
            self.misses += 1
            return None
        self.hits += 1
        return facts, local

    def put(self, path: str, source: str, facts: FileFacts, local) -> None:
        self._entries[path] = {
            "key": content_key(source),
            "facts": facts.to_json(),
            "local_findings": [f.to_dict() for f in local],
        }
        self._dirty = True
