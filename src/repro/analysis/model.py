"""Shared AST model: parsed modules, suppressions, and the entry registry.

Every rule operates on a :class:`ModuleModel` — one parsed source file plus
the derived facts all four rules need:

* suppression comments (``# sdradlint: ignore[R1,R3]``), collected per line
  with ``def``-line suppressions extended over the whole function body;
* every function/method with its qualified name;
* the *domain-body registry*: which functions execute inside a rewindable
  domain. The registry is seeded from the entry signatures of
  ``repro.sdrad.api``/``repro.sdrad.runtime`` (``execute``,
  ``execute_unisolated``, ``execute_with_checkpoint``, ``sdrad_enter``) and
  ``repro.ffi.sandbox`` (``sandboxed``): a module-level function passed by
  name to one of those calls — or whose first parameter is annotated
  ``DomainHandle`` — is a domain body and is held to R2/R3.
"""

from __future__ import annotations

import ast
import io
import re
import tokenize
from dataclasses import dataclass, field
from typing import Iterator, Optional

#: Entry-point call names seeded from SdradRuntime / SdradApi signatures.
#: The callable argument position is the index of the ``fn`` parameter.
ENTRY_CALLS = {
    "execute": 1,  # runtime.execute(udi, fn, *args)
    "execute_with_checkpoint": 1,  # runtime.execute_with_checkpoint(udi, fn, ..)
    "execute_unisolated": 0,  # runtime.execute_unisolated(fn, *args)
    "sdrad_enter": 1,  # api.sdrad_enter(udi, fn, *args)
}

#: Decorator/factory names seeded from the SDRaD-FFI sandbox signature.
SANDBOX_CALLS = {"sandboxed"}

#: First-parameter annotation that marks a function as a domain body.
HANDLE_ANNOTATION = "DomainHandle"

_SUPPRESS_RE = re.compile(r"#\s*sdradlint:\s*ignore\[([A-Za-z0-9,\s]+)\]")
_GATE_RE = re.compile(r"#\s*sdradlint:\s*gate\b")


def dotted_name(node: ast.AST) -> Optional[str]:
    """``a.b.c`` for a Name/Attribute chain, else ``None``."""
    parts: list[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        parts.append(node.id)
        return ".".join(reversed(parts))
    return None


def call_func_name(call: ast.Call) -> Optional[str]:
    """Trailing attribute (or bare name) of the called expression."""
    func = call.func
    if isinstance(func, ast.Attribute):
        return func.attr
    if isinstance(func, ast.Name):
        return func.id
    return None


def call_receiver_path(call: ast.Call) -> Optional[str]:
    """Dotted path of the receiver of a method call (``a.b`` for ``a.b.c()``)."""
    func = call.func
    if isinstance(func, ast.Attribute):
        return dotted_name(func.value)
    return None


def _sandbox_decl(call: ast.Call) -> "SandboxDecl":
    """Extract the R7-relevant keywords from a ``sandboxed(...)`` call."""
    has_fallback = False
    has_retries = False
    wants_handle = False
    for kw in call.keywords:
        if kw.arg == "fallback":
            has_fallback = True
        elif kw.arg == "retries":
            value = kw.value
            has_retries = not (
                isinstance(value, ast.Constant) and not value.value
            )
        elif kw.arg == "wants_handle":
            value = kw.value
            wants_handle = not (
                isinstance(value, ast.Constant) and not value.value
            )
    return SandboxDecl(
        line=call.lineno,
        col=call.col_offset,
        has_fallback=has_fallback,
        has_retries=has_retries,
        wants_handle=wants_handle,
    )


@dataclass
class SandboxDecl:
    """The ``sandboxed(...)`` declaration site of an FFI sandbox entry."""

    line: int
    col: int
    #: Declared an alternate action (``fallback=`` keyword)?
    has_fallback: bool = False
    #: Declared transparent re-execution (``retries=`` non-zero)?
    has_retries: bool = False
    #: Receives the raw :class:`DomainHandle` (``wants_handle=True``)?
    wants_handle: bool = False


@dataclass
class FunctionInfo:
    """One function or method with the facts the rules consume."""

    node: ast.AST  # FunctionDef | AsyncFunctionDef
    qualname: str
    class_name: Optional[str]  # enclosing class, if a method
    is_domain_body: bool = False
    #: Why the registry classified it (for diagnostics/tests).
    domain_body_reason: Optional[str] = None
    #: Set when this function is an SDRaD-FFI sandbox entry (decorated
    #: with ``@sandboxed`` or passed to a ``sandboxed(...)`` factory).
    sandbox_decl: Optional[SandboxDecl] = None


@dataclass
class ModuleModel:
    """One parsed source file plus derived facts."""

    path: str
    source: str
    tree: ast.Module
    suppressions: dict[int, set[str]] = field(default_factory=dict)
    gate_lines: set[int] = field(default_factory=set)
    functions: list[FunctionInfo] = field(default_factory=list)
    _by_name: dict[str, FunctionInfo] = field(default_factory=dict)

    # ------------------------------------------------------------------

    @classmethod
    def parse(cls, path: str, source: str) -> "ModuleModel":
        tree = ast.parse(source, filename=path)
        model = cls(path=path, source=source, tree=tree)
        model._collect_comments()
        model._collect_functions()
        model._classify_domain_bodies()
        return model

    # ------------------------------------------------------------------

    def is_suppressed(self, rule: str, line: int) -> bool:
        rules = self.suppressions.get(line)
        return rules is not None and (rule in rules or "ALL" in rules)

    def function_named(self, name: str) -> Optional[FunctionInfo]:
        """Module-level (or method) lookup by bare name; last wins."""
        return self._by_name.get(name)

    def iter_calls(self, node: Optional[ast.AST] = None) -> Iterator[ast.Call]:
        for sub in ast.walk(node if node is not None else self.tree):
            if isinstance(sub, ast.Call):
                yield sub

    # ------------------------------------------------------------------
    # Comment collection (suppressions + gate annotations)
    # ------------------------------------------------------------------

    def _collect_comments(self) -> None:
        try:
            tokens = tokenize.generate_tokens(io.StringIO(self.source).readline)
            comments = [
                (tok.start[0], tok.string)
                for tok in tokens
                if tok.type == tokenize.COMMENT
            ]
        except tokenize.TokenError:  # pragma: no cover - broken source
            comments = []
        for line, text in comments:
            match = _SUPPRESS_RE.search(text)
            if match:
                rules = {part.strip().upper() for part in match.group(1).split(",")}
                self.suppressions.setdefault(line, set()).update(rules)
            if _GATE_RE.search(text):
                self.gate_lines.add(line)

    def _extend_def_suppressions(self) -> None:
        """A suppression on a ``def`` line covers the whole function."""
        for info in self.functions:
            node = info.node
            def_lines = range(node.lineno, node.body[0].lineno + 1)
            rules: set[str] = set()
            for line in def_lines:
                rules |= self.suppressions.get(line, set())
            if not rules:
                continue
            end = getattr(node, "end_lineno", node.body[-1].lineno)
            for line in range(node.lineno, end + 1):
                self.suppressions.setdefault(line, set()).update(rules)

    # ------------------------------------------------------------------
    # Function collection
    # ------------------------------------------------------------------

    def _collect_functions(self) -> None:
        def visit(node: ast.AST, prefix: str, class_name: Optional[str]) -> None:
            for child in ast.iter_child_nodes(node):
                if isinstance(child, (ast.FunctionDef, ast.AsyncFunctionDef)):
                    qual = f"{prefix}{child.name}"
                    info = FunctionInfo(
                        node=child, qualname=qual, class_name=class_name
                    )
                    self.functions.append(info)
                    self._by_name[child.name] = info
                    visit(child, f"{qual}.", class_name)
                elif isinstance(child, ast.ClassDef):
                    visit(child, f"{prefix}{child.name}.", child.name)
                else:
                    # Recurse through compound statements (try/if/with/for):
                    # domain bodies are often defined inside them (e.g. the
                    # sandbox wrapper's ``run_inside``).
                    visit(child, prefix, class_name)

        visit(self.tree, "", None)
        self._extend_def_suppressions()

    # ------------------------------------------------------------------
    # Domain-body registry
    # ------------------------------------------------------------------

    def _classify_domain_bodies(self) -> None:
        # (a) first parameter annotated DomainHandle
        for info in self.functions:
            args = info.node.args
            params = args.posonlyargs + args.args
            if not params:
                continue
            first = params[0]
            if first.arg == "self" and len(params) > 1:
                first = params[1]
            ann = first.annotation
            if ann is not None:
                ann_name = dotted_name(ann) or (
                    ann.value if isinstance(ann, ast.Constant) else None
                )
                if isinstance(ann_name, str) and ann_name.endswith(
                    HANDLE_ANNOTATION
                ):
                    info.is_domain_body = True
                    info.domain_body_reason = "first parameter is a DomainHandle"

        # (b) passed by name to an entry call / sandbox factory
        for call in self.iter_calls():
            name = call_func_name(call)
            if name in ENTRY_CALLS:
                index = ENTRY_CALLS[name]
                if len(call.args) > index:
                    self._mark_callable(
                        call.args[index], f"passed to {name}()"
                    )
            elif name in SANDBOX_CALLS:
                if call.args:
                    self._mark_callable(
                        call.args[0], "sandboxed function", _sandbox_decl(call)
                    )

        # (c) decorated with @...sandboxed(...)
        for info in self.functions:
            for deco in info.node.decorator_list:
                target = deco.func if isinstance(deco, ast.Call) else deco
                deco_name = (
                    target.attr
                    if isinstance(target, ast.Attribute)
                    else target.id
                    if isinstance(target, ast.Name)
                    else None
                )
                if deco_name in SANDBOX_CALLS:
                    info.is_domain_body = True
                    info.domain_body_reason = "decorated @sandboxed"
                    info.sandbox_decl = (
                        _sandbox_decl(deco)
                        if isinstance(deco, ast.Call)
                        else SandboxDecl(line=deco.lineno, col=deco.col_offset)
                    )

    def _mark_callable(
        self,
        node: ast.AST,
        reason: str,
        sandbox_decl: Optional[SandboxDecl] = None,
    ) -> None:
        if isinstance(node, ast.Name):
            info = self._by_name.get(node.id)
            if info is not None:
                info.is_domain_body = True
                info.domain_body_reason = reason
                if sandbox_decl is not None:
                    info.sandbox_decl = sandbox_decl
