"""Live sustainability ledger: joules and gCO₂e per request, as you run.

The E5 experiments answer "what would a year of this deployment cost the
grid" offline; the ledger answers the same question *during* a run, by
folding the frozen cost/power/carbon models over the live metric
registry. It never invents constants of its own — joules per request
come from :meth:`EnergyModel.energy_per_request` and carbon from
:class:`CarbonModel`, so ledger figures are consistent with
``sustainability/report.py`` tables by construction (tested).

Per recovery strategy (SDRaD rewind vs process restart by default) the
ledger reports the steady-state per-request footprint of running that
deployment at the observed request rate, plus what the run's *observed
faults* would have cost under that strategy — ~3.5 µs of busy time per
rewind versus minutes of reload per restart.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Sequence

from ..resilience.strategy import RecoveryStrategyModel, StrategySpec
from ..sim.cost import DEFAULT_COST_MODEL, GIB, CostModel
from ..sustainability.carbon import CarbonModel
from ..sustainability.energy import EnergyModel
from ..sustainability.power import ServerPowerModel, joules_to_kwh
from ..sustainability.report import format_seconds, format_table
from .metrics import ObsRegistry

#: The paper's Memcached working set; used when no dataset size is given.
DEFAULT_DATASET_BYTES = 10 * GIB


@dataclass(frozen=True)
class LedgerEntry:
    """Per-strategy sustainability figures for one run."""

    strategy: str
    replicas: int
    requests: int
    faults: int
    rate_rps: float
    joules_per_request: float
    gco2e_per_request: float
    recovery_seconds: float
    recovery_joules: float
    recovery_gco2e: float

    def as_dict(self) -> dict:
        return {
            "strategy": self.strategy,
            "replicas": self.replicas,
            "requests": self.requests,
            "faults": self.faults,
            "rate_rps": self.rate_rps,
            "joules_per_request": self.joules_per_request,
            "gco2e_per_request": self.gco2e_per_request,
            "recovery_seconds": self.recovery_seconds,
            "recovery_joules": self.recovery_joules,
            "recovery_gco2e": self.recovery_gco2e,
        }


class SustainabilityLedger:
    """Folds energy/carbon models over a live :class:`ObsRegistry`."""

    def __init__(
        self,
        registry: ObsRegistry,
        clock: object,
        cost: CostModel = DEFAULT_COST_MODEL,
        power: Optional[ServerPowerModel] = None,
        carbon: Optional[CarbonModel] = None,
        base_utilization: float = 0.30,
        dataset_bytes: int = DEFAULT_DATASET_BYTES,
        isolation_backend: str = "mpk",
    ) -> None:
        from ..memory.backends import resolve_backend

        self.registry = registry
        self.clock = clock
        self.cost = cost
        #: The substrate whose enforcement overhead the rewind strategy is
        #: charged with (per-backend energy shape: MPK's gate cost, CHERI's
        #: cheaper switches, SFI's per-access tax).
        self.backend = resolve_backend(isolation_backend)
        self.power = power if power is not None else ServerPowerModel()
        self.energy = EnergyModel(self.power)
        self.carbon = carbon if carbon is not None else CarbonModel()
        self.base_utilization = base_utilization
        self.dataset_bytes = dataset_bytes
        self.strategies = RecoveryStrategyModel(cost)

    # ------------------------------------------------------------------
    # Live readings
    # ------------------------------------------------------------------

    def requests_served(self) -> int:
        return self.registry.counter_total("app_requests_total")

    def faults_observed(self) -> int:
        return self.registry.counter_total("sdrad_rewinds_total")

    def request_rate(self) -> float:
        """Observed requests per virtual second so far."""
        elapsed = self.clock.now  # type: ignore[attr-defined]
        requests = self.requests_served()
        if elapsed <= 0 or requests == 0:
            raise ValueError(
                "ledger needs served requests and elapsed virtual time "
                f"(requests={requests}, elapsed={elapsed})"
            )
        return requests / elapsed

    # ------------------------------------------------------------------
    # Accounting
    # ------------------------------------------------------------------

    def default_strategies(self) -> "list[StrategySpec]":
        """The rewind-vs-restart pair the paper's argument turns on.

        The rewind strategy's steady-state overhead comes from the active
        isolation backend: 3 % for MPK (the default, matching the paper's
        measured band and the pre-backend ledger bit for bit), lower for
        CHERI's cheaper compartment switches, higher for SFI's per-access
        instrumentation.
        """
        return [
            self.strategies.sdrad_rewind(
                runtime_overhead=self.backend.runtime_overhead_hint
            ),
            self.strategies.process_restart(self.dataset_bytes),
        ]

    def entry_for(self, spec: StrategySpec) -> LedgerEntry:
        requests = self.requests_served()
        faults = self.faults_observed()
        rate = self.request_rate()

        joules_per_request = self.energy.energy_per_request(
            spec, rate, self.base_utilization
        )
        operational_g = (
            self.carbon.operational_kg(joules_to_kwh(joules_per_request)) * 1000.0
        )
        # Embodied share: the deployment's replicas amortise their
        # manufacturing carbon over the server lifetime; one request owns
        # 1/rate seconds of that amortisation.
        embodied_g = self.carbon.embodied_kg(spec.replicas, 1.0 / rate) * 1000.0

        # What this run's observed faults would cost under this strategy:
        # the recovery window keeps the primary busy (reloading state or
        # scrubbing pages) at its effective serving utilisation.
        recovery_seconds = faults * spec.downtime_per_fault
        effective = min(1.0, self.base_utilization * (1.0 + spec.runtime_overhead))
        recovery_joules = self.power.energy_joules(effective, recovery_seconds)
        recovery_g = (
            self.carbon.operational_kg(joules_to_kwh(recovery_joules)) * 1000.0
        )

        return LedgerEntry(
            strategy=spec.name,
            replicas=spec.replicas,
            requests=requests,
            faults=faults,
            rate_rps=rate,
            joules_per_request=joules_per_request,
            gco2e_per_request=operational_g + embodied_g,
            recovery_seconds=recovery_seconds,
            recovery_joules=recovery_joules,
            recovery_gco2e=recovery_g,
        )

    def entries(
        self, specs: "Optional[Sequence[StrategySpec]]" = None
    ) -> "list[LedgerEntry]":
        if specs is None:
            specs = self.default_strategies()
        return [self.entry_for(spec) for spec in specs]

    # ------------------------------------------------------------------
    # Rendering
    # ------------------------------------------------------------------

    def format_entries(
        self, specs: "Optional[Sequence[StrategySpec]]" = None
    ) -> str:
        rows = [
            (
                e.strategy,
                e.replicas,
                e.requests,
                e.faults,
                f"{e.rate_rps:.0f}",
                f"{e.joules_per_request:.4f}",
                f"{e.gco2e_per_request * 1000.0:.4f}",
                format_seconds(e.recovery_seconds) if e.recovery_seconds else "0 s",
                f"{e.recovery_joules:.3f}",
            )
            for e in self.entries(specs)
        ]
        return format_table(
            (
                "strategy",
                "replicas",
                "requests",
                "faults",
                "req/s",
                "J/req",
                "mgCO2e/req",
                "recovery",
                "recovery-J",
            ),
            rows,
        )
