"""Tracing spans: lightweight, parent-linked, virtual-time-stamped.

A :class:`Span` covers one operation on the trusted side of the runtime —
a domain execution, a request through an app server, a batch pipeline —
with its virtual start/end timestamps, a status, and free-form attributes.
Spans form trees through ``parent_id`` links maintained by the
:class:`~repro.obs.hub.Observability` hub's span stack, so one request's
span contains the domain execution it triggered, which in turn contains
the fault and rewind events the execution produced.

Design constraints (why this is not OpenTelemetry):

* **virtual time** — timestamps come from the simulation's
  :class:`~repro.sim.clock.VirtualClock`, never the wall clock, so traces
  are deterministic and byte-stable (the exporter golden tests depend on
  this);
* **sequential ids** — span/trace ids are small integers from a counter,
  not random 128-bit ids, for the same reason;
* **single-threaded** — the simulator is single-threaded, so one open-span
  stack per hub is sufficient for parent linking.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterator, Optional

from ..errors import SdradError


class ObsError(SdradError):
    """Misuse of the observability layer (e.g. mis-nested span ends)."""


@dataclass
class Span:
    """One finished-or-open span. Mutable until :class:`ended <Span>`."""

    span_id: int
    trace_id: int
    parent_id: Optional[int]
    name: str
    start: float
    end: Optional[float] = None
    status: str = "open"
    attrs: dict = field(default_factory=dict)

    sampled = True

    @property
    def duration(self) -> float:
        """Virtual seconds covered; 0.0 while still open."""
        return (self.end - self.start) if self.end is not None else 0.0

    def set_attrs(self, **attrs: object) -> None:
        """Annotate mid-flight (uniform with the unsampled placeholder)."""
        self.attrs.update(attrs)

    @property
    def is_open(self) -> bool:
        return self.end is None

    def as_dict(self) -> dict:
        """JSON-friendly representation (the JSONL exporter's row)."""
        return {
            "span_id": self.span_id,
            "trace_id": self.trace_id,
            "parent_id": self.parent_id,
            "name": self.name,
            "start": self.start,
            "end": self.end,
            "status": self.status,
            "attrs": dict(self.attrs),
        }

    @classmethod
    def from_dict(cls, data: dict) -> "Span":
        return cls(
            span_id=data["span_id"],
            trace_id=data["trace_id"],
            parent_id=data["parent_id"],
            name=data["name"],
            start=data["start"],
            end=data["end"],
            status=data["status"],
            attrs=dict(data["attrs"]),
        )

    def __str__(self) -> str:  # pragma: no cover - debugging aid
        attrs = " ".join(f"{k}={v}" for k, v in sorted(self.attrs.items()))
        return (
            f"[{self.start:.9f}..{self.end if self.end is not None else '?'}] "
            f"{self.name} #{self.span_id}<-{self.parent_id} "
            f"{self.status} {attrs}".rstrip()
        )


class SpanBuffer:
    """Per-run buffer of *finished* spans, bounded by ``capacity``.

    When full, further spans are counted in :attr:`dropped` instead of
    stored — a long benchmark run must not grow memory without bound just
    because tracing is on.
    """

    def __init__(self, capacity: Optional[int] = None) -> None:
        if capacity is not None and capacity < 1:
            raise ObsError(f"span buffer capacity must be >= 1, got {capacity}")
        self._spans: list[Span] = []
        self._capacity = capacity
        self.dropped = 0

    def append(self, span: Span) -> None:
        if self._capacity is not None and len(self._spans) >= self._capacity:
            self.dropped += 1
            return
        self._spans.append(span)

    @property
    def spans(self) -> list[Span]:
        return list(self._spans)

    def __len__(self) -> int:
        return len(self._spans)

    def __iter__(self) -> Iterator[Span]:
        return iter(self._spans)

    def clear(self) -> None:
        self._spans.clear()
        self.dropped = 0

    # ------------------------------------------------------------------
    # Tree queries (tests and reports)
    # ------------------------------------------------------------------

    def of_name(self, *names: str) -> list[Span]:
        wanted = set(names)
        return [s for s in self._spans if s.name in wanted]

    def count(self, name: str) -> int:
        return sum(1 for s in self._spans if s.name == name)

    def roots(self) -> list[Span]:
        return [s for s in self._spans if s.parent_id is None]

    def children_of(self, span: Span) -> list[Span]:
        return [s for s in self._spans if s.parent_id == span.span_id]

    def tree_violations(self) -> list[str]:
        """Structural invariants of the buffered span forest.

        Returns human-readable problems; an empty list means every span is
        closed, every parent link resolves to a span in the buffer (or to
        one that was dropped — flagged only when nothing was dropped), and
        every child lies within its parent's interval.
        """
        problems: list[str] = []
        by_id = {s.span_id: s for s in self._spans}
        for span in self._spans:
            if span.is_open:
                problems.append(f"span #{span.span_id} {span.name!r} never ended")
                continue
            if span.end < span.start:
                problems.append(
                    f"span #{span.span_id} {span.name!r} ends before it starts"
                )
            if span.parent_id is None:
                continue
            parent = by_id.get(span.parent_id)
            if parent is None:
                if self.dropped == 0:
                    problems.append(
                        f"span #{span.span_id} {span.name!r} has unknown "
                        f"parent #{span.parent_id}"
                    )
                continue
            if parent.trace_id != span.trace_id:
                problems.append(
                    f"span #{span.span_id} is in trace {span.trace_id} but its "
                    f"parent #{parent.span_id} is in trace {parent.trace_id}"
                )
            if span.start < parent.start or (
                parent.end is not None and span.end is not None
                and span.end > parent.end
            ):
                problems.append(
                    f"span #{span.span_id} {span.name!r} is not contained in "
                    f"its parent #{parent.span_id} {parent.name!r}"
                )
        return problems
