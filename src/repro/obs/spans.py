"""Tracing spans: lightweight, parent-linked, virtual-time-stamped.

A :class:`Span` covers one operation on the trusted side of the runtime —
a domain execution, a request through an app server, a batch pipeline —
with its virtual start/end timestamps, a status, and free-form attributes.
Spans form trees through ``parent_id`` links maintained by the
:class:`~repro.obs.hub.Observability` hub's span stack, so one request's
span contains the domain execution it triggered, which in turn contains
the fault and rewind events the execution produced.

Design constraints (why this is not OpenTelemetry):

* **virtual time** — timestamps come from the simulation's
  :class:`~repro.sim.clock.VirtualClock`, never the wall clock, so traces
  are deterministic and byte-stable (the exporter golden tests depend on
  this);
* **sequential ids** — span/trace ids are small integers from a counter,
  not random 128-bit ids, for the same reason;
* **single-threaded** — the simulator is single-threaded, so one open-span
  stack per hub is sufficient for parent linking.

Hot-path layout (DESIGN.md §9): span names and statuses are *interned* to
small integer codes at record time and materialised back to strings only
when someone reads ``span.name``/``span.status`` — at export or snapshot
time, never per request. A bounded :class:`SpanBuffer` preallocates its
slot array once, so steady-state appends are one index store with no list
growth, and a saturated buffer costs one counter bump per drop.
"""

from __future__ import annotations

from typing import Iterator, Optional

from ..errors import SdradError


class ObsError(SdradError):
    """Misuse of the observability layer (e.g. mis-nested span ends)."""


# ----------------------------------------------------------------------
# Label interning: strings in, integer codes stored, strings back out
# only when somebody looks. The tables are process-global on purpose —
# span names are a tiny closed vocabulary ("domain.execute",
# "memcached.request", ...), so codes stay small and hubs share them.
# ----------------------------------------------------------------------

_LABEL_CODES: dict = {}
_LABELS: list = []


def _intern(label: str) -> int:
    code = _LABEL_CODES.get(label)
    if code is None:
        code = len(_LABELS)
        _LABEL_CODES[label] = code
        _LABELS.append(label)
    return code


class Span:
    """One finished-or-open span. Mutable until ended.

    ``name`` and ``status`` are stored as interned integer codes
    (:func:`_intern`); the string properties resolve lazily, so the hot
    path never rebuilds label strings and the exporters see exactly the
    strings that went in.
    """

    __slots__ = (
        "span_id",
        "trace_id",
        "parent_id",
        "_name_code",
        "start",
        "end",
        "_status_code",
        "attrs",
    )

    sampled = True

    def __init__(
        self,
        span_id: int,
        trace_id: int,
        parent_id: Optional[int],
        name: str,
        start: float,
        end: Optional[float] = None,
        status: str = "open",
        attrs: Optional[dict] = None,
    ) -> None:
        self.span_id = span_id
        self.trace_id = trace_id
        self.parent_id = parent_id
        self._name_code = _intern(name)
        self.start = start
        self.end = end
        self._status_code = _intern(status)
        self.attrs = {} if attrs is None else attrs

    @property
    def name(self) -> str:
        return _LABELS[self._name_code]

    @property
    def status(self) -> str:
        return _LABELS[self._status_code]

    @status.setter
    def status(self, value: str) -> None:
        self._status_code = _intern(value)

    @property
    def duration(self) -> float:
        """Virtual seconds covered; 0.0 while still open."""
        return (self.end - self.start) if self.end is not None else 0.0

    def set_attrs(self, **attrs: object) -> None:
        """Annotate mid-flight (uniform with the unsampled placeholder)."""
        self.attrs.update(attrs)

    @property
    def is_open(self) -> bool:
        return self.end is None

    def as_dict(self) -> dict:
        """JSON-friendly representation (the JSONL exporter's row).

        This is where labels materialise: the integer codes resolve back
        to the exact strings recorded, keeping exporter output identical
        to the pre-interning format.
        """
        return {
            "span_id": self.span_id,
            "trace_id": self.trace_id,
            "parent_id": self.parent_id,
            "name": _LABELS[self._name_code],
            "start": self.start,
            "end": self.end,
            "status": _LABELS[self._status_code],
            "attrs": dict(self.attrs),
        }

    @classmethod
    def from_dict(cls, data: dict) -> "Span":
        return cls(
            span_id=data["span_id"],
            trace_id=data["trace_id"],
            parent_id=data["parent_id"],
            name=data["name"],
            start=data["start"],
            end=data["end"],
            status=data["status"],
            attrs=dict(data["attrs"]),
        )

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"Span(span_id={self.span_id}, trace_id={self.trace_id}, "
            f"parent_id={self.parent_id}, name={self.name!r}, "
            f"start={self.start}, end={self.end}, status={self.status!r}, "
            f"attrs={self.attrs!r})"
        )

    def __str__(self) -> str:  # pragma: no cover - debugging aid
        attrs = " ".join(f"{k}={v}" for k, v in sorted(self.attrs.items()))
        return (
            f"[{self.start:.9f}..{self.end if self.end is not None else '?'}] "
            f"{self.name} #{self.span_id}<-{self.parent_id} "
            f"{self.status} {attrs}".rstrip()
        )


class SpanBuffer:
    """Per-run buffer of *finished* spans, bounded by ``capacity``.

    A bounded buffer preallocates its slot array once (the ring the obs
    hot path writes into) and appends with a single index store; when
    full, further spans are counted in :attr:`dropped` instead of stored —
    a long benchmark run must not grow memory without bound just because
    tracing is on, and the hub stops even *constructing* spans once
    :attr:`full` goes true (see ``Observability.start_span``). Drop order
    is oldest-kept/newest-dropped so early-run context survives.
    """

    def __init__(self, capacity: Optional[int] = None) -> None:
        if capacity is not None and capacity < 1:
            raise ObsError(f"span buffer capacity must be >= 1, got {capacity}")
        self._capacity = capacity
        # Preallocated ring storage for the bounded case; a plain growable
        # list when unbounded (tests, small tools).
        self._slots: "list[Optional[Span]]" = (
            [None] * capacity if capacity is not None else []
        )
        self._count = 0
        self.dropped = 0

    @property
    def capacity(self) -> Optional[int]:
        return self._capacity

    @property
    def full(self) -> bool:
        """True when the next append would drop (the hub's saturation test)."""
        return self._capacity is not None and self._count >= self._capacity

    def append(self, span: Span) -> None:
        i = self._count
        if self._capacity is None:
            self._slots.append(span)
        elif i >= self._capacity:
            self.dropped += 1
            return
        else:
            self._slots[i] = span
        self._count = i + 1

    @property
    def spans(self) -> "list[Span]":
        return self._slots[: self._count]

    def __len__(self) -> int:
        return self._count

    def __iter__(self) -> Iterator[Span]:
        return iter(self._slots[: self._count])

    def clear(self) -> None:
        if self._capacity is None:
            self._slots.clear()
        else:
            self._slots = [None] * self._capacity
        self._count = 0
        self.dropped = 0

    # ------------------------------------------------------------------
    # Tree queries (tests and reports)
    # ------------------------------------------------------------------

    def of_name(self, *names: str) -> "list[Span]":
        wanted = set(names)
        return [s for s in self.spans if s.name in wanted]

    def count(self, name: str) -> int:
        return sum(1 for s in self.spans if s.name == name)

    def roots(self) -> "list[Span]":
        return [s for s in self.spans if s.parent_id is None]

    def children_of(self, span: Span) -> "list[Span]":
        return [s for s in self.spans if s.parent_id == span.span_id]

    def tree_violations(self) -> "list[str]":
        """Structural invariants of the buffered span forest.

        Returns human-readable problems; an empty list means every span is
        closed, every parent link resolves to a span in the buffer (or to
        one that was dropped — flagged only when nothing was dropped), and
        every child lies within its parent's interval.
        """
        problems: "list[str]" = []
        spans = self.spans
        by_id = {s.span_id: s for s in spans}
        for span in spans:
            if span.is_open:
                problems.append(f"span #{span.span_id} {span.name!r} never ended")
                continue
            if span.end < span.start:
                problems.append(
                    f"span #{span.span_id} {span.name!r} ends before it starts"
                )
            if span.parent_id is None:
                continue
            parent = by_id.get(span.parent_id)
            if parent is None:
                if self.dropped == 0:
                    problems.append(
                        f"span #{span.span_id} {span.name!r} has unknown "
                        f"parent #{span.parent_id}"
                    )
                continue
            if parent.trace_id != span.trace_id:
                problems.append(
                    f"span #{span.span_id} is in trace {span.trace_id} but its "
                    f"parent #{parent.span_id} is in trace {parent.trace_id}"
                )
            if span.start < parent.start or (
                parent.end is not None and span.end is not None
                and span.end > parent.end
            ):
                problems.append(
                    f"span #{span.span_id} {span.name!r} is not contained in "
                    f"its parent #{parent.span_id} {parent.name!r}"
                )
        return problems
