"""Exporters: JSONL trace dumps and Prometheus-text metric snapshots.

Both formats are byte-stable for a deterministic run — families and
labels are emitted in sorted order, timestamps come from the virtual
clock, ids are sequential — which is what lets the golden-file tests
compare whole exporter outputs instead of spot-checking fields.
"""

from __future__ import annotations

import json
import math
from typing import Iterable, Optional, Union

from .metrics import BucketHistogram, Counter, Gauge, ObsRegistry
from .spans import Span, SpanBuffer

# ----------------------------------------------------------------------
# JSONL traces
# ----------------------------------------------------------------------


def spans_to_jsonl(spans: "Union[SpanBuffer, Iterable[Span]]") -> str:
    """One compact JSON object per line, keys sorted, trailing newline."""
    lines = [
        json.dumps(span.as_dict(), sort_keys=True, separators=(",", ":"))
        for span in spans
    ]
    return "\n".join(lines) + ("\n" if lines else "")


def write_jsonl(spans: "Union[SpanBuffer, Iterable[Span]]", path: str) -> int:
    """Dump spans to ``path``; returns the number of spans written."""
    text = spans_to_jsonl(spans)
    with open(path, "w", encoding="utf-8") as fh:
        fh.write(text)
    return text.count("\n")


def parse_jsonl(text: str) -> "list[Span]":
    """Inverse of :func:`spans_to_jsonl` (round-trip tested)."""
    spans = []
    for line in text.splitlines():
        line = line.strip()
        if line:
            spans.append(Span.from_dict(json.loads(line)))
    return spans


# ----------------------------------------------------------------------
# Prometheus text format
# ----------------------------------------------------------------------


def _fmt_value(value: float) -> str:
    """Render a sample value: integers without a trailing .0, +Inf as such."""
    if isinstance(value, float) and math.isinf(value):
        return "+Inf" if value > 0 else "-Inf"
    if float(value) == int(value) and abs(value) < 1e15:
        return str(int(value))
    return repr(float(value))


def _fmt_labels(items: "tuple[tuple[str, str], ...]", extra: str = "") -> str:
    parts = [f'{k}="{v}"' for k, v in items]
    if extra:
        parts.append(extra)
    return "{" + ",".join(parts) + "}" if parts else ""


def prometheus_text(registry: ObsRegistry) -> str:
    """Serialise the registry in the Prometheus text exposition format.

    Families are sorted by name, series within a family by label items.
    Adopted exact-sample histograms are emitted as ``summary`` families
    (quantiles are exact there, unlike the fixed-bucket histograms).
    """
    counters: "dict[str, list[Counter]]" = {}
    for metric in registry.iter_counters():
        counters.setdefault(metric.name, []).append(metric)
    gauges: "dict[str, list[Gauge]]" = {}
    for metric in registry.iter_gauges():
        gauges.setdefault(metric.name, []).append(metric)
    histograms: "dict[str, list[BucketHistogram]]" = {}
    for metric in registry.iter_histograms():
        histograms.setdefault(metric.name, []).append(metric)

    lines: "list[str]" = []

    for name in sorted(counters):
        lines.append(f"# TYPE {name} counter")
        for metric in sorted(counters[name], key=lambda m: m.labels):
            lines.append(f"{name}{_fmt_labels(metric.labels)} {_fmt_value(metric.value)}")

    for name in sorted(gauges):
        lines.append(f"# TYPE {name} gauge")
        for metric in sorted(gauges[name], key=lambda m: m.labels):
            lines.append(f"{name}{_fmt_labels(metric.labels)} {_fmt_value(metric.value)}")

    for name in sorted(histograms):
        lines.append(f"# TYPE {name} histogram")
        for metric in sorted(histograms[name], key=lambda m: m.labels):
            for bound, cum in metric.cumulative():
                le = "+Inf" if math.isinf(bound) else _fmt_value(bound)
                le_label = 'le="%s"' % le
                lines.append(
                    f"{name}_bucket{_fmt_labels(metric.labels, le_label)} {cum}"
                )
            lines.append(
                f"{name}_sum{_fmt_labels(metric.labels)} {_fmt_value(metric.sum)}"
            )
            lines.append(f"{name}_count{_fmt_labels(metric.labels)} {metric.count}")

    for hist in registry.iter_adopted():
        name = hist.name  # type: ignore[attr-defined]
        lines.append(f"# TYPE {name} summary")
        count = getattr(hist, "count", 0)
        if count:
            for q in (0.5, 0.95, 0.99):
                value = hist.percentile(q * 100)  # type: ignore[attr-defined]
                lines.append(f'{name}{{quantile="{q}"}} {_fmt_value(value)}')
            total = sum(hist.samples)  # type: ignore[attr-defined]
            lines.append(f"{name}_sum {_fmt_value(total)}")
        else:
            lines.append(f"{name}_sum 0")
        lines.append(f"{name}_count {count}")

    return "\n".join(lines) + ("\n" if lines else "")


def write_prometheus(registry: ObsRegistry, path: str) -> None:
    with open(path, "w", encoding="utf-8") as fh:
        fh.write(prometheus_text(registry))


def parse_prometheus_samples(text: str) -> "dict[str, float]":
    """Minimal parser for round-trip tests: sample line → value.

    Keys are the full series string (name plus rendered labels); comment
    lines are skipped. Not a general Prometheus parser — just enough to
    verify our own exporter's output mechanically.
    """
    out: "dict[str, float]" = {}
    for line in text.splitlines():
        line = line.strip()
        if not line or line.startswith("#"):
            continue
        series, _, value = line.rpartition(" ")
        out[series] = math.inf if value == "+Inf" else float(value)
    return out
