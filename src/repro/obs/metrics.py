"""Metric primitives and the central registry.

This module is the single home of the repo's metric types. The historic
``repro.sim.metrics`` import path re-exports :class:`Counter` and
:class:`Gauge` from here (and keeps its exact-sample ``Histogram``), so
experiments written against the old API keep working while every value
lands in one :class:`ObsRegistry`.

Two histogram flavours coexist on purpose:

* ``repro.sim.metrics.Histogram`` stores raw samples and answers exact
  quantiles — right for offline experiment analysis, wrong for an
  always-on serving metric (unbounded memory).
* :class:`BucketHistogram` (here) uses a fixed set of upper bounds, O(1)
  memory and observe cost — the Prometheus shape, right for the live
  request-latency / rewind-latency / batch-size metrics.

Exact histograms can still be :meth:`adopted <ObsRegistry.adopt_histogram>`
into the registry so one snapshot covers both.
"""

from __future__ import annotations

import math
from bisect import bisect_left
from typing import Iterable, Optional, Union

from ..errors import SdradError

LabelItems = "tuple[tuple[str, str], ...]"


def _label_items(labels: "Optional[dict[str, str]]") -> "tuple[tuple[str, str], ...]":
    if not labels:
        return ()
    return tuple(sorted((str(k), str(v)) for k, v in labels.items()))


class Counter:
    """A monotonically increasing named counter (optionally labelled)."""

    __slots__ = ("name", "labels", "_value")

    def __init__(self, name: str, labels: "Optional[dict[str, str]]" = None) -> None:
        self.name = name
        self.labels = _label_items(labels)
        self._value = 0

    def increment(self, amount: int = 1) -> None:
        if amount < 0:
            raise ValueError(f"counter {self.name!r} cannot decrease")
        self._value += amount

    @property
    def value(self) -> int:
        return self._value

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Counter({self.name!r}, labels={dict(self.labels)}, value={self._value})"


class Gauge:
    """A named value that can move in both directions (e.g. live replicas)."""

    __slots__ = ("name", "labels", "_value")

    def __init__(
        self,
        name: str,
        initial: float = 0.0,
        labels: "Optional[dict[str, str]]" = None,
    ) -> None:
        self.name = name
        self.labels = _label_items(labels)
        self._value = float(initial)

    def set(self, value: float) -> None:
        self._value = float(value)

    def add(self, delta: float) -> None:
        self._value += delta

    @property
    def value(self) -> float:
        return self._value

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Gauge({self.name!r}, labels={dict(self.labels)}, value={self._value})"


# Default bucket ladders, in seconds (latency) or requests (batch size).
# Request latencies in the simulation span ~10 µs (memcached op) to ~1 ms
# (TLS handshake) plus occasional 100 ms+ restarts; rewinds sit at ~3.5 µs
# plus scrub cost. The ladders cover those ranges with ~2 buckets/decade.
REQUEST_LATENCY_BUCKETS: "tuple[float, ...]" = (
    1e-6, 5e-6, 1e-5, 5e-5, 1e-4, 5e-4, 1e-3, 5e-3, 1e-2, 5e-2, 1e-1, 1.0,
)
REWIND_LATENCY_BUCKETS: "tuple[float, ...]" = (
    1e-6, 2e-6, 5e-6, 1e-5, 2e-5, 5e-5, 1e-4, 1e-3,
)
BATCH_SIZE_BUCKETS: "tuple[float, ...]" = (1, 2, 4, 8, 16, 32, 64, 128)


def log_buckets(
    low: float, high: float, per_decade: int
) -> "tuple[float, ...]":
    """A geometric bucket ladder from ``low`` to at least ``high``.

    ``per_decade`` bounds the quantile error of interpolated answers: at
    20/decade adjacent bounds differ by ~12%, so any quantile — including
    p999 — is resolved to within that factor no matter how many samples
    land in the histogram. This is the HdrHistogram idea in Prometheus
    clothing: O(1) memory, streaming, mergeable, deterministic.
    """
    if low <= 0 or high <= low:
        raise SdradError(
            f"need 0 < low < high for log buckets, got {low}..{high}"
        )
    if per_decade < 1:
        raise SdradError(
            f"need at least one bucket per decade, got {per_decade}"
        )
    bounds = []
    exponent = math.floor(math.log10(low) * per_decade)
    while True:
        bound = 10.0 ** (exponent / per_decade)
        bounds.append(bound)
        if bound >= high:
            return tuple(bounds)
        exponent += 1


#: The fleet ladder: 20 buckets/decade from 100 ns to 100 s. Coarse
#: 2/decade ladders cannot resolve a p999 — at fleet request volumes the
#: top 0.1% of a run lands whole decades above the median, and the answer
#: degenerates to "somewhere in the last bucket". ~12% bucket spacing
#: keeps interpolated p50/p99/p999 honest while staying O(1) memory.
FLEET_LATENCY_BUCKETS: "tuple[float, ...]" = log_buckets(1e-7, 100.0, 20)

DEFAULT_BUCKETS: "dict[str, tuple[float, ...]]" = {
    "app_request_latency_seconds": REQUEST_LATENCY_BUCKETS,
    "sdrad_rewind_latency_seconds": REWIND_LATENCY_BUCKETS,
    "app_batch_size": BATCH_SIZE_BUCKETS,
    "fleet_request_latency_seconds": FLEET_LATENCY_BUCKETS,
}


class BucketHistogram:
    """Fixed-bucket histogram with Prometheus semantics.

    ``buckets`` are the finite upper bounds; an implicit ``+Inf`` bucket
    catches everything above the last bound. Memory and observe cost are
    O(len(buckets)) and O(log len(buckets)) regardless of sample count.
    """

    __slots__ = ("name", "labels", "buckets", "_bucket_counts", "_sum", "_count")

    def __init__(
        self,
        name: str,
        buckets: "Iterable[float]" = REQUEST_LATENCY_BUCKETS,
        labels: "Optional[dict[str, str]]" = None,
    ) -> None:
        bounds = tuple(float(b) for b in buckets)
        if not bounds:
            raise SdradError(f"histogram {name!r} needs at least one bucket bound")
        if list(bounds) != sorted(bounds) or len(set(bounds)) != len(bounds):
            raise SdradError(
                f"histogram {name!r} bucket bounds must be strictly increasing"
            )
        if any(math.isinf(b) for b in bounds):
            raise SdradError(
                f"histogram {name!r}: +Inf bucket is implicit, do not pass it"
            )
        self.name = name
        self.labels = _label_items(labels)
        self.buckets = bounds
        # One slot per finite bound plus the +Inf overflow slot.
        self._bucket_counts = [0] * (len(bounds) + 1)
        self._sum = 0.0
        self._count = 0

    def observe(self, value: float) -> None:
        value = float(value)
        # bisect_left finds the first bound >= value — the Prometheus
        # ``le`` bucket — at C speed; index len(buckets) is the +Inf slot.
        self._bucket_counts[bisect_left(self.buckets, value)] += 1
        self._sum += value
        self._count += 1

    def observe_many(self, value: float, count: int) -> None:
        """``count`` observations of the same ``value`` in one call.

        Exactly equivalent to calling :meth:`observe` ``count`` times —
        the sum is accumulated by repeated addition, not ``value * count``,
        so the float result is bit-identical to the unbatched sequence.
        """
        if count <= 0:
            return
        value = float(value)
        self._bucket_counts[bisect_left(self.buckets, value)] += count
        total = self._sum
        for _ in range(count):
            total += value
        self._sum = total
        self._count += count

    @property
    def count(self) -> int:
        return self._count

    @property
    def sum(self) -> float:
        return self._sum

    @property
    def bucket_counts(self) -> "list[int]":
        """Per-bucket (non-cumulative) counts; last entry is +Inf overflow."""
        return list(self._bucket_counts)

    def cumulative(self) -> "list[tuple[float, int]]":
        """Prometheus-style cumulative (upper_bound, count) pairs incl. +Inf."""
        out: "list[tuple[float, int]]" = []
        running = 0
        for bound, n in zip(self.buckets, self._bucket_counts):
            running += n
            out.append((bound, running))
        out.append((math.inf, running + self._bucket_counts[-1]))
        return out

    def mean(self) -> float:
        if not self._count:
            raise ValueError(f"histogram {self.name!r} is empty")
        return self._sum / self._count

    def quantile(self, q: float) -> float:
        """Bucket-resolution quantile: the smallest upper bound covering q.

        Coarser than the exact-sample histogram on purpose — answers from a
        fixed-bucket histogram are only ever bucket-edge answers.
        """
        if not 0.0 <= q <= 1.0:
            raise ValueError(f"quantile must be in [0, 1], got {q}")
        if not self._count:
            raise ValueError(f"histogram {self.name!r} is empty")
        target = q * self._count
        running = 0
        for bound, n in zip(self.buckets, self._bucket_counts):
            running += n
            if running >= target:
                return bound
        return math.inf

    def quantile_interpolated(self, q: float) -> float:
        """Prometheus ``histogram_quantile``: linear within the bucket.

        Locates the bucket the q-th sample falls in, then interpolates
        between its bounds by rank — resolving quantiles to a fraction of
        the bucket width instead of snapping to the edge. With a fine
        ladder (:data:`FLEET_LATENCY_BUCKETS`) this makes tail quantiles
        like p999 meaningful. Samples past the last finite bound have no
        upper edge to interpolate toward, so the last bound is returned
        (again matching Prometheus).
        """
        if not 0.0 <= q <= 1.0:
            raise ValueError(f"quantile must be in [0, 1], got {q}")
        if not self._count:
            raise ValueError(f"histogram {self.name!r} is empty")
        target = q * self._count
        running = 0
        for i, (bound, n) in enumerate(zip(self.buckets, self._bucket_counts)):
            if running + n >= target and n:
                lower = self.buckets[i - 1] if i else 0.0
                return lower + (bound - lower) * ((target - running) / n)
            running += n
        return self.buckets[-1]

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"BucketHistogram({self.name!r}, labels={dict(self.labels)}, "
            f"count={self._count}, sum={self._sum})"
        )


_MetricKey = "tuple[str, tuple[tuple[str, str], ...]]"


class ObsRegistry:
    """The central metric registry: one namespace for every family.

    Families are keyed by ``(name, sorted label items)``; ``counter()`` /
    ``gauge()`` / ``histogram()`` are get-or-create and return the same
    object for the same key, so call sites can hold on to a metric or
    re-resolve it each time interchangeably.
    """

    def __init__(self) -> None:
        self._counters: "dict" = {}
        self._gauges: "dict" = {}
        self._histograms: "dict" = {}
        self._adopted: "dict[str, object]" = {}

    # ------------------------------------------------------------------
    # Get-or-create accessors
    # ------------------------------------------------------------------

    def counter(self, name: str, **labels: object) -> Counter:
        key = (name, _label_items({k: str(v) for k, v in labels.items()}))
        metric = self._counters.get(key)
        if metric is None:
            metric = Counter(name, labels=dict(key[1]))
            self._counters[key] = metric
        return metric

    def gauge(self, name: str, **labels: object) -> Gauge:
        key = (name, _label_items({k: str(v) for k, v in labels.items()}))
        metric = self._gauges.get(key)
        if metric is None:
            metric = Gauge(name, labels=dict(key[1]))
            self._gauges[key] = metric
        return metric

    def histogram(
        self,
        name: str,
        buckets: "Optional[Iterable[float]]" = None,
        **labels: object,
    ) -> BucketHistogram:
        key = (name, _label_items({k: str(v) for k, v in labels.items()}))
        metric = self._histograms.get(key)
        if metric is None:
            if buckets is None:
                buckets = DEFAULT_BUCKETS.get(name, REQUEST_LATENCY_BUCKETS)
            metric = BucketHistogram(name, buckets=buckets, labels=dict(key[1]))
            self._histograms[key] = metric
        return metric

    def adopt_histogram(self, histogram: object) -> None:
        """Register a foreign exact-sample histogram for snapshot/export.

        Used by ``repro.sim.metrics.MetricsRegistry`` so the old exact
        histograms surface through the same exporters (as summaries).
        """
        name = getattr(histogram, "name", None)
        if not isinstance(name, str):
            raise SdradError("adopted histogram must expose a .name string")
        self._adopted[name] = histogram

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------

    def iter_counters(self) -> "list[Counter]":
        return list(self._counters.values())

    def iter_gauges(self) -> "list[Gauge]":
        return list(self._gauges.values())

    def iter_histograms(self) -> "list[BucketHistogram]":
        return list(self._histograms.values())

    def iter_adopted(self) -> "list[object]":
        return [self._adopted[name] for name in sorted(self._adopted)]

    def counter_total(self, name: str, **labels: object) -> int:
        """Sum of a counter family across label sets matching ``labels``.

        Only the labels given are constrained; e.g.
        ``counter_total("app_requests_total", app="memcached")`` sums over
        every ``status``.
        """
        want = {k: str(v) for k, v in labels.items()}
        total = 0
        for (fam, items), metric in self._counters.items():
            if fam != name:
                continue
            have = dict(items)
            if all(have.get(k) == v for k, v in want.items()):
                total += metric.value
        return total

    def gauge_value(self, name: str, **labels: object) -> float:
        key = (name, _label_items({k: str(v) for k, v in labels.items()}))
        metric = self._gauges.get(key)
        return metric.value if metric is not None else 0.0

    def snapshot(self) -> "dict[str, object]":
        """Flatten everything into a JSON-friendly dict, sorted by key.

        Keys are ``kind/name{label="v",...}``; histogram values are
        ``{"count", "sum", "buckets": {le: cumulative}}``.
        """
        out: "dict[str, object]" = {}
        for (name, items), metric in self._counters.items():
            out[f"counter/{_render_key(name, items)}"] = metric.value
        for (name, items), metric in self._gauges.items():
            out[f"gauge/{_render_key(name, items)}"] = metric.value
        for (name, items), metric in self._histograms.items():
            out[f"histogram/{_render_key(name, items)}"] = {
                "count": metric.count,
                "sum": metric.sum,
                "buckets": {
                    ("+Inf" if math.isinf(le) else repr(le)): n
                    for le, n in metric.cumulative()
                },
            }
        for name in sorted(self._adopted):
            hist = self._adopted[name]
            count = getattr(hist, "count", 0)
            if count:
                out[f"summary/{name}"] = hist.summary().as_dict()  # type: ignore[attr-defined]
            else:
                out[f"summary/{name}"] = {"count": 0}
        return dict(sorted(out.items()))


def _render_key(name: str, items: "tuple[tuple[str, str], ...]") -> str:
    if not items:
        return name
    labels = ",".join(f'{k}="{v}"' for k, v in items)
    return f"{name}{{{labels}}}"
