"""The ``python -m repro obs`` demo: a fully-observed memcached run.

Drives a deterministic mixed workload — honest sets/gets, pipelined
batches, and periodic malicious requests that smash the parser's stack
buffer — through an obs-instrumented :class:`MemcachedServer`, then
reports what the observability layer saw: request/rewind metrics, the
span buffer, the sustainability ledger (joules and gCO₂e per request for
rewind vs restart recovery), and the telemetry consistency check.

``scripts/obs_report.py`` is a thin wrapper over the same entry point.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from ..apps.memcached_server import IsolationMode, MemcachedServer
from ..sdrad.runtime import SdradRuntime
from ..sdrad.telemetry import consistency_check
from ..sdrad.watchdog import FaultWatchdog, WatchdogConfig
from ..sim.cost import GIB
from .exporters import write_jsonl, write_prometheus
from .hub import Observability
from .ledger import SustainabilityLedger

#: Every Nth request is an exploit attempt (over-long key, BUG 1).
MALICIOUS_EVERY = 9
#: Every Nth request is sent as the head of a 4-request pipeline.
BATCH_EVERY = 7

_ATTACK = b"get " + b"A" * 300 + b"\r\n"


@dataclass
class DemoRun:
    """Everything the demo produced, for reporting and tests."""

    runtime: SdradRuntime
    server: MemcachedServer
    obs: Observability
    requests_sent: int


def run_demo_workload(
    requests: int = 200,
    clients: int = 4,
    sampling: float = 1.0,
) -> DemoRun:
    """Run the deterministic demo workload; returns the live objects."""
    if requests < 1:
        raise ValueError(f"need at least one request, got {requests}")
    if clients < 1:
        raise ValueError(f"need at least one client, got {clients}")
    obs = Observability(sampling=sampling)
    runtime = SdradRuntime(obs=obs)
    watchdog = FaultWatchdog(
        runtime.clock,
        # Tolerant enough that the demo shows rewinds *and* (for longer
        # runs) an eventual quarantine, not a wall of refusals.
        WatchdogConfig(threshold=8, window=60.0, quarantine_period=1.0),
        obs=obs,
    )
    server = MemcachedServer(
        runtime,
        isolation=IsolationMode.PER_CONNECTION,
        watchdog=watchdog,
    )
    names = [f"client-{i}" for i in range(clients)]
    for name in names:
        server.connect(name)

    sent = 0
    i = 0
    while sent < requests:
        client = names[i % clients]
        if i % MALICIOUS_EVERY == MALICIOUS_EVERY - 1:
            server.handle(client, _ATTACK)
            sent += 1
        elif i % BATCH_EVERY == BATCH_EVERY - 1:
            batch = [
                b"set batch%d 0 0 5\r\nhello\r\n" % i,
                b"get batch%d\r\n" % i,
                b"get batch%d\r\n" % (i - BATCH_EVERY),
                b"stats\r\n",
            ]
            server.handle_batch(client, batch)
            sent += len(batch)
        else:
            if i % 2 == 0:
                server.handle(client, b"set key%d 0 0 4\r\ndata\r\n" % i)
            else:
                server.handle(client, b"get key%d\r\n" % (i - 1))
            sent += 1
        i += 1
    return DemoRun(runtime=runtime, server=server, obs=obs, requests_sent=sent)


def render_report(
    run: DemoRun,
    dataset_bytes: int = 10 * GIB,
) -> str:
    """The human-readable report ``python -m repro obs`` prints."""
    obs = run.obs
    registry = obs.registry
    lines = [
        "observability demo — memcached, per-connection isolation",
        "",
        f"requests served      {registry.counter_total('app_requests_total')}",
        f"  ok                 {registry.counter_total('app_requests_total', status='ok')}",
        f"  faulted (rewound)  {registry.counter_total('app_requests_total', status='fault')}",
        f"  refused            {registry.counter_total('app_requests_total', status='refused')}",
        f"batches              {registry.counter_total('app_batches_total')}",
        f"domain entries       {registry.counter_total('sdrad_domain_entries_total')}",
        f"faults detected      {registry.counter_total('sdrad_domain_faults_total')}",
        f"rewinds              {registry.counter_total('sdrad_rewinds_total')}",
        f"quarantines          {registry.counter_total('watchdog_quarantines_total')}",
        f"spans recorded       {len(obs.buffer)} (sampling={obs.sampling})",
        f"virtual time         {run.runtime.clock.now * 1e3:.3f} ms",
        "",
        "sustainability ledger (live metrics x frozen E5 models):",
    ]
    ledger = SustainabilityLedger(
        registry, run.runtime.clock, cost=run.runtime.cost,
        dataset_bytes=dataset_bytes,
    )
    lines.append(ledger.format_entries())
    lines.append("")
    problems = consistency_check(run.runtime)
    if problems:
        lines.append("CONSISTENCY CHECK FAILED:")
        lines.extend(f"  - {p}" for p in problems)
    else:
        lines.append("consistency check: ok (telemetry and obs agree)")
    return "\n".join(lines)


def run_and_report(
    requests: int = 200,
    clients: int = 4,
    sampling: float = 1.0,
    dataset_gib: float = 10.0,
    trace_out: Optional[str] = None,
    metrics_out: Optional[str] = None,
) -> tuple[str, int]:
    """Run the demo and render the report; returns (text, exit_code)."""
    run = run_demo_workload(requests=requests, clients=clients, sampling=sampling)
    text = render_report(run, dataset_bytes=int(dataset_gib * GIB))
    if trace_out:
        count = write_jsonl(run.obs.buffer, trace_out)
        text += f"\ntrace: {count} spans -> {trace_out}"
    if metrics_out:
        write_prometheus(run.obs.registry, metrics_out)
        text += f"\nmetrics snapshot -> {metrics_out}"
    failed = bool(consistency_check(run.runtime))
    return text, (1 if failed else 0)
