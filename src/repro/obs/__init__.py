"""Unified observability: tracing spans, metrics, exporters, ledger.

The subsystem the serving stack reports itself through:

* :mod:`~repro.obs.spans` — parent-linked spans over virtual time;
* :mod:`~repro.obs.metrics` — counters/gauges/fixed-bucket histograms in
  one :class:`ObsRegistry` (the ``repro.sim.metrics`` primitives register
  here too);
* :mod:`~repro.obs.hub` — the :class:`Observability` hub handed to
  ``SdradRuntime(obs=...)`` and the app servers; deterministic sampling,
  strict no-op when absent;
* :mod:`~repro.obs.exporters` — JSONL traces, Prometheus-text metrics;
* :mod:`~repro.obs.ledger` — live joules/gCO₂e per request per recovery
  strategy, folded from the sustainability models over live metrics.

``repro.obs.report`` (imported on demand by the CLI and
``scripts/obs_report.py``) runs the demo workload behind
``python -m repro obs``.
"""

from .exporters import (
    parse_jsonl,
    parse_prometheus_samples,
    prometheus_text,
    spans_to_jsonl,
    write_jsonl,
    write_prometheus,
)
from .hub import DROPPED, UNSAMPLED, Observability
from .metrics import (
    BATCH_SIZE_BUCKETS,
    REQUEST_LATENCY_BUCKETS,
    REWIND_LATENCY_BUCKETS,
    BucketHistogram,
    Counter,
    Gauge,
    ObsRegistry,
)
from .spans import ObsError, Span, SpanBuffer

# The ledger pulls in the sim/resilience/sustainability packages, and
# repro.sim.metrics imports repro.obs.metrics — importing the ledger
# eagerly here would close that loop. PEP 562 lazy attributes keep
# ``from repro.obs import SustainabilityLedger`` working without the
# cycle.
_LAZY = {
    "DEFAULT_DATASET_BYTES": "ledger",
    "LedgerEntry": "ledger",
    "SustainabilityLedger": "ledger",
}


def __getattr__(name: str):
    module_name = _LAZY.get(name)
    if module_name is None:
        raise AttributeError(f"module {__name__!r} has no attribute {name!r}")
    from importlib import import_module

    module = import_module(f".{module_name}", __name__)
    value = getattr(module, name)
    globals()[name] = value
    return value


__all__ = [
    "BATCH_SIZE_BUCKETS",
    "BucketHistogram",
    "Counter",
    "DEFAULT_DATASET_BYTES",
    "DROPPED",
    "Gauge",
    "LedgerEntry",
    "ObsError",
    "ObsRegistry",
    "Observability",
    "REQUEST_LATENCY_BUCKETS",
    "REWIND_LATENCY_BUCKETS",
    "Span",
    "SpanBuffer",
    "SustainabilityLedger",
    "UNSAMPLED",
    "parse_jsonl",
    "parse_prometheus_samples",
    "prometheus_text",
    "spans_to_jsonl",
    "write_jsonl",
    "write_prometheus",
]
