"""The observability hub: one object wiring spans, metrics and sampling.

An :class:`Observability` instance is handed to :class:`SdradRuntime`
(``obs=`` keyword) and to the app servers; everything it owns — the span
buffer, the metric registry, the sampler state — is per-run, so two
simulations never share observability state by accident.

Fast-path contract
------------------

The default is ``obs=None`` and every instrumentation site in the hot
path guards with a single ``if obs is not None`` — the disabled cost is
one attribute load and a falsy check, verified by the ``memcached_obs``
bench. With obs enabled, the hot path is budgeted for the ≤1.05x
wall-clock gate (DESIGN.md §9):

* span records go into a **preallocated buffer** (one index store), with
  names/statuses interned to integer codes and materialised only at
  export time;
* once the buffer saturates, span *construction* stops too: the stack
  tracks the shared :data:`DROPPED` placeholder while ids, the sampling
  accumulator and the ``dropped`` counter keep advancing exactly as if
  the span had been built and then dropped — virtual time and metric
  values are bit-identical either way;
* :meth:`record_request`/:meth:`record_batch` resolve their metric
  handles once per ``(app, status)`` and reuse them — label resolution is
  a registry-construction cost, not a per-request cost.

When obs is enabled but ``sampling < 1.0``, span construction is skipped
for unsampled traces (a shared sentinel is pushed instead, no
allocation), while **metrics are always recorded** — counters must stay
exact for :func:`repro.sdrad.telemetry.consistency_check` to cross-check
them against the runtime's own statistics.

Sampling is deterministic: an accumulator gains ``sampling`` per root
span and fires when it reaches 1.0, so ``sampling=0.25`` keeps exactly
every 4th trace — reproducible without consuming any RNG stream.
"""

from __future__ import annotations

from bisect import bisect_left
from contextlib import contextmanager
from typing import Iterator, Optional, Union

from .metrics import ObsRegistry
from .spans import ObsError, Span, SpanBuffer


class _UnsampledSpan:
    """Shared stack placeholder for spans of an unsampled trace.

    Keeps LIFO bookkeeping intact without allocating per-span objects on
    the sampled-out path. All methods accept-and-ignore so call sites can
    treat it like a Span when annotating attributes.
    """

    __slots__ = ()

    sampled = False

    def set_attrs(self, **attrs: object) -> None:
        pass

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return "<unsampled span>"


class _DroppedSpan(_UnsampledSpan):
    """Placeholder for a sampled span sacrificed to a saturated buffer.

    Distinct from :data:`UNSAMPLED` because the *trace was sampled*: ids
    advanced, metrics recorded, only the span record itself is gone —
    ``sampled`` stays ``True`` so callers branching on it behave as if
    the span existed, and ``end_span`` turns it into a ``dropped`` count.
    """

    __slots__ = ()

    sampled = True

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return "<dropped span (buffer full)>"


UNSAMPLED = _UnsampledSpan()
DROPPED = _DroppedSpan()

SpanLike = Union[Span, _UnsampledSpan]


class Observability:
    """Per-run hub: span buffer + metric registry + deterministic sampler."""

    def __init__(
        self,
        registry: Optional[ObsRegistry] = None,
        sampling: float = 1.0,
        clock: Optional[object] = None,
        span_capacity: Optional[int] = 100_000,
    ) -> None:
        if not 0.0 <= sampling <= 1.0:
            raise ObsError(f"sampling must be in [0, 1], got {sampling}")
        self.registry = registry if registry is not None else ObsRegistry()
        self.sampling = sampling
        self.clock = clock
        self.buffer = SpanBuffer(capacity=span_capacity)
        self._stack: "list[SpanLike]" = []
        self._next_span_id = 1
        self._next_trace_id = 1
        self._accum = 0.0
        # (app, status) -> (counter, histogram); app -> (counter, histogram).
        self._request_metrics: dict = {}
        self._batch_metrics: dict = {}
        self._pipeline_metrics: dict = {}

    # ------------------------------------------------------------------
    # Clock
    # ------------------------------------------------------------------

    def bind_clock(self, clock: object) -> None:
        """Adopt the runtime's virtual clock unless one was given explicitly."""
        if self.clock is None:
            self.clock = clock

    def now(self) -> float:
        return self.clock.now if self.clock is not None else 0.0

    # ------------------------------------------------------------------
    # Sampling
    # ------------------------------------------------------------------

    def _sample_root(self) -> bool:
        self._accum += self.sampling
        if self._accum >= 1.0 - 1e-12:
            self._accum -= 1.0
            return True
        return False

    # ------------------------------------------------------------------
    # Spans
    # ------------------------------------------------------------------

    def start_span(self, name: str, **attrs: object) -> SpanLike:
        """Open a span as a child of the innermost open span (if any).

        Returns the span to later pass to :meth:`end_span`. May return the
        shared unsampled placeholder (trace sampled out) or the shared
        dropped placeholder (buffer saturated); callers treat all three
        uniformly.
        """
        stack = self._stack
        if stack:
            parent = stack[-1]
            if parent is UNSAMPLED:
                stack.append(UNSAMPLED)
                return UNSAMPLED
            if parent is DROPPED or self.buffer.full:
                # Saturation fast path: advance the id exactly as the
                # build-then-drop path would, skip the construction.
                self._next_span_id += 1
                stack.append(DROPPED)
                return DROPPED
            span = Span(
                span_id=self._next_span_id,
                trace_id=parent.trace_id,  # type: ignore[union-attr]
                parent_id=parent.span_id,  # type: ignore[union-attr]
                name=name,
                start=self.now(),
                attrs=attrs,
            )
        else:
            if not self._sample_root():
                stack.append(UNSAMPLED)
                return UNSAMPLED
            if self.buffer.full:
                self._next_span_id += 1
                self._next_trace_id += 1
                stack.append(DROPPED)
                return DROPPED
            span = Span(
                span_id=self._next_span_id,
                trace_id=self._next_trace_id,
                parent_id=None,
                name=name,
                start=self.now(),
                attrs=attrs,
            )
            self._next_trace_id += 1
        self._next_span_id += 1
        stack.append(span)
        return span

    def end_span(
        self, span: SpanLike, status: str = "ok", **attrs: object
    ) -> None:
        """Close ``span``; it must be the innermost open span (strict LIFO)."""
        stack = self._stack
        if not stack:
            raise ObsError("end_span with no open span")
        top = stack.pop()
        if span is UNSAMPLED or span is DROPPED:
            if top is not span:
                stack.append(top)
                raise ObsError(
                    f"mis-nested end_span: expected {span!r}, "
                    f"innermost open span is {top!r}"
                )
            if span is DROPPED:
                self.buffer.dropped += 1
            return
        if top is not span:
            stack.append(top)
            raise ObsError(
                f"mis-nested end_span: {span!r} is not the innermost open "
                f"span ({top!r} is)"
            )
        span.end = self.now()
        span.status = status
        if attrs:
            span.attrs.update(attrs)
        self.buffer.append(span)

    @contextmanager
    def span(self, name: str, **attrs: object) -> "Iterator[SpanLike]":
        """Context-managed span; exceptions close it with status ``error``."""
        handle = self.start_span(name, **attrs)
        try:
            yield handle
        except BaseException:
            self.end_span(handle, status="error")
            raise
        else:
            self.end_span(handle)

    def event(self, name: str, **attrs: object) -> Optional[Span]:
        """Record a point-in-time (zero-duration) span under the open span.

        Used for lifecycle moments that have a cause but no extent of their
        own at recording time — a fault classification, a rewind (whose
        simulated duration rides in ``attrs``), a quarantine trip. Returns
        ``None`` when the trace is sampled out or the buffer is saturated.
        """
        stack = self._stack
        if stack:
            parent = stack[-1]
            if parent is UNSAMPLED or parent is DROPPED:
                return None
            if self.buffer.full:
                self._next_span_id += 1
                self.buffer.dropped += 1
                return None
            trace_id = parent.trace_id  # type: ignore[union-attr]
            parent_id: Optional[int] = parent.span_id  # type: ignore[union-attr]
        else:
            if not self._sample_root():
                return None
            if self.buffer.full:
                self._next_span_id += 1
                self._next_trace_id += 1
                self.buffer.dropped += 1
                return None
            trace_id = self._next_trace_id
            self._next_trace_id += 1
            parent_id = None
        ts = self.now()
        span = Span(
            span_id=self._next_span_id,
            trace_id=trace_id,
            parent_id=parent_id,
            name=name,
            start=ts,
            end=ts,
            status="ok",
            attrs=attrs,
        )
        self._next_span_id += 1
        self.buffer.append(span)
        return span

    @property
    def open_span_count(self) -> int:
        """Open spans, including unsampled placeholders (must be 0 at rest)."""
        return len(self._stack)

    # ------------------------------------------------------------------
    # App-level conveniences (one call site per request keeps apps tidy)
    # ------------------------------------------------------------------

    def record_request(self, app: str, elapsed: float, status: str = "ok") -> None:
        key = (app, status)
        pair = self._request_metrics.get(key)
        if pair is None:
            pair = (
                self.registry.counter(
                    "app_requests_total", app=app, status=status
                ),
                self.registry.histogram(
                    "app_request_latency_seconds", app=app
                ),
            )
            self._request_metrics[key] = pair
        pair[0].increment()
        pair[1].observe(elapsed)

    def record_requests(
        self, app: str, elapsed: float, statuses: "list[str]"
    ) -> None:
        """Batched :meth:`record_request`: every request shares ``elapsed``.

        One counter bump and one histogram update per *distinct* status
        (the common pipeline is all-``"ok"``, so usually one of each)
        replaces a full call per request; the recorded metrics are
        bit-identical to the per-request loop.
        """
        if not statuses:
            return
        counts: "dict[str, int]" = {}
        for status in statuses:
            counts[status] = counts.get(status, 0) + 1
        for status, count in counts.items():
            self.record_request_batch(app, elapsed, status, count)

    def record_request_batch(
        self, app: str, elapsed: float, status: str, count: int
    ) -> None:
        """Uniform-status :meth:`record_requests` without building a list.

        The steady-state pipeline is all-``"ok"``; callers that already
        know the batch is uniform skip the per-request status list and the
        grouping pass entirely. Metric values are bit-identical to the
        per-request loop (``count`` repeated additions of ``elapsed``).
        """
        if count <= 0:
            return
        key = (app, status)
        pair = self._request_metrics.get(key)
        if pair is None:
            pair = (
                self.registry.counter(
                    "app_requests_total", app=app, status=status
                ),
                self.registry.histogram(
                    "app_request_latency_seconds", app=app
                ),
            )
            self._request_metrics[key] = pair
        pair[0].increment(count)
        pair[1].observe_many(elapsed, count)

    def record_batch(self, app: str, size: int) -> None:
        pair = self._batch_metrics.get(app)
        if pair is None:
            pair = (
                self.registry.counter("app_batches_total", app=app),
                self.registry.histogram("app_batch_size", app=app),
            )
            self._batch_metrics[app] = pair
        pair[0].increment()
        pair[1].observe(size)

    def record_pipeline(
        self, app: str, size: int, elapsed: float, count: int
    ) -> None:
        """Fused :meth:`record_batch` + all-``"ok"`` request accounting.

        The pipelined steady state records the same four metric updates
        every batch; fusing them into one call with one cached handle
        tuple halves the per-batch call and dict-probe count on the hot
        path the <=1.05x overhead gate measures. Metric values are
        bit-identical to ``record_batch(app, size)`` followed by
        ``record_request_batch(app, elapsed, "ok", count)``.
        """
        handles = self._pipeline_metrics.get(app)
        if handles is None:
            handles = (
                self.registry.counter("app_batches_total", app=app),
                self.registry.histogram("app_batch_size", app=app),
                self.registry.counter(
                    "app_requests_total", app=app, status="ok"
                ),
                self.registry.histogram(
                    "app_request_latency_seconds", app=app
                ),
            )
            self._pipeline_metrics[app] = handles
        batches, sizes, requests, latency = handles
        # Inlined Counter.increment / BucketHistogram.observe[_many]: four
        # method frames per batch are measurable against the 1.05x budget.
        # The updates are field-for-field identical to the method bodies,
        # including the repeated addition in observe_many (bit-identical
        # to ``count`` single observations).
        batches._value += 1
        size = float(size)
        sizes._bucket_counts[bisect_left(sizes.buckets, size)] += 1
        sizes._sum += size
        sizes._count += 1
        if count > 0:
            requests._value += count
            elapsed = float(elapsed)
            latency._bucket_counts[bisect_left(latency.buckets, elapsed)] += count
            total = latency._sum
            for _ in range(count):
                total += elapsed
            latency._sum = total
            latency._count += count
