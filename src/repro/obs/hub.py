"""The observability hub: one object wiring spans, metrics and sampling.

An :class:`Observability` instance is handed to :class:`SdradRuntime`
(``obs=`` keyword) and to the app servers; everything it owns — the span
buffer, the metric registry, the sampler state — is per-run, so two
simulations never share observability state by accident.

Fast-path contract
------------------

The default is ``obs=None`` and every instrumentation site in the hot
path guards with a single ``if obs is not None`` — the disabled cost is
one attribute load and a falsy check, verified by the ``memcached_obs``
bench. When obs is enabled but ``sampling < 1.0``, span construction is
skipped for unsampled traces (a shared sentinel is pushed instead, no
allocation), while **metrics are always recorded** — counters must stay
exact for :func:`repro.sdrad.telemetry.consistency_check` to cross-check
them against the runtime's own statistics.

Sampling is deterministic: an accumulator gains ``sampling`` per root
span and fires when it reaches 1.0, so ``sampling=0.25`` keeps exactly
every 4th trace — reproducible without consuming any RNG stream.
"""

from __future__ import annotations

from contextlib import contextmanager
from typing import Iterator, Optional, Union

from .metrics import ObsRegistry
from .spans import ObsError, Span, SpanBuffer


class _UnsampledSpan:
    """Shared stack placeholder for spans of an unsampled trace.

    Keeps LIFO bookkeeping intact without allocating per-span objects on
    the sampled-out path. All methods accept-and-ignore so call sites can
    treat it like a Span when annotating attributes.
    """

    __slots__ = ()

    sampled = False

    def set_attrs(self, **attrs: object) -> None:
        pass

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return "<unsampled span>"


UNSAMPLED = _UnsampledSpan()

SpanLike = Union[Span, _UnsampledSpan]


class Observability:
    """Per-run hub: span buffer + metric registry + deterministic sampler."""

    def __init__(
        self,
        registry: Optional[ObsRegistry] = None,
        sampling: float = 1.0,
        clock: Optional[object] = None,
        span_capacity: Optional[int] = 100_000,
    ) -> None:
        if not 0.0 <= sampling <= 1.0:
            raise ObsError(f"sampling must be in [0, 1], got {sampling}")
        self.registry = registry if registry is not None else ObsRegistry()
        self.sampling = sampling
        self.clock = clock
        self.buffer = SpanBuffer(capacity=span_capacity)
        self._stack: "list[SpanLike]" = []
        self._next_span_id = 1
        self._next_trace_id = 1
        self._accum = 0.0

    # ------------------------------------------------------------------
    # Clock
    # ------------------------------------------------------------------

    def bind_clock(self, clock: object) -> None:
        """Adopt the runtime's virtual clock unless one was given explicitly."""
        if self.clock is None:
            self.clock = clock

    def now(self) -> float:
        return self.clock.now if self.clock is not None else 0.0

    # ------------------------------------------------------------------
    # Sampling
    # ------------------------------------------------------------------

    def _sample_root(self) -> bool:
        self._accum += self.sampling
        if self._accum >= 1.0 - 1e-12:
            self._accum -= 1.0
            return True
        return False

    # ------------------------------------------------------------------
    # Spans
    # ------------------------------------------------------------------

    def start_span(self, name: str, **attrs: object) -> SpanLike:
        """Open a span as a child of the innermost open span (if any).

        Returns the span to later pass to :meth:`end_span`. May return the
        shared unsampled placeholder; callers treat both uniformly.
        """
        if self._stack:
            parent = self._stack[-1]
            if parent is UNSAMPLED:
                self._stack.append(UNSAMPLED)
                return UNSAMPLED
            span = Span(
                span_id=self._next_span_id,
                trace_id=parent.trace_id,  # type: ignore[union-attr]
                parent_id=parent.span_id,  # type: ignore[union-attr]
                name=name,
                start=self.now(),
                attrs=dict(attrs),
            )
        else:
            if not self._sample_root():
                self._stack.append(UNSAMPLED)
                return UNSAMPLED
            span = Span(
                span_id=self._next_span_id,
                trace_id=self._next_trace_id,
                parent_id=None,
                name=name,
                start=self.now(),
                attrs=dict(attrs),
            )
            self._next_trace_id += 1
        self._next_span_id += 1
        self._stack.append(span)
        return span

    def end_span(
        self, span: SpanLike, status: str = "ok", **attrs: object
    ) -> None:
        """Close ``span``; it must be the innermost open span (strict LIFO)."""
        if not self._stack:
            raise ObsError("end_span with no open span")
        top = self._stack.pop()
        if span is UNSAMPLED:
            if top is not UNSAMPLED:
                self._stack.append(top)
                raise ObsError(
                    f"mis-nested end_span: expected unsampled placeholder, "
                    f"innermost open span is {top!r}"
                )
            return
        if top is not span:
            self._stack.append(top)
            raise ObsError(
                f"mis-nested end_span: {span!r} is not the innermost open "
                f"span ({top!r} is)"
            )
        assert isinstance(span, Span)
        span.end = self.now()
        span.status = status
        if attrs:
            span.attrs.update(attrs)
        self.buffer.append(span)

    @contextmanager
    def span(self, name: str, **attrs: object) -> "Iterator[SpanLike]":
        """Context-managed span; exceptions close it with status ``error``."""
        handle = self.start_span(name, **attrs)
        try:
            yield handle
        except BaseException:
            self.end_span(handle, status="error")
            raise
        else:
            self.end_span(handle)

    def event(self, name: str, **attrs: object) -> Optional[Span]:
        """Record a point-in-time (zero-duration) span under the open span.

        Used for lifecycle moments that have a cause but no extent of their
        own at recording time — a fault classification, a rewind (whose
        simulated duration rides in ``attrs``), a quarantine trip.
        """
        if self._stack:
            parent = self._stack[-1]
            if parent is UNSAMPLED:
                return None
            trace_id = parent.trace_id  # type: ignore[union-attr]
            parent_id: Optional[int] = parent.span_id  # type: ignore[union-attr]
        else:
            if not self._sample_root():
                return None
            trace_id = self._next_trace_id
            self._next_trace_id += 1
            parent_id = None
        ts = self.now()
        span = Span(
            span_id=self._next_span_id,
            trace_id=trace_id,
            parent_id=parent_id,
            name=name,
            start=ts,
            end=ts,
            status="ok",
            attrs=dict(attrs),
        )
        self._next_span_id += 1
        self.buffer.append(span)
        return span

    @property
    def open_span_count(self) -> int:
        """Open spans, including unsampled placeholders (must be 0 at rest)."""
        return len(self._stack)

    # ------------------------------------------------------------------
    # App-level conveniences (one call site per request keeps apps tidy)
    # ------------------------------------------------------------------

    def record_request(self, app: str, elapsed: float, status: str = "ok") -> None:
        self.registry.counter("app_requests_total", app=app, status=status).increment()
        self.registry.histogram("app_request_latency_seconds", app=app).observe(elapsed)

    def record_batch(self, app: str, size: int) -> None:
        self.registry.counter("app_batches_total", app=app).increment()
        self.registry.histogram("app_batch_size", app=app).observe(size)
