"""Command-line interface: ``python -m repro <command>``.

Gives downstream users the paper's headline analyses without writing code:

* ``demo``          — the quickstart fault/rewind walk-through;
* ``recovery``      — E2's recovery-latency table for a dataset size;
* ``availability``  — E3's simulated service-year comparison;
* ``lca``           — E5's energy/carbon table (+ rebound sensitivity);
* ``crossover``     — E8's SLO crossover map;
* ``fleet``         — live consistent-hash sharded fleet run (latency
  percentiles, availability, sustainability ledger); ``--scenarios``
  prints the §IV case-study table instead;
* ``inject``        — run a fault-injection campaign and report containment;
* ``obs``           — observed memcached demo: spans, metrics, live
  sustainability ledger (joules / gCO2e per request, rewind vs restart);
* ``backends``      — list the pluggable isolation substrates (MPK,
  simulated CHERI, SFI) with their limits; ``--demo <backend>`` runs an
  E4-style containment check on the chosen substrate.
"""

from __future__ import annotations

import argparse
import sys
from typing import Optional, Sequence

from .faultinj.campaign import PeriodicArrivals
from .faultinj.injector import FaultInjector
from .faultinj.models import FaultKind
from .resilience.simulation import compare_strategies
from .resilience.slo import SLO_LADDER, crossover_faults
from .resilience.strategy import RecoveryStrategyModel
from .sdrad.constants import DomainFlags
from .sdrad.runtime import SdradRuntime
from .sim.clock import YEARS
from .sim.cost import GIB
from .sustainability.lca import LifecycleAssessment
from .sustainability.report import (
    availability_table,
    format_seconds,
    format_table,
    lca_table,
)
from .sustainability.scenarios import DEFAULT_SCENARIOS, assess_fleet, summarize


def _cmd_demo(_args: argparse.Namespace) -> int:
    runtime = SdradRuntime()
    domain = runtime.domain_init(flags=DomainFlags.RETURN_TO_PARENT)
    print(f"created {domain!r}")

    result = runtime.execute(domain.udi, lambda h: h.load(h.malloc(16), 4))
    print(f"clean call -> ok={result.ok}")

    result = runtime.execute(domain.udi, lambda h: h.store(0, b"null write"))
    print(
        f"null write -> ok={result.ok}, detected by {result.fault.mechanism.value}, "
        f"rewound in {format_seconds(result.recovery_time)}"
    )
    result = runtime.execute(domain.udi, lambda h: "alive")
    print(f"after rewind -> {result.value}")
    return 0


def _cmd_recovery(args: argparse.Namespace) -> int:
    model = RecoveryStrategyModel()
    dataset = int(args.dataset_gib * GIB)
    rows = []
    for spec in model.all_for(dataset):
        rows.append(
            (
                spec.name,
                format_seconds(spec.downtime_per_fault),
                spec.replicas,
                f"{spec.runtime_overhead:.0%}",
            )
        )
    print(format_table(("strategy", "downtime/fault", "replicas", "overhead"), rows))
    return 0


def _cmd_availability(args: argparse.Namespace) -> int:
    model = RecoveryStrategyModel()
    dataset = int(args.dataset_gib * GIB)
    times = list(PeriodicArrivals(args.faults).times(YEARS))
    outcomes = compare_strategies(
        model.all_for(dataset), times, request_rate=args.request_rate
    )
    print(
        f"one simulated year, {args.faults} fault(s), "
        f"{args.dataset_gib} GiB dataset:\n"
    )
    print(availability_table(outcomes))
    return 0


def _cmd_lca(args: argparse.Namespace) -> int:
    lca = LifecycleAssessment()
    rows = lca.assess(
        dataset_bytes=int(args.dataset_gib * GIB),
        faults_per_year=args.faults,
        availability_target=args.target,
    )
    print(lca_table(rows))
    saving = lca.carbon_saving(rows, rebound_fraction=args.rebound)
    print(
        f"\nnet saving vs worst compliant alternative "
        f"(rebound {args.rebound:.0%}): {saving:.1f} kgCO2e/yr"
    )
    return 0


def _cmd_crossover(args: argparse.Namespace) -> int:
    model = RecoveryStrategyModel()
    rows = []
    for gib in args.dataset_gib:
        restart = model.process_restart(int(gib * GIB)).downtime_per_fault
        rows.append(
            (f"{gib:g} GiB",)
            + tuple(f"{crossover_faults(restart, slo):.1f}" for slo in SLO_LADDER)
        )
    rows.append(
        ("rewind",)
        + tuple(f"{crossover_faults(3.5e-6, slo):.1e}" for slo in SLO_LADDER)
    )
    print(
        format_table(("dataset", *[slo.name for slo in SLO_LADDER]), rows)
    )
    return 0


def _cmd_fleet(args: argparse.Namespace) -> int:
    if args.scenarios:
        assessments = [
            assess_fleet(scenario, rebound_fraction=args.rebound)
            for scenario in DEFAULT_SCENARIOS
        ]
        print(
            format_table(
                (
                    "scenario",
                    "nodes",
                    "servers (restart)",
                    "servers (sdrad)",
                    "avoided",
                    "energy saved/yr",
                    "carbon saved/yr",
                ),
                summarize(assessments),
            )
        )
        return 0

    # Imported here, not at module top: the live fleet pulls in the full
    # serving stack, which the table-only path does not need.
    from .fleet import FleetRunConfig, HealthConfig, run_fleet

    config = FleetRunConfig(
        shards=args.shards,
        seed=args.seed,
        keyspace=args.keyspace,
        rate=args.rate,
        horizon=args.horizon,
        autoscale=args.autoscale,
        kill_at=args.kill_at,
        outage=args.outage,
        health_config=HealthConfig(probe_interval=0.05),
    )
    report = run_fleet(config)
    print(
        f"fleet run: {args.shards} shard(s), {args.keyspace} keys, "
        f"{args.rate:g} req/s for {args.horizon:g}s (seed {args.seed})"
    )
    print(report.format())
    return 0


def _cmd_inject(args: argparse.Namespace) -> int:
    runtime = SdradRuntime()
    domain = runtime.domain_init(flags=DomainFlags.RETURN_TO_PARENT)
    injector = FaultInjector(runtime)
    kinds = (
        [FaultKind(args.kind)] if args.kind != "all" else list(FaultKind)
    )
    for kind in kinds:
        for _ in range(args.count):
            injector.inject(domain.udi, kind)
    summary = injector.summary
    print(
        f"injected {summary.total} fault(s); detected {summary.detected}, "
        f"contained {summary.contained} "
        f"(containment {summary.containment_rate:.0%})"
    )
    rows = [(k, v) for k, v in sorted(summary.by_mechanism.items())]
    if rows:
        print(format_table(("detection mechanism", "count"), rows))
    print(
        f"total recovery time: {format_seconds(summary.total_recovery_time)}"
    )
    return 0


def _cmd_obs(args: argparse.Namespace) -> int:
    # Imported here, not at module top: the obs report pulls in the app
    # stack, which no other subcommand needs.
    from .obs.report import run_and_report

    text, code = run_and_report(
        requests=args.requests,
        clients=args.clients,
        sampling=args.sampling,
        dataset_gib=args.dataset_gib,
        trace_out=args.trace_out,
        metrics_out=args.metrics_out,
    )
    print(text)
    return code


def _cmd_backends(args: argparse.Namespace) -> int:
    from .memory.backends import available_backends, resolve_backend
    from .sim.cost import DEFAULT_COST_MODEL

    rows = []
    for name in available_backends():
        limits = resolve_backend(name).limits(DEFAULT_COST_MODEL)
        rows.append(
            (
                limits.name,
                "unbounded" if limits.max_domains is None else limits.max_domains,
                format_seconds(limits.gate_cost) if limits.gate_cost else "0 s",
                (
                    format_seconds(limits.per_access_tax)
                    if limits.per_access_tax
                    else "0 s"
                ),
                "yes" if limits.supports_key_virtualization else "no",
            )
        )
    print(
        format_table(
            ("backend", "max domains", "gate cost", "access tax", "keyvirt"),
            rows,
        )
    )

    if args.demo is None:
        return 0

    backend = args.demo
    print(f"\ncontainment demo on backend {backend!r}:")
    runtime = SdradRuntime(backend=backend)
    victim = runtime.domain_init(flags=DomainFlags.RETURN_TO_PARENT)

    def plant_secret(h):
        addr = h.malloc(16)
        h.store(addr, b"victim secret")
        return int(addr)  # materialised: a plain address, not an alias

    secret_addr = runtime.execute(victim.udi, plant_secret).value
    attacker = runtime.domain_init(flags=DomainFlags.RETURN_TO_PARENT)
    attack = runtime.execute(
        attacker.udi, lambda h: h.space.store(secret_addr, b"overwrite")
    )
    print(
        f"  cross-domain store -> ok={attack.ok}, detected by "
        f"{attack.fault.mechanism.value}, rewound in "
        f"{format_seconds(attack.recovery_time)}"
    )
    intact = runtime.execute(
        victim.udi, lambda h: h.load(secret_addr, 13)
    ).value
    print(f"  victim data after rewind: {bytes(intact)!r}")
    alive = runtime.execute(attacker.udi, lambda h: "alive")
    print(f"  attacker domain after rewind: {alive.value}")
    return 0 if not attack.ok and bytes(intact) == b"victim secret" else 1


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="SDRaD reproduction: in-process isolation for resilience",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("demo", help="fault/rewind walk-through").set_defaults(
        func=_cmd_demo
    )

    recovery = sub.add_parser("recovery", help="recovery-latency table (E2)")
    recovery.add_argument("--dataset-gib", type=float, default=10.0)
    recovery.set_defaults(func=_cmd_recovery)

    availability = sub.add_parser(
        "availability", help="simulated service-year (E3)"
    )
    availability.add_argument("--dataset-gib", type=float, default=10.0)
    availability.add_argument("--faults", type=int, default=3)
    availability.add_argument("--request-rate", type=float, default=1000.0)
    availability.set_defaults(func=_cmd_availability)

    lca = sub.add_parser("lca", help="energy/carbon comparison (E5)")
    lca.add_argument("--dataset-gib", type=float, default=10.0)
    lca.add_argument("--faults", type=float, default=3.0)
    lca.add_argument("--target", type=float, default=0.99999)
    lca.add_argument("--rebound", type=float, default=0.0)
    lca.set_defaults(func=_cmd_lca)

    crossover = sub.add_parser("crossover", help="SLO crossover map (E8)")
    crossover.add_argument(
        "--dataset-gib", type=float, nargs="+", default=[0.1, 1.0, 10.0, 100.0]
    )
    crossover.set_defaults(func=_cmd_crossover)

    fleet = sub.add_parser(
        "fleet", help="live sharded fleet run (default) or §IV case studies"
    )
    fleet.add_argument(
        "--scenarios",
        action="store_true",
        help="print the §IV case-study table instead of a live run",
    )
    fleet.add_argument("--rebound", type=float, default=0.0)
    fleet.add_argument("--shards", type=int, default=4)
    fleet.add_argument("--seed", type=int, default=0)
    fleet.add_argument("--keyspace", type=int, default=1_000_000)
    fleet.add_argument("--rate", type=float, default=5_000.0)
    fleet.add_argument("--horizon", type=float, default=2.0)
    fleet.add_argument("--autoscale", action="store_true")
    fleet.add_argument(
        "--kill-at",
        dest="kill_at",
        type=float,
        default=None,
        help="kill shard-0 at this virtual time (failover demo)",
    )
    fleet.add_argument("--outage", type=float, default=0.5)
    fleet.set_defaults(func=_cmd_fleet)

    inject = sub.add_parser("inject", help="fault-injection campaign")
    inject.add_argument(
        "--kind",
        choices=["all"] + [k.value for k in FaultKind],
        default="all",
    )
    inject.add_argument("--count", type=int, default=5)
    inject.set_defaults(func=_cmd_inject)

    obs = sub.add_parser(
        "obs", help="observed demo workload + sustainability ledger"
    )
    obs.add_argument("--requests", type=int, default=200)
    obs.add_argument("--clients", type=int, default=4)
    obs.add_argument("--sampling", type=float, default=1.0)
    obs.add_argument("--dataset-gib", type=float, default=10.0)
    obs.add_argument("--trace-out", help="write the trace as JSONL here")
    obs.add_argument(
        "--metrics-out", help="write a Prometheus text snapshot here"
    )
    obs.set_defaults(func=_cmd_obs)

    backends = sub.add_parser(
        "backends", help="list isolation backends; --demo runs containment"
    )
    backends.add_argument(
        "--demo",
        choices=["mpk", "cheri", "sfi"],
        default=None,
        help="run an E4-style containment demo on this backend",
    )
    backends.set_defaults(func=_cmd_backends)

    return parser


def main(argv: Optional[Sequence[str]] = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)
    return args.func(args)


if __name__ == "__main__":  # pragma: no cover - exercised via __main__
    sys.exit(main())
