"""Command-line interface: ``python -m repro <command>``.

Gives downstream users the paper's headline analyses without writing code:

* ``demo``          — the quickstart fault/rewind walk-through;
* ``recovery``      — E2's recovery-latency table for a dataset size;
* ``availability``  — E3's simulated service-year comparison;
* ``lca``           — E5's energy/carbon table (+ rebound sensitivity);
* ``crossover``     — E8's SLO crossover map;
* ``fleet``         — live consistent-hash sharded fleet run (latency
  percentiles, availability, sustainability ledger); ``--scenarios``
  prints the §IV case-study table instead;
* ``inject``        — run a fault-injection campaign and report containment;
* ``campaign``      — stratified statistical campaign: Clopper–Pearson
  sampling, factorial model fit, carbon-aware policy recommendation and
  closed-loop validation;
* ``obs``           — observed memcached demo: spans, metrics, live
  sustainability ledger (joules / gCO2e per request, rewind vs restart);
* ``backends``      — list the pluggable isolation substrates (MPK,
  simulated CHERI, SFI) with their limits; ``--demo <backend>`` runs an
  E4-style containment check on the chosen substrate.
"""

from __future__ import annotations

import argparse
import sys
from typing import Optional, Sequence

from .faultinj.campaign import PeriodicArrivals
from .faultinj.injector import FaultInjector
from .faultinj.models import FaultKind
from .resilience.simulation import compare_strategies
from .resilience.slo import SLO_LADDER, crossover_faults
from .resilience.strategy import RecoveryStrategyModel
from .sdrad.constants import DomainFlags
from .sdrad.runtime import SdradRuntime
from .sim.clock import YEARS
from .sim.cost import GIB
from .sustainability.lca import LifecycleAssessment
from .sustainability.report import (
    availability_table,
    format_seconds,
    format_table,
    lca_table,
)
from .sustainability.scenarios import DEFAULT_SCENARIOS, assess_fleet, summarize


def _cmd_demo(_args: argparse.Namespace) -> int:
    runtime = SdradRuntime()
    domain = runtime.domain_init(flags=DomainFlags.RETURN_TO_PARENT)
    print(f"created {domain!r}")

    result = runtime.execute(domain.udi, lambda h: h.load(h.malloc(16), 4))
    print(f"clean call -> ok={result.ok}")

    result = runtime.execute(domain.udi, lambda h: h.store(0, b"null write"))
    print(
        f"null write -> ok={result.ok}, detected by {result.fault.mechanism.value}, "
        f"rewound in {format_seconds(result.recovery_time)}"
    )
    result = runtime.execute(domain.udi, lambda h: "alive")
    print(f"after rewind -> {result.value}")
    return 0


def _cmd_recovery(args: argparse.Namespace) -> int:
    model = RecoveryStrategyModel()
    dataset = int(args.dataset_gib * GIB)
    rows = []
    for spec in model.all_for(dataset):
        rows.append(
            (
                spec.name,
                format_seconds(spec.downtime_per_fault),
                spec.replicas,
                f"{spec.runtime_overhead:.0%}",
            )
        )
    print(format_table(("strategy", "downtime/fault", "replicas", "overhead"), rows))
    return 0


def _cmd_availability(args: argparse.Namespace) -> int:
    model = RecoveryStrategyModel()
    dataset = int(args.dataset_gib * GIB)
    times = list(PeriodicArrivals(args.faults).times(YEARS))
    outcomes = compare_strategies(
        model.all_for(dataset), times, request_rate=args.request_rate
    )
    print(
        f"one simulated year, {args.faults} fault(s), "
        f"{args.dataset_gib} GiB dataset:\n"
    )
    print(availability_table(outcomes))
    return 0


def _cmd_lca(args: argparse.Namespace) -> int:
    lca = LifecycleAssessment()
    rows = lca.assess(
        dataset_bytes=int(args.dataset_gib * GIB),
        faults_per_year=args.faults,
        availability_target=args.target,
    )
    print(lca_table(rows))
    saving = lca.carbon_saving(rows, rebound_fraction=args.rebound)
    print(
        f"\nnet saving vs worst compliant alternative "
        f"(rebound {args.rebound:.0%}): {saving:.1f} kgCO2e/yr"
    )
    return 0


def _cmd_crossover(args: argparse.Namespace) -> int:
    model = RecoveryStrategyModel()
    rows = []
    for gib in args.dataset_gib:
        restart = model.process_restart(int(gib * GIB)).downtime_per_fault
        rows.append(
            (f"{gib:g} GiB",)
            + tuple(f"{crossover_faults(restart, slo):.1f}" for slo in SLO_LADDER)
        )
    rows.append(
        ("rewind",)
        + tuple(f"{crossover_faults(3.5e-6, slo):.1e}" for slo in SLO_LADDER)
    )
    print(
        format_table(("dataset", *[slo.name for slo in SLO_LADDER]), rows)
    )
    return 0


def _cmd_fleet(args: argparse.Namespace) -> int:
    if args.scenarios:
        assessments = [
            assess_fleet(scenario, rebound_fraction=args.rebound)
            for scenario in DEFAULT_SCENARIOS
        ]
        print(
            format_table(
                (
                    "scenario",
                    "nodes",
                    "servers (restart)",
                    "servers (sdrad)",
                    "avoided",
                    "energy saved/yr",
                    "carbon saved/yr",
                ),
                summarize(assessments),
            )
        )
        return 0

    # Imported here, not at module top: the live fleet pulls in the full
    # serving stack, which the table-only path does not need.
    from .fleet import FleetRunConfig, HealthConfig, run_fleet

    config = FleetRunConfig(
        shards=args.shards,
        seed=args.seed,
        keyspace=args.keyspace,
        rate=args.rate,
        horizon=args.horizon,
        autoscale=args.autoscale,
        kill_at=args.kill_at,
        outage=args.outage,
        health_config=HealthConfig(probe_interval=0.05),
    )
    report = run_fleet(config)
    print(
        f"fleet run: {args.shards} shard(s), {args.keyspace} keys, "
        f"{args.rate:g} req/s for {args.horizon:g}s (seed {args.seed})"
    )
    print(report.format())
    return 0


def _cmd_inject(args: argparse.Namespace) -> int:
    runtime = SdradRuntime(backend=args.backend)
    domain = runtime.domain_init(flags=DomainFlags.RETURN_TO_PARENT)
    injector = FaultInjector(runtime)
    kinds = (
        [FaultKind(args.kind)] if args.kind != "all" else list(FaultKind)
    )
    for kind in kinds:
        for _ in range(args.count):
            injector.inject(domain.udi, kind)
    summary = injector.summary
    print(
        f"injected {summary.total} fault(s); detected {summary.detected}, "
        f"contained {summary.contained} "
        f"(containment {summary.containment_rate:.0%})"
    )
    rows = [(k, v) for k, v in sorted(summary.by_mechanism.items())]
    if rows:
        print(format_table(("detection mechanism", "count"), rows))
    rows = [(k, v) for k, v in sorted(summary.by_violation.items())]
    if rows:
        print(format_table(("violation", "count"), rows))
    print(
        f"total recovery time: {format_seconds(summary.total_recovery_time)}"
    )
    return 0


def _parse_strata(spec: str) -> dict:
    """Parse ``kinds=a,b;domains=2;phases=entry,warm;backends=mpk,cheri``."""
    from .campaigns.strata import InjectionPhase

    out: dict = {}
    for part in spec.split(";"):
        part = part.strip()
        if not part:
            continue
        key, sep, value = part.partition("=")
        if not sep or not value:
            raise argparse.ArgumentTypeError(
                f"bad strata clause {part!r}; expected key=value"
            )
        if key == "kinds":
            out["kinds"] = tuple(FaultKind(v) for v in value.split(","))
        elif key == "domains":
            if value.isdigit():
                out["domains"] = tuple(
                    f"shard-{i}" for i in range(int(value))
                )
            else:
                out["domains"] = tuple(value.split(","))
        elif key == "phases":
            out["phases"] = tuple(InjectionPhase(v) for v in value.split(","))
        elif key == "backends":
            out["backends"] = tuple(value.split(","))
        else:
            raise argparse.ArgumentTypeError(
                f"unknown strata key {key!r}; "
                "expected kinds/domains/phases/backends"
            )
    return out


def _cmd_campaign(args: argparse.Namespace) -> int:
    # Imported here, not at module top: the campaign loop pulls in the
    # model-fitting and decision stack no other subcommand needs.
    import json

    from .campaigns import CampaignConfig, run_campaign

    overrides = args.strata or {}
    config = CampaignConfig(
        seed=args.seed,
        ci_halfwidth=args.ci_halfwidth,
        confidence=args.confidence,
        slo=args.slo,
        carbon_budget_g_per_year=args.carbon_budget,
        max_rounds=args.max_rounds,
        **overrides,
    )
    report = run_campaign(config, validate=not args.no_validate)
    if args.json:
        print(json.dumps(report.as_dict(), indent=2, sort_keys=True))
        return 0 if report.ok else 1

    d = report.as_dict()
    print(
        f"campaign: {len(d['strata'])} strata, {d['rounds']} round(s), "
        f"seed {config.seed} (target half-width {config.ci_halfwidth:g})"
    )
    rows = [
        (
            r["kind"],
            r["domain"],
            r["phase"],
            r["backend"],
            r["trials"],
            f"{r['containment']['mid']:.2f} "
            f"[{r['containment']['lo']:.2f}, {r['containment']['hi']:.2f}]",
        )
        for r in d["strata"]
    ]
    print(
        format_table(
            ("kind", "domain", "phase", "backend", "n", "containment"), rows
        )
    )
    assignment = d["assignment"]
    print(
        f"\nrecommendation (backend {assignment['backend']}, "
        f"SLO {config.slo:g}, budget {config.carbon_budget_g_per_year:g} "
        f"gCO2e/yr):"
    )
    rows = []
    for score in assignment["scores"]:
        chosen = assignment["policies"][score["domain"]] == score["policy"]
        rows.append(
            (
                score["domain"],
                ("*" if chosen else " ") + score["policy"],
                f"{score['availability']['mid']:.6f}",
                f"{score['carbon_g_per_year']['mid']:.1f}",
                "yes" if score["feasible"] else "no",
                "yes" if score["pareto"] else "no",
                f"{score['score']:.3f}",
            )
        )
    print(
        format_table(
            (
                "domain",
                "policy",
                "availability",
                "gCO2e/yr",
                "feasible",
                "pareto",
                "score",
            ),
            rows,
        )
    )
    if d["validation"] is not None:
        print("\nclosed-loop validation:")
        for dom in d["validation"]["domains"]:
            print(
                f"  {dom['domain']} under {dom['policy']}: availability "
                f"{dom['measured_availability']:.6f} vs predicted "
                f"[{dom['predicted_availability']['lo']:.6f}, "
                f"{dom['predicted_availability']['hi']:.6f}] -> "
                f"{'ok' if dom['availability_ok'] else 'MISS'}; "
                f"carbon {'ok' if dom['gco2e_ok'] else 'MISS'}"
            )
        if d["validation"]["fleet"]:
            print(
                "  fleet applied: "
                + ", ".join(
                    f"{k}={v}"
                    for k, v in sorted(
                        d["validation"]["fleet"]["applied"].items()
                    )
                )
            )
    for warning in d["warnings"]:
        print(f"warning: {warning}")
    print(f"\nresult: {'ok' if d['ok'] else 'NOT ok'}")
    return 0 if d["ok"] else 1


def _cmd_obs(args: argparse.Namespace) -> int:
    # Imported here, not at module top: the obs report pulls in the app
    # stack, which no other subcommand needs.
    from .obs.report import run_and_report

    text, code = run_and_report(
        requests=args.requests,
        clients=args.clients,
        sampling=args.sampling,
        dataset_gib=args.dataset_gib,
        trace_out=args.trace_out,
        metrics_out=args.metrics_out,
    )
    print(text)
    return code


def _cmd_backends(args: argparse.Namespace) -> int:
    from .memory.backends import available_backends, resolve_backend
    from .sim.cost import DEFAULT_COST_MODEL

    rows = []
    for name in available_backends():
        limits = resolve_backend(name).limits(DEFAULT_COST_MODEL)
        rows.append(
            (
                limits.name,
                "unbounded" if limits.max_domains is None else limits.max_domains,
                format_seconds(limits.gate_cost) if limits.gate_cost else "0 s",
                (
                    format_seconds(limits.per_access_tax)
                    if limits.per_access_tax
                    else "0 s"
                ),
                "yes" if limits.supports_key_virtualization else "no",
            )
        )
    print(
        format_table(
            ("backend", "max domains", "gate cost", "access tax", "keyvirt"),
            rows,
        )
    )

    if args.demo is None:
        return 0

    backend = args.demo
    print(f"\ncontainment demo on backend {backend!r}:")
    runtime = SdradRuntime(backend=backend)
    victim = runtime.domain_init(flags=DomainFlags.RETURN_TO_PARENT)

    def plant_secret(h):
        addr = h.malloc(16)
        h.store(addr, b"victim secret")
        return int(addr)  # materialised: a plain address, not an alias

    secret_addr = runtime.execute(victim.udi, plant_secret).value
    attacker = runtime.domain_init(flags=DomainFlags.RETURN_TO_PARENT)
    attack = runtime.execute(
        attacker.udi, lambda h: h.space.store(secret_addr, b"overwrite")
    )
    print(
        f"  cross-domain store -> ok={attack.ok}, detected by "
        f"{attack.fault.mechanism.value}, rewound in "
        f"{format_seconds(attack.recovery_time)}"
    )
    intact = runtime.execute(
        victim.udi, lambda h: h.load(secret_addr, 13)
    ).value
    print(f"  victim data after rewind: {bytes(intact)!r}")
    alive = runtime.execute(attacker.udi, lambda h: "alive")
    print(f"  attacker domain after rewind: {alive.value}")
    return 0 if not attack.ok and bytes(intact) == b"victim secret" else 1


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="SDRaD reproduction: in-process isolation for resilience",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("demo", help="fault/rewind walk-through").set_defaults(
        func=_cmd_demo
    )

    recovery = sub.add_parser("recovery", help="recovery-latency table (E2)")
    recovery.add_argument("--dataset-gib", type=float, default=10.0)
    recovery.set_defaults(func=_cmd_recovery)

    availability = sub.add_parser(
        "availability", help="simulated service-year (E3)"
    )
    availability.add_argument("--dataset-gib", type=float, default=10.0)
    availability.add_argument("--faults", type=int, default=3)
    availability.add_argument("--request-rate", type=float, default=1000.0)
    availability.set_defaults(func=_cmd_availability)

    lca = sub.add_parser("lca", help="energy/carbon comparison (E5)")
    lca.add_argument("--dataset-gib", type=float, default=10.0)
    lca.add_argument("--faults", type=float, default=3.0)
    lca.add_argument("--target", type=float, default=0.99999)
    lca.add_argument("--rebound", type=float, default=0.0)
    lca.set_defaults(func=_cmd_lca)

    crossover = sub.add_parser("crossover", help="SLO crossover map (E8)")
    crossover.add_argument(
        "--dataset-gib", type=float, nargs="+", default=[0.1, 1.0, 10.0, 100.0]
    )
    crossover.set_defaults(func=_cmd_crossover)

    fleet = sub.add_parser(
        "fleet", help="live sharded fleet run (default) or §IV case studies"
    )
    fleet.add_argument(
        "--scenarios",
        action="store_true",
        help="print the §IV case-study table instead of a live run",
    )
    fleet.add_argument("--rebound", type=float, default=0.0)
    fleet.add_argument("--shards", type=int, default=4)
    fleet.add_argument("--seed", type=int, default=0)
    fleet.add_argument("--keyspace", type=int, default=1_000_000)
    fleet.add_argument("--rate", type=float, default=5_000.0)
    fleet.add_argument("--horizon", type=float, default=2.0)
    fleet.add_argument("--autoscale", action="store_true")
    fleet.add_argument(
        "--kill-at",
        dest="kill_at",
        type=float,
        default=None,
        help="kill shard-0 at this virtual time (failover demo)",
    )
    fleet.add_argument("--outage", type=float, default=0.5)
    fleet.set_defaults(func=_cmd_fleet)

    inject = sub.add_parser("inject", help="fault-injection campaign")
    inject.add_argument(
        "--kind",
        choices=["all"] + [k.value for k in FaultKind],
        default="all",
    )
    inject.add_argument("--count", type=int, default=5)
    inject.add_argument(
        "--backend",
        choices=["mpk", "cheri", "sfi"],
        default="mpk",
        help="isolation substrate to inject against",
    )
    inject.set_defaults(func=_cmd_inject)

    campaign = sub.add_parser(
        "campaign",
        help="statistical fault-load campaign + carbon-aware policy decision",
    )
    campaign.add_argument(
        "--strata",
        type=_parse_strata,
        default=None,
        help=(
            "factor spec, e.g. "
            "'kinds=stack-smash,over-read;domains=2;phases=entry,warm;"
            "backends=mpk,cheri' (defaults per factor when omitted)"
        ),
    )
    campaign.add_argument("--ci-halfwidth", type=float, default=0.12)
    campaign.add_argument("--confidence", type=float, default=0.95)
    campaign.add_argument("--slo", type=float, default=0.9999)
    campaign.add_argument(
        "--carbon-budget",
        type=float,
        default=50.0,
        help="recovery carbon budget in gCO2e per year",
    )
    campaign.add_argument("--seed", type=int, default=0)
    campaign.add_argument("--max-rounds", type=int, default=64)
    campaign.add_argument(
        "--no-validate",
        action="store_true",
        help="skip the closed-loop re-measurement",
    )
    campaign.add_argument("--json", action="store_true")
    campaign.set_defaults(func=_cmd_campaign)

    obs = sub.add_parser(
        "obs", help="observed demo workload + sustainability ledger"
    )
    obs.add_argument("--requests", type=int, default=200)
    obs.add_argument("--clients", type=int, default=4)
    obs.add_argument("--sampling", type=float, default=1.0)
    obs.add_argument("--dataset-gib", type=float, default=10.0)
    obs.add_argument("--trace-out", help="write the trace as JSONL here")
    obs.add_argument(
        "--metrics-out", help="write a Prometheus text snapshot here"
    )
    obs.set_defaults(func=_cmd_obs)

    backends = sub.add_parser(
        "backends", help="list isolation backends; --demo runs containment"
    )
    backends.add_argument(
        "--demo",
        choices=["mpk", "cheri", "sfi"],
        default=None,
        help="run an E4-style containment demo on this backend",
    )
    backends.set_defaults(func=_cmd_backends)

    return parser


def main(argv: Optional[Sequence[str]] = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)
    return args.func(args)


if __name__ == "__main__":  # pragma: no cover - exercised via __main__
    sys.exit(main())
