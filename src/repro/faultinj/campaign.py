"""Fault-arrival processes for long-horizon experiments.

E3 simulates a *year* of service operation under a given fault rate (the
paper argues about "three faults per year" versus "9·10⁷ recoveries"). The
arrival processes here generate those fault times:

* :class:`PoissonArrivals` — memoryless faults at a mean rate (the standard
  dependability-model assumption);
* :class:`PeriodicArrivals` — deterministic spacing (worst-case analysis and
  exact reproduction of "three faults per year");
* :class:`BurstArrivals` — attack campaigns: quiet periods punctuated by
  rapid-fire fault bursts (a malicious client hammering an exploit).
"""

from __future__ import annotations

import math
import random
from dataclasses import dataclass
from typing import TYPE_CHECKING, Iterator, Sequence

from ..sim.rng import RngFactory
from .models import FaultKind

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from ..obs.hub import Observability


@dataclass(frozen=True)
class InjectionPlan:
    """One planned fault: when and what kind."""

    timestamp: float
    kind: FaultKind


class ArrivalProcess:
    """Interface: generate fault timestamps within ``[0, horizon)``."""

    def times(self, horizon: float) -> Iterator[float]:
        raise NotImplementedError


class PoissonArrivals(ArrivalProcess):
    """Exponential inter-arrival times at ``rate`` faults/second."""

    def __init__(self, rate: float, rng: random.Random) -> None:
        if rate < 0:
            raise ValueError(f"fault rate must be non-negative, got {rate}")
        self.rate = rate
        self._rng = rng

    def times(self, horizon: float) -> Iterator[float]:
        if self.rate == 0:
            return
        t = 0.0
        while True:
            t += self._rng.expovariate(self.rate)
            if t >= horizon:
                return
            yield t


class PeriodicArrivals(ArrivalProcess):
    """Exactly ``count`` faults evenly spaced over the horizon."""

    def __init__(self, count: int, offset_fraction: float = 0.5) -> None:
        if count < 0:
            raise ValueError(f"fault count must be non-negative, got {count}")
        if not 0.0 <= offset_fraction < 1.0:
            raise ValueError("offset_fraction must be in [0, 1)")
        self.count = count
        self.offset_fraction = offset_fraction

    def times(self, horizon: float) -> Iterator[float]:
        if self.count == 0:
            return
        spacing = horizon / self.count
        for i in range(self.count):
            yield (i + self.offset_fraction) * spacing


class BurstArrivals(ArrivalProcess):
    """Poisson bursts; each burst fires ``burst_size`` faults ``gap`` apart."""

    def __init__(
        self,
        burst_rate: float,
        burst_size: int,
        gap: float,
        rng: random.Random,
    ) -> None:
        if burst_rate < 0:
            raise ValueError(f"burst rate must be non-negative, got {burst_rate}")
        if burst_size <= 0:
            raise ValueError(f"burst size must be positive, got {burst_size}")
        if gap < 0:
            raise ValueError(f"gap must be non-negative, got {gap}")
        self.burst_rate = burst_rate
        self.burst_size = burst_size
        self.gap = gap
        self._rng = rng

    def times(self, horizon: float) -> Iterator[float]:
        if self.burst_rate == 0:
            return
        t = 0.0
        while True:
            t += self._rng.expovariate(self.burst_rate)
            if t >= horizon:
                return
            for i in range(self.burst_size):
                ts = t + i * self.gap
                if ts >= horizon:
                    return
                yield ts


class Campaign:
    """A full injection campaign: arrival process × fault-kind mix."""

    def __init__(
        self,
        arrivals: ArrivalProcess,
        kinds: Sequence[FaultKind],
        weights: Sequence[float] | None = None,
        rng_factory: RngFactory | None = None,
        obs: "Observability | None" = None,
    ) -> None:
        if not kinds:
            raise ValueError("campaign needs at least one fault kind")
        if weights is not None and len(weights) != len(kinds):
            raise ValueError("weights must match kinds one-to-one")
        self.arrivals = arrivals
        self.kinds = list(kinds)
        self.weights = list(weights) if weights is not None else None
        self.obs = obs
        factory = rng_factory or RngFactory(0)
        self._kind_rng = factory.stream("campaign/kinds")

    def plan(self, horizon: float) -> list[InjectionPlan]:
        """Materialise the campaign for a horizon (sorted by time)."""
        if horizon <= 0 or not math.isfinite(horizon):
            raise ValueError(f"horizon must be positive and finite, got {horizon}")
        plans = [
            InjectionPlan(
                timestamp=t,
                kind=self._kind_rng.choices(self.kinds, weights=self.weights)[0],
            )
            for t in self.arrivals.times(horizon)
        ]
        plans.sort(key=lambda p: p.timestamp)
        if self.obs is not None:
            for planned in plans:
                self.obs.registry.counter(
                    "faultinj_planned_total", kind=planned.kind.value
                ).increment()
        return plans


#: Fault-kind mix observed in memory-safety CVE studies: overflows dominate,
#: UAF second, the rest are a tail. Used as the default campaign mix.
DEFAULT_FAULT_MIX: list[tuple[FaultKind, float]] = [
    (FaultKind.HEAP_OVERFLOW, 0.35),
    (FaultKind.STACK_SMASH, 0.25),
    (FaultKind.USE_AFTER_FREE, 0.20),
    (FaultKind.DOUBLE_FREE, 0.08),
    (FaultKind.NULL_DEREF, 0.07),
    (FaultKind.WILD_WRITE, 0.05),
]
