"""Fault injection: memory-corruption models, arrival campaigns, injector."""

from .campaign import (
    DEFAULT_FAULT_MIX,
    ArrivalProcess,
    BurstArrivals,
    Campaign,
    InjectionPlan,
    PeriodicArrivals,
    PoissonArrivals,
)
from .injector import FaultInjector, InjectionResult, InjectionSummary
from .models import (
    FAULT_LIBRARY,
    NEEDS_ADDRESS,
    FaultKind,
    cross_domain_write,
    double_free,
    heap_overflow,
    null_deref,
    over_read,
    stack_smash,
    use_after_free,
    wild_write,
)

__all__ = [
    "DEFAULT_FAULT_MIX",
    "ArrivalProcess",
    "BurstArrivals",
    "Campaign",
    "InjectionPlan",
    "PeriodicArrivals",
    "PoissonArrivals",
    "FaultInjector",
    "InjectionResult",
    "InjectionSummary",
    "FAULT_LIBRARY",
    "NEEDS_ADDRESS",
    "FaultKind",
    "cross_domain_write",
    "double_free",
    "heap_overflow",
    "null_deref",
    "over_read",
    "stack_smash",
    "use_after_free",
    "wild_write",
]
