"""Memory-corruption fault models.

Each model is a function that, given a :class:`~repro.sdrad.DomainHandle`,
performs the memory operations a real bug of that class performs — through
the *checked* application access path, so detection happens exactly where
the corresponding defence would catch it on hardware:

===================  =======================================================
fault model          expected detection
===================  =======================================================
stack smash          stack canary at function epilogue
heap overflow        allocator guard word at ``free``/heap sweep
cross-domain write   protection-key violation at the faulting store
wild write           pkey violation / page fault (address dependent)
null dereference     page fault (page 0 is never mapped)
use-after-free       heap-integrity sweep at domain exit
double free          allocator invalid-free check
over-read            pkey violation when it crosses the domain boundary;
                     silent data leak while it stays inside (Heartbleed)
===================  =======================================================

Models return normally only if their corruption went *undetected at the
point of injection* (e.g. a contained over-read); most raise through the
checked access path and are classified at the domain boundary.
"""

from __future__ import annotations

import enum
from typing import Callable

from ..sdrad.runtime import DomainHandle


class FaultKind(enum.Enum):
    """Catalogue of injectable memory-corruption bug classes."""

    STACK_SMASH = "stack-smash"
    HEAP_OVERFLOW = "heap-overflow"
    CROSS_DOMAIN_WRITE = "cross-domain-write"
    WILD_WRITE = "wild-write"
    NULL_DEREF = "null-deref"
    USE_AFTER_FREE = "use-after-free"
    DOUBLE_FREE = "double-free"
    OVER_READ = "over-read"
    CROSS_DOMAIN_READ = "cross-domain-read"


def stack_smash(handle: DomainHandle, overflow: int = 16) -> None:
    """Contiguous overflow of a stack buffer (classic ``gets`` bug).

    ``overflow`` extra bytes are written past a 16-byte buffer: 8 reach the
    canary, 16 also reach the saved return address. The epilogue's canary
    check fires on return. (Much larger overflows run off the top of the
    stack region entirely and fault as page faults instead — also a valid
    outcome, but not this model's.)
    """
    frame = handle.push_frame("vulnerable_parser")
    buf = frame.alloca(16)
    frame.write_buffer(buf, b"A" * (16 + overflow))
    handle.pop_frame(frame)


def heap_overflow(handle: DomainHandle, alloc: int = 32, excess: int = 16) -> None:
    """Write past the end of a heap allocation; guard word catches it."""
    addr = handle.malloc(alloc)
    capacity = handle.capacity(addr)
    handle.store(addr, b"B" * (capacity + excess))
    handle.free(addr)


def cross_domain_write(handle: DomainHandle, victim_addr: int) -> None:
    """Attacker-steered write into another domain's memory.

    This is the fault class SDRaD's isolation exists for: on a system
    without MPK the write silently corrupts the victim; here it must trip
    the protection key of the victim's page.
    """
    handle.store(victim_addr, b"PWNED!!!")


def cross_domain_read(handle: DomainHandle, victim_addr: int) -> bytes:
    """Confidentiality breach: read another domain's memory directly.

    The dual of :func:`cross_domain_write` — an info-leak primitive aimed
    straight at a victim domain rather than walking off an own-domain
    buffer. Every substrate must refuse it, each with its own taxonomy:
    MPK raises ``ProtectionKeyViolation``, simulated CHERI a
    ``CapabilityViolation`` (no capability for the victim's tag), SFI an
    ``SfiViolation`` (address outside the sandbox mask).
    """
    return handle.load(victim_addr, 16)


def wild_write(handle: DomainHandle, address: int) -> None:
    """Write through a corrupted pointer to an arbitrary address."""
    handle.store(address, b"\xff" * 8)


def null_deref(handle: DomainHandle) -> None:
    """Read through a NULL pointer (page 0 is never mapped)."""
    handle.load(8, 8)


def use_after_free(handle: DomainHandle, size: int = 48) -> None:
    """Write through a dangling pointer over freed-and-reused heap memory.

    Classic UAF exploitation pattern: object ``a`` is freed, the allocator's
    space is later owned by a neighbour ``b``, and a write through the stale
    pointer to ``a`` corrupts ``b``'s metadata. The store itself succeeds
    (pages are still mapped with the domain's key — UAF is the stealthiest
    class here, exactly as on hardware); detection is *deferred* until the
    next allocator integrity check, modelled by touching ``b`` afterwards.
    """
    dangling = handle.malloc(size)
    capacity = handle.capacity(dangling)
    victim = handle.malloc(size)
    handle.free(dangling)
    # Dangling write runs past a's payload and guard into b's header.
    handle.store(dangling, b"C" * (capacity + 8 + 16))
    handle.free(victim)  # allocator notices b's smashed header here


def double_free(handle: DomainHandle, size: int = 32) -> None:
    """Free the same pointer twice."""
    addr = handle.malloc(size)
    handle.free(addr)
    handle.free(addr)


def over_read(handle: DomainHandle, alloc: int = 64, read: int = 4096 * 4) -> bytes:
    """Heartbleed-style over-read: return more bytes than were allocated.

    While the read stays inside the domain's own pages it *succeeds* and
    leaks stale domain data (which rewind-and-discard limits to the current
    request's domain). Reading far enough to cross into another key's pages
    trips MPK.
    """
    addr = handle.malloc(alloc)
    handle.store(addr, b"D" * alloc)
    return handle.load(addr, read)


#: Registry mapping kinds to `(callable, kwargs)` factories used by
#: campaigns. Callables take the handle plus the listed keyword arguments.
FAULT_LIBRARY: dict[FaultKind, Callable[..., object]] = {
    FaultKind.STACK_SMASH: stack_smash,
    FaultKind.HEAP_OVERFLOW: heap_overflow,
    FaultKind.CROSS_DOMAIN_WRITE: cross_domain_write,
    FaultKind.WILD_WRITE: wild_write,
    FaultKind.NULL_DEREF: null_deref,
    FaultKind.USE_AFTER_FREE: use_after_free,
    FaultKind.DOUBLE_FREE: double_free,
    FaultKind.OVER_READ: over_read,
    FaultKind.CROSS_DOMAIN_READ: cross_domain_read,
}

#: Kinds that need a victim/target address argument.
NEEDS_ADDRESS = {
    FaultKind.CROSS_DOMAIN_WRITE,
    FaultKind.WILD_WRITE,
    FaultKind.CROSS_DOMAIN_READ,
}

#: Backend-specific fault taxonomy: the exception class each substrate
#: raises for an isolation breach. Campaign strata assert the observed
#: :attr:`FaultReport.violation` against this mask — all three classify to
#: the same PKEY_VIOLATION mechanism, so the class name is the only place
#: the substrate's own detection story survives to.
BACKEND_VIOLATION_MASKS: dict[str, str] = {
    "mpk": "ProtectionKeyViolation",
    "cheri": "CapabilityViolation",
    "sfi": "SfiViolation",
}
