"""The injector: runs fault models inside domains and records outcomes.

Bridges the fault library (:mod:`repro.faultinj.models`) and the SDRaD
runtime: each injection executes the chosen model inside a target domain and
reports whether the fault was detected, by which mechanism, whether the
process survived, and how long recovery took. Integration tests and E3/E4
aggregate :class:`InjectionResult` records.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from ..sdrad.detect import DetectionMechanism
from ..sdrad.policy import ProcessCrashed, RecoveryPolicy
from ..sdrad.runtime import DomainHandle, SdradRuntime
from .models import FAULT_LIBRARY, NEEDS_ADDRESS, FaultKind


@dataclass
class InjectionResult:
    """Outcome of one injected fault."""

    kind: FaultKind
    detected: bool
    mechanism: Optional[DetectionMechanism]
    survived: bool
    recovery_time: float
    timestamp: float

    @property
    def contained(self) -> bool:
        """Detected and the process survived — SDRaD's success criterion."""
        return self.detected and self.survived


@dataclass
class InjectionSummary:
    """Aggregates over a whole campaign."""

    total: int = 0
    detected: int = 0
    survived: int = 0
    contained: int = 0
    total_recovery_time: float = 0.0
    by_kind: dict[str, int] = field(default_factory=dict)
    by_mechanism: dict[str, int] = field(default_factory=dict)

    def add(self, result: InjectionResult) -> None:
        self.total += 1
        self.detected += int(result.detected)
        self.survived += int(result.survived)
        self.contained += int(result.contained)
        self.total_recovery_time += result.recovery_time
        self.by_kind[result.kind.value] = self.by_kind.get(result.kind.value, 0) + 1
        if result.mechanism is not None:
            key = result.mechanism.value
            self.by_mechanism[key] = self.by_mechanism.get(key, 0) + 1

    @property
    def containment_rate(self) -> float:
        return self.contained / self.total if self.total else 0.0


class FaultInjector:
    """Executes fault models inside a runtime's domains."""

    def __init__(self, runtime: SdradRuntime) -> None:
        self.runtime = runtime
        self.summary = InjectionSummary()

    def inject(
        self,
        udi: int,
        kind: FaultKind,
        victim_addr: Optional[int] = None,
        policy: Optional[RecoveryPolicy] = None,
        **model_kwargs: object,
    ) -> InjectionResult:
        """Run one fault model inside domain ``udi`` and classify the outcome.

        ``victim_addr`` is required for cross-domain/wild-write kinds; by
        default it targets the root domain's heap (the most damaging victim).
        """
        model = FAULT_LIBRARY[kind]
        if kind in NEEDS_ADDRESS:
            if victim_addr is None:
                victim_addr = self.runtime.root.heap_base + 64
            args: tuple = (victim_addr,)
        else:
            args = ()

        def run(handle: DomainHandle) -> object:
            return model(handle, *args, **model_kwargs)

        timestamp = self.runtime.clock.now
        try:
            outcome = self.runtime.execute(udi, run, policy=policy)
        except ProcessCrashed as crash:
            result = InjectionResult(
                kind=kind,
                detected=True,
                mechanism=crash.report.mechanism,
                survived=False,
                recovery_time=0.0,
                timestamp=timestamp,
            )
            self.summary.add(result)
            raise
        if outcome.ok:
            # The fault went undetected (e.g. a contained over-read).
            result = InjectionResult(
                kind=kind,
                detected=False,
                mechanism=None,
                survived=True,
                recovery_time=0.0,
                timestamp=timestamp,
            )
        else:
            result = InjectionResult(
                kind=kind,
                detected=True,
                mechanism=outcome.fault.mechanism if outcome.fault else None,
                survived=True,
                recovery_time=outcome.recovery_time,
                timestamp=timestamp,
            )
        self.summary.add(result)
        return result
