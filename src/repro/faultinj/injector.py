"""The injector: runs fault models inside domains and records outcomes.

Bridges the fault library (:mod:`repro.faultinj.models`) and the SDRaD
runtime: each injection executes the chosen model inside a target domain and
reports whether the fault was detected, by which mechanism, whether the
process survived, and how long recovery took. Integration tests and E3/E4
aggregate :class:`InjectionResult` records.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Optional

from ..sdrad.detect import DetectionMechanism
from ..sdrad.policy import ProcessCrashed, RecoveryPolicy
from ..sdrad.runtime import DomainHandle, SdradRuntime
from .models import FAULT_LIBRARY, NEEDS_ADDRESS, FaultKind


@dataclass
class InjectionResult:
    """Outcome of one injected fault."""

    kind: FaultKind
    detected: bool
    mechanism: Optional[DetectionMechanism]
    survived: bool
    recovery_time: float
    timestamp: float
    #: Backend-specific violation class name (``CapabilityViolation`` under
    #: CHERI, ``SfiViolation`` under SFI, ``ProtectionKeyViolation`` under
    #: MPK, canary/heap classes for in-domain detections); None when the
    #: fault went undetected.
    violation: Optional[str] = None
    #: Virtual wall time the faulted call occupied (entry to exit).
    elapsed: float = 0.0

    @property
    def contained(self) -> bool:
        """Detected and the process survived — SDRaD's success criterion."""
        return self.detected and self.survived


@dataclass
class InjectionSummary:
    """Aggregates over a whole campaign."""

    total: int = 0
    detected: int = 0
    survived: int = 0
    contained: int = 0
    total_recovery_time: float = 0.0
    by_kind: dict[str, int] = field(default_factory=dict)
    by_mechanism: dict[str, int] = field(default_factory=dict)
    by_violation: dict[str, int] = field(default_factory=dict)

    def add(self, result: InjectionResult) -> None:
        self.total += 1
        self.detected += int(result.detected)
        self.survived += int(result.survived)
        self.contained += int(result.contained)
        self.total_recovery_time += result.recovery_time
        self.by_kind[result.kind.value] = self.by_kind.get(result.kind.value, 0) + 1
        if result.mechanism is not None:
            key = result.mechanism.value
            self.by_mechanism[key] = self.by_mechanism.get(key, 0) + 1
        if result.violation is not None:
            self.by_violation[result.violation] = (
                self.by_violation.get(result.violation, 0) + 1
            )

    @property
    def containment_rate(self) -> float:
        return self.contained / self.total if self.total else 0.0


class FaultInjector:
    """Executes fault models inside a runtime's domains."""

    def __init__(self, runtime: SdradRuntime) -> None:
        self.runtime = runtime
        self.summary = InjectionSummary()

    def inject(
        self,
        udi: int,
        kind: FaultKind,
        victim_addr: Optional[int] = None,
        policy: Optional[RecoveryPolicy] = None,
        prelude: Optional[Callable[[DomainHandle], None]] = None,
        **model_kwargs: object,
    ) -> InjectionResult:
        """Run one fault model inside domain ``udi`` and classify the outcome.

        ``victim_addr`` is required for cross-domain/wild-write kinds; by
        default it targets the root domain's heap (the most damaging victim).
        Historically that default assumed the MPK substrate; it now works on
        every backend because the root's region carries whatever tag the
        active substrate hands out, and the raised violation class records
        which substrate refused the access (:attr:`InjectionResult.violation`).

        ``prelude`` runs inside the domain *before* the fault model — the
        campaign sampler's injection-phase hook (warm-up allocations, drain
        churn) so the same bug class can strike domains in different heap
        states within one entry/exit pair.
        """
        model = FAULT_LIBRARY[kind]
        if kind in NEEDS_ADDRESS:
            if victim_addr is None:
                victim_addr = self.runtime.root.heap_base + 64
            args: tuple = (victim_addr,)
        else:
            args = ()

        def run(handle: DomainHandle) -> object:
            if prelude is not None:
                prelude(handle)
            return model(handle, *args, **model_kwargs)

        timestamp = self.runtime.clock.now
        try:
            outcome = self.runtime.execute(udi, run, policy=policy)
        except ProcessCrashed as crash:
            result = InjectionResult(
                kind=kind,
                detected=True,
                mechanism=crash.report.mechanism,
                survived=False,
                recovery_time=0.0,
                timestamp=timestamp,
                violation=crash.report.violation,
            )
            self.summary.add(result)
            raise
        if outcome.ok:
            # The fault went undetected (e.g. a contained over-read).
            result = InjectionResult(
                kind=kind,
                detected=False,
                mechanism=None,
                survived=True,
                recovery_time=0.0,
                timestamp=timestamp,
                elapsed=outcome.elapsed,
            )
        else:
            result = InjectionResult(
                kind=kind,
                detected=True,
                mechanism=outcome.fault.mechanism if outcome.fault else None,
                survived=True,
                recovery_time=outcome.recovery_time,
                timestamp=timestamp,
                violation=outcome.fault.violation if outcome.fault else None,
                elapsed=outcome.elapsed,
            )
        self.summary.add(result)
        return result
