"""SDRaD-FFI: sandboxing "unsafe foreign functions" behind isolated domains.

Realises the paper's §III proposal — annotation-driven sandboxing with
argument/return serialization and alternate actions on domain violation.
"""

from .fallback import (
    NO_FALLBACK,
    AlternateAction,
    FallbackSpec,
    fallback_call,
    fallback_value,
)
from .marshal import (
    MarshalledCall,
    MarshalStats,
    marshal_args,
    marshal_result,
    roundtrip_check,
    unmarshal_result,
)
from .sandbox import Sandbox, SandboxCallStats, SandboxedFunction
from .serialization import (
    BincodeSerializer,
    JsonSerializer,
    MsgpackSerializer,
    PickleSerializer,
    Serializer,
    available_serializers,
    check_serializable,
    get_serializer,
)

__all__ = [
    "NO_FALLBACK",
    "AlternateAction",
    "FallbackSpec",
    "fallback_call",
    "fallback_value",
    "MarshalledCall",
    "MarshalStats",
    "marshal_args",
    "marshal_result",
    "roundtrip_check",
    "unmarshal_result",
    "Sandbox",
    "SandboxCallStats",
    "SandboxedFunction",
    "BincodeSerializer",
    "JsonSerializer",
    "MsgpackSerializer",
    "PickleSerializer",
    "Serializer",
    "available_serializers",
    "check_serializable",
    "get_serializer",
]
