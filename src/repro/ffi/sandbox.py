"""SDRaD-FFI: the ``@sandboxed`` annotation for unsafe foreign functions.

The paper's §III proposes a Rust crate where a developer annotates FFI
functions; macro expansion then hides (a) SDRaD domain calls, (b) argument
and return-value serialization, and (c) alternate actions on domain
violation. This module is that crate's Python realisation:

    sandbox = Sandbox(runtime)

    @sandbox.sandboxed(fallback=fallback_value(0), serializer="bincode")
    def parse_header(data: bytes) -> int:        # the "unsafe C function"
        ...

    parse_header(b"...")      # runs inside an isolated domain

A faulting call never takes the process down: SDRaD rewinds the domain and
the wrapper either applies the alternate action or raises
:class:`~repro.errors.SandboxViolation` for the caller to handle — the Rust
``Result::Err`` analogue.

Foreign functions that model *memory-touching* native code declare
``wants_handle=True`` and receive the :class:`~repro.sdrad.DomainHandle`
as their first argument; pure computations omit it.
"""

from __future__ import annotations

import functools
from dataclasses import dataclass, field
from typing import Any, Callable, Optional

from ..errors import SandboxViolation, SerializationError
from ..sdrad.constants import DomainFlags
from ..sdrad.policy import RecoveryPolicy, RetryPolicy, RewindPolicy
from ..sdrad.runtime import SdradRuntime
from .fallback import NO_FALLBACK, FallbackSpec
from .marshal import MarshalStats, marshal_args, marshal_result, unmarshal_result
from .serialization import Serializer, get_serializer


@dataclass
class SandboxCallStats:
    """Aggregate statistics for one sandboxed function."""

    calls: int = 0
    violations: int = 0
    fallbacks_applied: int = 0
    retries: int = 0
    bytes_in: int = 0
    bytes_out: int = 0
    mechanisms: dict[str, int] = field(default_factory=dict)


class SandboxedFunction:
    """The wrapper the decorator produces; callable like the original."""

    def __init__(
        self,
        sandbox: "Sandbox",
        fn: Callable[..., Any],
        serializer: Serializer,
        fallback: FallbackSpec,
        wants_handle: bool,
        retries: int,
        fresh_domain: bool,
        heap_size: Optional[int],
        max_result_bytes: Optional[int] = None,
    ) -> None:
        self.sandbox = sandbox
        self.fn = fn
        self.serializer = serializer
        self.fallback = fallback
        self.wants_handle = wants_handle
        self.retries = retries
        self.fresh_domain = fresh_domain
        self.heap_size = heap_size
        self.max_result_bytes = max_result_bytes
        self.stats = SandboxCallStats()
        self.last_marshal: Optional[MarshalStats] = None
        self._udi: Optional[int] = None
        functools.update_wrapper(self, fn)

    # ------------------------------------------------------------------

    def __call__(self, *args: Any, **kwargs: Any) -> Any:
        runtime = self.sandbox.runtime
        udi = self._acquire_domain()
        self.stats.calls += 1
        marshal_stats = MarshalStats(serializer=self.serializer.name)
        policy: RecoveryPolicy = (
            RetryPolicy(self.retries) if self.retries else RewindPolicy()
        )
        try:
            runtime.charge(runtime.cost.ffi_call_fixed)
            call = marshal_args(
                runtime, udi, self.serializer, args, kwargs, marshal_stats
            )

            def run_inside(handle: Any) -> bytes:
                if self.wants_handle:
                    value = self.fn(handle, *call.args, **call.kwargs)
                else:
                    value = self.fn(*call.args, **call.kwargs)
                return marshal_result(
                    runtime, udi, self.serializer, value, marshal_stats
                )

            result = runtime.execute(udi, run_inside, policy=policy)
            self.stats.retries += result.retries
            if result.ok:
                if (
                    self.max_result_bytes is not None
                    and len(result.value) > self.max_result_bytes
                ):
                    # A compromised sandbox can return arbitrarily large
                    # output; refusing oversized results bounds the trusted
                    # side's decode work (resource-exhaustion hardening).
                    return self._violated(
                        None,
                        args,
                        kwargs,
                        SerializationError(
                            f"sandbox result of {len(result.value)} bytes "
                            f"exceeds limit {self.max_result_bytes}"
                        ),
                    )
                try:
                    value = unmarshal_result(
                        runtime, self.serializer, result.value
                    )
                except SerializationError as exc:
                    # Compromised-sandbox output: treat as a violation.
                    return self._violated(None, args, kwargs, exc)
                self.last_marshal = marshal_stats
                self.stats.bytes_in += marshal_stats.args_bytes
                self.stats.bytes_out += marshal_stats.result_bytes
                return value
            return self._violated(result.fault, args, kwargs, None)
        finally:
            if self.fresh_domain:
                self._release_domain()

    # ------------------------------------------------------------------

    def _violated(
        self,
        report,
        args: tuple,
        kwargs: dict,
        decode_error: Optional[Exception],
    ) -> Any:
        self.stats.violations += 1
        if report is not None:
            mech = report.mechanism.value
            self.stats.mechanisms[mech] = self.stats.mechanisms.get(mech, 0) + 1
        if self.fallback.configured:
            self.stats.fallbacks_applied += 1
            return self.fallback.apply(report, args, kwargs)
        cause: Exception = decode_error or RuntimeError(str(report))
        raise SandboxViolation(self.fn.__name__, cause)

    def _acquire_domain(self) -> int:
        if self._udi is None:
            kwargs: dict[str, Any] = {"flags": DomainFlags.RETURN_TO_PARENT}
            if self.heap_size is not None:
                kwargs["heap_size"] = self.heap_size
            self._udi = self.sandbox.runtime.domain_init(**kwargs).udi
        return self._udi

    def _release_domain(self) -> None:
        if self._udi is not None:
            self.sandbox.runtime.domain_destroy(self._udi)
            self._udi = None

    def close(self) -> None:
        """Destroy the persistent domain (frees its protection key)."""
        self._release_domain()


class Sandbox:
    """Factory of sandboxed functions sharing one SDRaD runtime."""

    def __init__(
        self,
        runtime: Optional[SdradRuntime] = None,
        serializer: str = "bincode",
    ) -> None:
        self.runtime = runtime if runtime is not None else SdradRuntime()
        self.default_serializer = get_serializer(serializer)
        self._functions: list[SandboxedFunction] = []

    def sandboxed(
        self,
        fn: Optional[Callable[..., Any]] = None,
        *,
        fallback: FallbackSpec = NO_FALLBACK,
        serializer: Optional[str] = None,
        wants_handle: bool = False,
        retries: int = 0,
        fresh_domain: bool = False,
        heap_size: Optional[int] = None,
        max_result_bytes: Optional[int] = None,
    ) -> Any:
        """Decorator marking ``fn`` as an unsafe foreign function.

        Parameters mirror the planned Rust attribute's knobs:

        * ``fallback`` — alternate action on domain violation;
        * ``serializer`` — which "crate" marshals arguments (E6 variable);
        * ``wants_handle`` — pass the domain handle (memory-touching code);
        * ``retries`` — transparently re-execute after a rewind, for
          transient faults;
        * ``fresh_domain`` — new domain per call instead of a persistent
          one (stronger isolation, higher cost; ablated in E6);
        * ``heap_size`` — sandbox heap arena size;
        * ``max_result_bytes`` — refuse oversized sandbox output before
          decoding it (resource-exhaustion hardening against a compromised
          sandbox).
        """

        def wrap(target: Callable[..., Any]) -> SandboxedFunction:
            chosen = (
                self.default_serializer
                if serializer is None
                else get_serializer(serializer)
            )
            wrapped = SandboxedFunction(
                sandbox=self,
                fn=target,
                serializer=chosen,
                fallback=fallback,
                wants_handle=wants_handle,
                retries=retries,
                fresh_domain=fresh_domain,
                heap_size=heap_size,
                max_result_bytes=max_result_bytes,
            )
            self._functions.append(wrapped)
            return wrapped

        if fn is not None:
            return wrap(fn)
        return wrap

    def close(self) -> None:
        """Tear down every persistent sandbox domain."""
        for wrapped in self._functions:
            wrapped.close()

    def __enter__(self) -> "Sandbox":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()
