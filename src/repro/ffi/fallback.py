"""Alternate actions: what a sandboxed call does when its domain faults.

The paper (§III): the Rust macro layer hides "alternate actions in case of
domain violations". An alternate action is the application's *semantic*
recovery — return a default, recompute with a safe pure-Rust path, degrade
the feature — executed on the trusted side after SDRaD has already contained
and rewound the fault.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Callable, Optional

from ..sdrad.detect import FaultReport

#: Signature of an alternate action: receives the fault report and the
#: original call's arguments, returns the replacement result.
AlternateAction = Callable[..., Any]


@dataclass(frozen=True)
class FallbackSpec:
    """Configuration of a sandboxed function's alternate action."""

    #: Called as ``action(report, *args, **kwargs)`` when set.
    action: Optional[AlternateAction] = None
    #: Constant replacement result (used when ``action`` is None).
    value: Any = None
    #: Whether a constant value was explicitly provided (so ``None`` is a
    #: legal fallback value, distinct from "no fallback configured").
    has_value: bool = False

    @property
    def configured(self) -> bool:
        return self.action is not None or self.has_value

    def apply(self, report: FaultReport, args: tuple, kwargs: dict) -> Any:
        if self.action is not None:
            return self.action(report, *args, **kwargs)
        if self.has_value:
            return self.value
        raise LookupError("no fallback configured")


def fallback_value(value: Any) -> FallbackSpec:
    """Alternate action returning a constant."""
    return FallbackSpec(value=value, has_value=True)


def fallback_call(action: AlternateAction) -> FallbackSpec:
    """Alternate action delegating to a trusted-side callable."""
    return FallbackSpec(action=action)


NO_FALLBACK = FallbackSpec()
