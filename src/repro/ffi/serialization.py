"""Serializers for cross-domain argument passing (SDRaD-FFI §III).

The paper: "SDRaD-FFI can support arbitrary argument passing between domains
using different Rust serialization crates. We plan to evaluate different
serialization crates ..." — experiment E6 performs that evaluation. Each
serializer here is a stand-in for one crate family:

* :class:`BincodeSerializer` — compact, schema-less binary (bincode);
* :class:`MsgpackSerializer` — self-describing binary (rmp-serde); our own
  minimal msgpack-style encoder, no external dependency;
* :class:`JsonSerializer`   — human-readable text (serde_json);
* :class:`PickleSerializer` — the host language's native serializer, the
  "maximally convenient, maximally trusting" end of the spectrum.

Two costs matter and are tracked separately: *encoded size* (drives the
cross-domain copy) and *encode/decode time* (charged from the cost model's
per-serializer bandwidth calibration, E6's independent variable).

Supported value domain: ``None``, ``bool``, ``int``, ``float``, ``str``,
``bytes``, and lists/tuples/dicts thereof — the same closed data model a
``serde``-serializable FFI surface has. Arbitrary objects are rejected with
:class:`~repro.errors.SerializationError`, mirroring how a Rust FFI boundary
cannot pass arbitrary ``dyn Any``.
"""

from __future__ import annotations

import json
import pickle
import struct
from typing import Any

from ..errors import SerializationError

_SCALARS = (type(None), bool, int, float, str, bytes)


def check_serializable(value: Any, _depth: int = 0) -> None:
    """Reject values outside the FFI data model (recursively)."""
    if _depth > 64:
        raise SerializationError("value nesting exceeds FFI depth limit (64)")
    if isinstance(value, _SCALARS):
        return
    if isinstance(value, (list, tuple)):
        for item in value:
            check_serializable(item, _depth + 1)
        return
    if isinstance(value, dict):
        for key, item in value.items():
            if not isinstance(key, str):
                raise SerializationError(
                    f"FFI dict keys must be str, got {type(key).__name__}"
                )
            check_serializable(item, _depth + 1)
        return
    raise SerializationError(
        f"type {type(value).__name__} cannot cross the FFI boundary"
    )


class Serializer:
    """Interface all serializers implement."""

    name = "abstract"

    def encode(self, value: Any) -> bytes:
        raise NotImplementedError

    def decode(self, data: bytes) -> Any:
        raise NotImplementedError

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"{type(self).__name__}()"


class BincodeSerializer(Serializer):
    """Compact tag-prefixed binary encoding (bincode stand-in).

    Format: one tag byte, then a fixed or length-prefixed payload.
    Integers use zig-zag-free signed 64-bit (with a big-int escape),
    lengths are u32 little-endian.
    """

    name = "bincode"

    _T_NONE, _T_FALSE, _T_TRUE = 0x00, 0x01, 0x02
    _T_I64, _T_BIGINT, _T_F64 = 0x03, 0x04, 0x05
    _T_STR, _T_BYTES, _T_LIST, _T_DICT = 0x06, 0x07, 0x08, 0x09

    def encode(self, value: Any) -> bytes:
        check_serializable(value)
        out = bytearray()
        self._enc(value, out)
        return bytes(out)

    def _enc(self, value: Any, out: bytearray) -> None:
        if value is None:
            out.append(self._T_NONE)
        elif value is True:
            out.append(self._T_TRUE)
        elif value is False:
            out.append(self._T_FALSE)
        elif isinstance(value, int):
            if -(2**63) <= value < 2**63:
                out.append(self._T_I64)
                out += struct.pack("<q", value)
            else:
                raw = value.to_bytes(
                    (value.bit_length() + 8) // 8, "little", signed=True
                )
                out.append(self._T_BIGINT)
                out += struct.pack("<I", len(raw))
                out += raw
        elif isinstance(value, float):
            out.append(self._T_F64)
            out += struct.pack("<d", value)
        elif isinstance(value, str):
            raw = value.encode("utf-8")
            out.append(self._T_STR)
            out += struct.pack("<I", len(raw))
            out += raw
        elif isinstance(value, bytes):
            out.append(self._T_BYTES)
            out += struct.pack("<I", len(value))
            out += value
        elif isinstance(value, (list, tuple)):
            out.append(self._T_LIST)
            out += struct.pack("<I", len(value))
            for item in value:
                self._enc(item, out)
        elif isinstance(value, dict):
            out.append(self._T_DICT)
            out += struct.pack("<I", len(value))
            for key, item in value.items():
                raw = key.encode("utf-8")
                out += struct.pack("<I", len(raw))
                out += raw
                self._enc(item, out)
        else:  # pragma: no cover - check_serializable guards this
            raise SerializationError(f"unsupported type {type(value).__name__}")

    def decode(self, data: bytes) -> Any:
        value, offset = self._dec(data, 0)
        if offset != len(data):
            raise SerializationError(
                f"trailing garbage after bincode value ({len(data) - offset} bytes)"
            )
        return value

    def _dec(self, data: bytes, offset: int) -> tuple[Any, int]:
        try:
            tag = data[offset]
        except IndexError:
            raise SerializationError("truncated bincode data") from None
        offset += 1
        try:
            if tag == self._T_NONE:
                return None, offset
            if tag == self._T_TRUE:
                return True, offset
            if tag == self._T_FALSE:
                return False, offset
            if tag == self._T_I64:
                return struct.unpack_from("<q", data, offset)[0], offset + 8
            if tag == self._T_BIGINT:
                (length,) = struct.unpack_from("<I", data, offset)
                offset += 4
                raw = data[offset : offset + length]
                if len(raw) != length:
                    raise SerializationError("truncated bigint")
                return int.from_bytes(raw, "little", signed=True), offset + length
            if tag == self._T_F64:
                return struct.unpack_from("<d", data, offset)[0], offset + 8
            if tag in (self._T_STR, self._T_BYTES):
                (length,) = struct.unpack_from("<I", data, offset)
                offset += 4
                raw = data[offset : offset + length]
                if len(raw) != length:
                    raise SerializationError("truncated string/bytes")
                offset += length
                return (raw.decode("utf-8") if tag == self._T_STR else bytes(raw)), offset
            if tag == self._T_LIST:
                (count,) = struct.unpack_from("<I", data, offset)
                offset += 4
                items = []
                for _ in range(count):
                    item, offset = self._dec(data, offset)
                    items.append(item)
                return items, offset
            if tag == self._T_DICT:
                (count,) = struct.unpack_from("<I", data, offset)
                offset += 4
                result: dict[str, Any] = {}
                for _ in range(count):
                    (klen,) = struct.unpack_from("<I", data, offset)
                    offset += 4
                    key = data[offset : offset + klen].decode("utf-8")
                    offset += klen
                    item, offset = self._dec(data, offset)
                    result[key] = item
                return result, offset
        except struct.error as exc:
            raise SerializationError(f"truncated bincode data: {exc}") from exc
        except UnicodeDecodeError as exc:
            raise SerializationError(f"invalid UTF-8 in bincode data: {exc}") from exc
        raise SerializationError(f"unknown bincode tag {tag:#x}")


class MsgpackSerializer(Serializer):
    """Minimal msgpack-compatible subset encoder (rmp-serde stand-in)."""

    name = "msgpack"

    def encode(self, value: Any) -> bytes:
        check_serializable(value)
        out = bytearray()
        self._enc(value, out)
        return bytes(out)

    def _enc(self, value: Any, out: bytearray) -> None:
        if value is None:
            out.append(0xC0)
        elif value is False:
            out.append(0xC2)
        elif value is True:
            out.append(0xC3)
        elif isinstance(value, int):
            if 0 <= value < 128:
                out.append(value)
            elif -32 <= value < 0:
                out.append(value & 0xFF)
            elif -(2**63) <= value < 2**63:
                out.append(0xD3)
                out += struct.pack(">q", value)
            else:
                raise SerializationError("msgpack cannot encode >64-bit integers")
        elif isinstance(value, float):
            out.append(0xCB)
            out += struct.pack(">d", value)
        elif isinstance(value, str):
            raw = value.encode("utf-8")
            out.append(0xDB)
            out += struct.pack(">I", len(raw))
            out += raw
        elif isinstance(value, bytes):
            out.append(0xC6)
            out += struct.pack(">I", len(value))
            out += value
        elif isinstance(value, (list, tuple)):
            out.append(0xDD)
            out += struct.pack(">I", len(value))
            for item in value:
                self._enc(item, out)
        elif isinstance(value, dict):
            out.append(0xDF)
            out += struct.pack(">I", len(value))
            for key, item in value.items():
                self._enc(key, out)
                self._enc(item, out)
        else:  # pragma: no cover
            raise SerializationError(f"unsupported type {type(value).__name__}")

    def decode(self, data: bytes) -> Any:
        value, offset = self._dec(data, 0)
        if offset != len(data):
            raise SerializationError("trailing garbage after msgpack value")
        return value

    def _dec(self, data: bytes, offset: int) -> tuple[Any, int]:
        try:
            tag = data[offset]
        except IndexError:
            raise SerializationError("truncated msgpack data") from None
        offset += 1
        try:
            if tag < 0x80:
                return tag, offset
            if tag >= 0xE0:
                return tag - 0x100, offset
            if tag == 0xC0:
                return None, offset
            if tag == 0xC2:
                return False, offset
            if tag == 0xC3:
                return True, offset
            if tag == 0xD3:
                return struct.unpack_from(">q", data, offset)[0], offset + 8
            if tag == 0xCB:
                return struct.unpack_from(">d", data, offset)[0], offset + 8
            if tag in (0xDB, 0xC6):
                (length,) = struct.unpack_from(">I", data, offset)
                offset += 4
                raw = data[offset : offset + length]
                if len(raw) != length:
                    raise SerializationError("truncated msgpack payload")
                offset += length
                return (raw.decode("utf-8") if tag == 0xDB else bytes(raw)), offset
            if tag == 0xDD:
                (count,) = struct.unpack_from(">I", data, offset)
                offset += 4
                items = []
                for _ in range(count):
                    item, offset = self._dec(data, offset)
                    items.append(item)
                return items, offset
            if tag == 0xDF:
                (count,) = struct.unpack_from(">I", data, offset)
                offset += 4
                result = {}
                for _ in range(count):
                    key, offset = self._dec(data, offset)
                    if not isinstance(key, str):
                        raise SerializationError("msgpack map key must be str")
                    item, offset = self._dec(data, offset)
                    result[key] = item
                return result, offset
        except struct.error as exc:
            raise SerializationError(f"truncated msgpack data: {exc}") from exc
        except UnicodeDecodeError as exc:
            raise SerializationError(f"invalid UTF-8 in msgpack data: {exc}") from exc
        raise SerializationError(f"unsupported msgpack tag {tag:#x}")


class JsonSerializer(Serializer):
    """serde_json stand-in. ``bytes`` ride as latin-1 strings under a marker."""

    name = "json"
    _BYTES_MARKER = "__ffi_bytes__"

    def encode(self, value: Any) -> bytes:
        check_serializable(value)
        return json.dumps(self._wrap(value), separators=(",", ":")).encode("utf-8")

    def decode(self, data: bytes) -> Any:
        try:
            return self._unwrap(json.loads(data.decode("utf-8")))
        except (ValueError, UnicodeDecodeError) as exc:
            raise SerializationError(f"invalid JSON payload: {exc}") from exc

    def _wrap(self, value: Any) -> Any:
        if isinstance(value, bytes):
            return {self._BYTES_MARKER: value.decode("latin-1")}
        if isinstance(value, (list, tuple)):
            return [self._wrap(v) for v in value]
        if isinstance(value, dict):
            return {k: self._wrap(v) for k, v in value.items()}
        return value

    def _unwrap(self, value: Any) -> Any:
        if isinstance(value, list):
            return [self._unwrap(v) for v in value]
        if isinstance(value, dict):
            if set(value) == {self._BYTES_MARKER}:
                return value[self._BYTES_MARKER].encode("latin-1")
            return {k: self._unwrap(v) for k, v in value.items()}
        return value


class PickleSerializer(Serializer):
    """Host-native serializer; still restricted to the FFI data model.

    The restriction matters: the point of the sandbox is that a compromised
    domain's *output* is data, not live objects. Unpickling arbitrary
    classes would hand the attacker a constructor gadget.
    """

    name = "pickle"

    def encode(self, value: Any) -> bytes:
        check_serializable(value)
        return pickle.dumps(_listify(value), protocol=4)

    def decode(self, data: bytes) -> Any:
        try:
            value = pickle.loads(data)
        except Exception as exc:  # noqa: BLE001 - pickle raises broadly
            raise SerializationError(f"invalid pickle payload: {exc}") from exc
        check_serializable(value)
        return value


def _listify(value: Any) -> Any:
    """Normalise tuples to lists so every serializer agrees on the data
    model (a Rust FFI boundary has no tuple/list distinction either)."""
    if isinstance(value, (list, tuple)):
        return [_listify(v) for v in value]
    if isinstance(value, dict):
        return {k: _listify(v) for k, v in value.items()}
    return value


_REGISTRY: dict[str, Serializer] = {
    s.name: s
    for s in (
        BincodeSerializer(),
        MsgpackSerializer(),
        JsonSerializer(),
        PickleSerializer(),
    )
}


def get_serializer(name: str) -> Serializer:
    """Look up a built-in serializer by crate-style name."""
    try:
        return _REGISTRY[name]
    except KeyError:
        raise SerializationError(
            f"unknown serializer {name!r}; available: {sorted(_REGISTRY)}"
        ) from None


def available_serializers() -> list[str]:
    return sorted(_REGISTRY)
