"""Argument/return marshalling across the domain boundary.

SDRaD-FFI's data flow for one sandboxed call (§III of the paper):

1. serialize the arguments on the trusted side;
2. copy the bytes into the sandbox domain's heap (the only memory the
   foreign function can touch);
3. run the foreign function inside the domain, giving it the *domain-local*
   deserialized arguments;
4. serialize the result inside the domain, copy it out;
5. deserialize on the trusted side — with full validation, because the
   bytes come from a possibly-compromised domain.

Step 5's validation is the security linchpin: a compromised sandbox can
return arbitrary bytes, so the trusted-side decode must treat them as
attacker-controlled input. All our serializers raise
:class:`~repro.errors.SerializationError` on malformed input rather than
crashing, and :func:`unmarshal_result` converts that into a domain fault.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Optional

from ..errors import SerializationError
from ..sdrad.runtime import SdradRuntime
from .serialization import Serializer


@dataclass
class MarshalledCall:
    """Arguments staged inside a domain, ready for the foreign function."""

    domain_addr: int
    encoded_size: int
    args: tuple
    kwargs: dict[str, Any]


@dataclass
class MarshalStats:
    """Byte/time accounting for one sandboxed call (E6's measurements)."""

    serializer: str
    args_bytes: int = 0
    result_bytes: int = 0
    serialize_time: float = 0.0
    copy_time: float = 0.0

    @property
    def total_bytes(self) -> int:
        return self.args_bytes + self.result_bytes


def marshal_args(
    runtime: SdradRuntime,
    udi: int,
    serializer: Serializer,
    args: tuple,
    kwargs: dict[str, Any],
    stats: Optional[MarshalStats] = None,
) -> MarshalledCall:
    """Serialize ``args``/``kwargs`` and copy them into domain ``udi``."""
    payload = {"args": list(args), "kwargs": kwargs}
    encoded = serializer.encode(payload)
    serialize_cost = runtime.cost.serialize_time(serializer.name, len(encoded))
    runtime.charge(serialize_cost)
    addr = runtime.copy_into(udi, encoded)
    # Deserialize "inside" the domain: the foreign function sees its own
    # private copies, never references into trusted memory.
    decode_cost = runtime.cost.serialize_time(serializer.name, len(encoded))
    runtime.charge(decode_cost)
    decoded = serializer.decode(encoded)
    # The transport buffer has served its purpose; the wrapper frees it so
    # long-lived sandbox domains don't leak one block per call.
    runtime.domain(udi).heap.free(addr)
    if stats is not None:
        stats.args_bytes += len(encoded)
        stats.serialize_time += serialize_cost + decode_cost
        stats.copy_time += runtime.cost.copy_time(len(encoded))
    return MarshalledCall(
        domain_addr=addr,
        encoded_size=len(encoded),
        args=tuple(decoded["args"]),
        kwargs=dict(decoded["kwargs"]),
    )


def marshal_result(
    runtime: SdradRuntime,
    udi: int,
    serializer: Serializer,
    value: Any,
    stats: Optional[MarshalStats] = None,
) -> bytes:
    """Serialize a foreign function's result inside the domain, copy it out."""
    encoded = serializer.encode(value)
    runtime.charge(runtime.cost.serialize_time(serializer.name, len(encoded)))
    heap = runtime.domain(udi).heap
    addr = heap.malloc(max(len(encoded), 1))
    runtime.space.raw_store(addr, encoded)
    out = runtime.copy_out(udi, addr, len(encoded))
    heap.free(addr)
    if stats is not None:
        stats.result_bytes += len(encoded)
        stats.serialize_time += runtime.cost.serialize_time(
            serializer.name, len(encoded)
        )
        stats.copy_time += runtime.cost.copy_time(len(encoded))
    return out


def unmarshal_result(
    runtime: SdradRuntime, serializer: Serializer, encoded: bytes
) -> Any:
    """Trusted-side decode of bytes received from the sandbox.

    Raises :class:`SerializationError` (treated as a sandbox violation by
    the caller) when the bytes are malformed — attacker-controlled output
    must not crash the trusted side.
    """
    runtime.charge(runtime.cost.serialize_time(serializer.name, len(encoded)))
    return serializer.decode(encoded)


def roundtrip_check(serializer: Serializer, value: Any) -> bool:
    """Does ``value`` survive an encode/decode cycle? (property-test hook)"""
    try:
        return serializer.decode(serializer.encode(value)) == value
    except SerializationError:
        return False
