"""End-to-end fleet runs: open-loop arrivals against the sharded fleet.

This is the experiment driver behind ``python -m repro fleet`` and the
``fleet_run`` section of the PR7 bench. It wires the full stack together:

* **workload** — :class:`~repro.workloads.arrivals.OpenLoop` Poisson
  arrivals over a Zipf-skewed key population
  (:class:`~repro.workloads.zipf.KeyValueWorkload`, default 10^6 keys),
  with a configurable get/set/multiget op mix;
* **serving** — the consistent-hash :class:`~repro.fleet.balancer.Fleet`
  with health-checked failover and optional arrival-driven autoscaling;
* **queueing** — shards share one virtual clock (a cost accumulator), so
  the driver keeps a per-shard *completion frontier* (``free_at``):
  a sub-request arriving at ``t`` starts at ``max(t, free_at)``, runs for
  its measured virtual service time, and pushes the frontier. Request
  latency is queueing wait plus service; a scatter completes when its
  slowest sub-batch does. This is an M/G/k-style model where the ring,
  not a central queue, picks the server;
* **reporting** — latencies stream into the fine-grained
  ``fleet_request_latency_seconds`` histogram (p50/p99/p999 via
  interpolated quantiles), availability comes from the front-end's own
  accounting, and the rewind-vs-process-restart energy/carbon figures
  come from :class:`~repro.obs.ledger.SustainabilityLedger` over the same
  registry the shards recorded into.

Everything is seeded through one :class:`~repro.sim.rng.RngFactory`, so a
run — including failover timing and every autoscale decision — is
bit-reproducible.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from ..obs.hub import Observability
from ..obs.ledger import SustainabilityLedger
from ..obs.metrics import FLEET_LATENCY_BUCKETS, BucketHistogram
from ..sim.clock import VirtualClock
from ..sim.cost import DEFAULT_COST_MODEL, CostModel
from ..sim.rng import RngFactory
from ..workloads.arrivals import OpenLoop
from ..workloads.zipf import KeyValueWorkload, Keyspace
from .autoscaler import Autoscaler, AutoscalerConfig
from .balancer import Fleet
from .health import HealthConfig, HealthMonitor
from .ring import DEFAULT_VNODES


@dataclass
class FleetRunConfig:
    """One fleet experiment, fully determined by its fields."""

    shards: int = 4
    vnodes: int = DEFAULT_VNODES
    seed: int = 0
    #: Key population size (the paper-scale default is 10^6 users).
    keyspace: int = 1_000_000
    #: Zipf skew of key popularity.
    skew: float = 0.99
    #: Open-loop arrival rate, requests per virtual second.
    rate: float = 5_000.0
    #: Virtual seconds of arrivals to generate.
    horizon: float = 2.0
    #: Op mix: fractions of arrivals that are multigets / sets; the
    #: remainder are single-key gets.
    multiget_fraction: float = 0.3
    set_fraction: float = 0.2
    multiget_size: int = 8
    #: Hottest ranks bulk-loaded before the run (scatter pipelines).
    preload: int = 2_000
    #: Enable the arrival-driven autoscaler.
    autoscale: bool = False
    autoscaler_config: Optional[AutoscalerConfig] = None
    #: Autoscaler evaluation window, virtual seconds.
    window: float = 0.25
    health_config: Optional[HealthConfig] = None
    #: Fault injection: kill ``kill_shard`` at ``kill_at`` for ``outage``
    #: virtual seconds (None disables).
    kill_at: Optional[float] = None
    kill_shard: str = "shard-0"
    outage: float = 0.5
    cost: CostModel = DEFAULT_COST_MODEL
    #: Per-shard recovery-policy names from a campaign
    #: :class:`~repro.campaigns.decision.PolicyAssignment` (key "default"
    #: covers unlisted shards); None keeps the runtime's rewind default.
    recovery_policies: "Optional[dict[str, str]]" = None

    def __post_init__(self) -> None:
        if self.shards < 1:
            raise ValueError(f"need at least one shard, got {self.shards}")
        if self.keyspace < 1:
            raise ValueError(f"keyspace must be positive, got {self.keyspace}")
        if self.rate <= 0 or self.horizon <= 0:
            raise ValueError(
                f"rate and horizon must be positive, got "
                f"rate={self.rate} horizon={self.horizon}"
            )
        if self.multiget_fraction < 0 or self.set_fraction < 0:
            raise ValueError("op-mix fractions cannot be negative")
        if self.multiget_fraction + self.set_fraction > 1.0:
            raise ValueError(
                f"op-mix fractions exceed 1: multiget={self.multiget_fraction} "
                f"set={self.set_fraction}"
            )
        if self.multiget_size < 1:
            raise ValueError(
                f"multiget size must be >= 1, got {self.multiget_size}"
            )
        if self.kill_at is not None and self.outage <= 0:
            raise ValueError(f"outage must be positive, got {self.outage}")


@dataclass
class FleetRunReport:
    """What one run produced; ``as_dict`` is the bench/CLI surface."""

    shards_start: int
    shards_final: int
    ops: int
    served: int
    errors: int
    availability: float
    p50: float
    p99: float
    p999: float
    mean_latency: float
    multigets: int
    scatter_batches: int
    scatter_keys: int
    failovers: int
    rejoins: int
    restarts: int
    items: int
    #: ``(virtual time, shard count before, delta)`` per autoscale action.
    autoscale_decisions: "list[tuple[float, int, int]]"
    #: Rewind vs process-restart sustainability figures.
    ledger: "list[dict]"
    fleet: Fleet = field(repr=False, compare=False)
    #: The recovery policy each shard's runtime actually booted with.
    recovery_policies: "dict[str, str]" = field(default_factory=dict)

    def as_dict(self) -> dict:
        return {
            "shards_start": self.shards_start,
            "shards_final": self.shards_final,
            "ops": self.ops,
            "served": self.served,
            "errors": self.errors,
            "availability": self.availability,
            "p50": self.p50,
            "p99": self.p99,
            "p999": self.p999,
            "mean_latency": self.mean_latency,
            "multigets": self.multigets,
            "scatter_batches": self.scatter_batches,
            "scatter_keys": self.scatter_keys,
            "failovers": self.failovers,
            "rejoins": self.rejoins,
            "restarts": self.restarts,
            "items": self.items,
            "autoscale_decisions": [
                list(decision) for decision in self.autoscale_decisions
            ],
            "ledger": self.ledger,
            "recovery_policies": dict(self.recovery_policies),
        }

    def format(self) -> str:
        lines = [
            f"shards               {self.shards_start} -> {self.shards_final}",
            f"ops                  {self.ops} "
            f"({self.multigets} multigets -> {self.scatter_batches} "
            f"scatter batches / {self.scatter_keys} keys)",
            f"availability         {self.availability:.6f} "
            f"({self.served} served, {self.errors} errors)",
            f"latency p50/p99/p999 {self.p50 * 1e6:.1f} / "
            f"{self.p99 * 1e6:.1f} / {self.p999 * 1e6:.1f} us",
            f"failovers/rejoins    {self.failovers}/{self.rejoins} "
            f"({self.restarts} shard restarts)",
            f"items resident       {self.items}",
        ]
        if self.autoscale_decisions:
            steps = ", ".join(
                f"t={t:.2f}s {count}{'+' if delta > 0 else '-'}1"
                for t, count, delta in self.autoscale_decisions
            )
            lines.append(f"autoscale            {steps}")
        for entry in self.ledger:
            lines.append(
                f"ledger[{entry['strategy']}]   "
                f"{entry['joules_per_request'] * 1e3:.4f} mJ/req, "
                f"{entry['gco2e_per_request'] * 1e6:.4f} ugCO2e/req, "
                f"recovery {entry['recovery_seconds']:.3f}s"
            )
        return "\n".join(lines)


def run_fleet(config: "FleetRunConfig" = None) -> FleetRunReport:  # type: ignore[assignment]
    """Run one seeded fleet experiment and report the results."""
    cfg = config if config is not None else FleetRunConfig()
    clock = VirtualClock()
    obs = Observability(clock=clock)
    fleet = Fleet(
        cfg.shards,
        vnodes=cfg.vnodes,
        seed=cfg.seed,
        clock=clock,
        cost=cfg.cost,
        obs=obs,
        recovery_policies=cfg.recovery_policies,
    )
    HealthMonitor(fleet, cfg.health_config)
    scaler = Autoscaler(cfg.autoscaler_config) if cfg.autoscale else None

    rngs = RngFactory(cfg.seed)
    keyspace = Keyspace(cfg.keyspace)
    workload = KeyValueWorkload(keyspace, cfg.skew, rngs.stream("fleet.keys"))
    op_rng = rngs.stream("fleet.opmix")
    arrivals = OpenLoop(cfg.rate, rngs.stream("fleet.arrivals"))
    latency = obs.registry.histogram("fleet_request_latency_seconds")

    if cfg.preload:
        ranks = min(cfg.preload, cfg.keyspace)
        fleet.set_many(
            [(keyspace.key(rank), workload.next_value()) for rank in range(ranks)]
        )

    killed = cfg.kill_at is None
    window_started = 0.0
    window_arrivals = 0
    window_service = 0.0
    window_hist = BucketHistogram("fleet_window", FLEET_LATENCY_BUCKETS)

    for t in arrivals.times(cfg.horizon):
        # The shared clock tracks arrival (wall) time; serving costs accrue
        # on top of it, so under overload it can already sit past ``t``.
        if t > clock.now:
            clock.advance_to(t)
        if not killed and t >= cfg.kill_at:
            fleet.shards[cfg.kill_shard].kill(cfg.outage)
            killed = True
        fleet.health.tick(t)

        draw = op_rng.random()
        if draw < cfg.multiget_fraction:
            fleet.multiget(
                [workload.next_key() for _ in range(cfg.multiget_size)]
            )
        elif draw < cfg.multiget_fraction + cfg.set_fraction:
            fleet.set(workload.next_key(), workload.next_value())
        else:
            fleet.get(workload.next_key())

        # Queueing: each sub-request joins its shard's queue; the request
        # completes when its slowest sub-batch does.
        completion = t
        for name, service in fleet.last_op_services:
            shard = fleet.shards[name]
            done = max(t, shard.free_at) + service
            shard.free_at = done
            if done > completion:
                completion = done
        observed = completion - t
        latency.observe(observed)
        window_hist.observe(observed)
        window_arrivals += 1
        window_service += sum(s for _, s in fleet.last_op_services)

        if scaler is not None and t - window_started >= cfg.window:
            elapsed = t - window_started
            # Offered load in busy shard-seconds per second: every
            # sub-request's service time counts, so scatter fan-out is
            # demand the estimator sees, exactly as it should.
            observed_rate = window_arrivals / elapsed
            mean_service = window_service / window_arrivals
            window_p99 = (
                window_hist.quantile_interpolated(0.99)
                if window_hist.count
                else 0.0
            )
            delta = scaler.evaluate(
                t, len(fleet.ring), observed_rate, mean_service, window_p99
            )
            if delta > 0:
                fleet.add_shard()
            elif delta < 0:
                fleet.drain_shard()
            window_started = t
            window_arrivals = 0
            window_service = 0.0
            window_hist = BucketHistogram("fleet_window", FLEET_LATENCY_BUCKETS)

    # The ledger amortises fixed recovery costs over the observed request
    # rate; hand it a clock frozen at the run's end so rate = requests /
    # elapsed-run-time rather than requests / cost-accumulator reading.
    ledger_clock = VirtualClock(start=max(cfg.horizon, clock.now))
    ledger = SustainabilityLedger(obs.registry, ledger_clock, cost=cfg.cost)

    metrics = fleet.metrics
    return FleetRunReport(
        shards_start=cfg.shards,
        shards_final=len(fleet.ring),
        ops=metrics.ops,
        served=metrics.served,
        errors=metrics.errors,
        availability=fleet.availability(),
        p50=latency.quantile_interpolated(0.5) if latency.count else 0.0,
        p99=latency.quantile_interpolated(0.99) if latency.count else 0.0,
        p999=latency.quantile_interpolated(0.999) if latency.count else 0.0,
        mean_latency=latency.mean() if latency.count else 0.0,
        multigets=metrics.multigets,
        scatter_batches=metrics.scatter_batches,
        scatter_keys=metrics.scatter_keys,
        failovers=metrics.failovers,
        rejoins=metrics.rejoins,
        restarts=sum(shard.restarts for shard in fleet.shards.values()),
        items=fleet.total_items(),
        autoscale_decisions=list(scaler.decisions) if scaler else [],
        ledger=[entry.as_dict() for entry in ledger.entries()],
        fleet=fleet,
        recovery_policies={
            name: shard.runtime.default_policy.name
            for name, shard in fleet.shards.items()
        },
    )
