"""Consistent-hash ring with virtual nodes: deterministic key placement.

The fleet's sharding layer. Each shard owns ``vnodes`` points on a 64-bit
ring; a key hashes to a point and is owned by the first shard point at or
clockwise of it. Two properties carry the whole design:

* **Determinism** — placement is a pure function of ``(seed, shard names,
  vnodes)``. Hashes come from ``blake2b`` keyed with the seed, never from
  Python's salted ``hash()``, so the same configuration yields the same
  placement in every process and on every run (tested).
* **Minimal disruption** — removing a shard deletes only that shard's
  points; every key owned by a surviving shard keeps its owner, so a
  quarantine/failover moves exactly the failed shard's key ranges and
  nothing else (tested). The same holds in reverse when a shard rejoins.

Lookup is ``O(log(shards * vnodes))`` — a single ``bisect`` on the sorted
point array — which is what keeps the fleet front-end's routing cost flat
as the fleet scales (the ``bench_fleet`` scaling gate).
"""

from __future__ import annotations

import hashlib
from bisect import bisect_right, insort

from ..errors import SdradError

#: Points per shard. 64 keeps the ring small (8 shards -> 512 points) while
#: bounding the largest shard's keyspace share within ~20% of fair.
DEFAULT_VNODES = 64


def _hash64(data: bytes, seed: int) -> int:
    """Stable 64-bit ring position for ``data`` under ``seed``."""
    digest = hashlib.blake2b(
        data, digest_size=8, key=seed.to_bytes(8, "little", signed=False)
    ).digest()
    return int.from_bytes(digest, "big")


class HashRing:
    """Sorted-array consistent-hash ring over named shards."""

    def __init__(self, vnodes: int = DEFAULT_VNODES, seed: int = 0) -> None:
        if vnodes < 1:
            raise SdradError(f"ring needs at least one vnode, got {vnodes}")
        if seed < 0:
            raise SdradError(f"ring seed must be non-negative, got {seed}")
        self.vnodes = vnodes
        self.seed = seed
        # Parallel sorted arrays: point -> owning shard name. Collisions on
        # a 64-bit ring are vanishingly rare but must not corrupt the ring:
        # insertion refuses a duplicate point outright (deterministic, and
        # fixable by choosing a different seed).
        self._points: "list[int]" = []
        self._owners_by_point: "dict[int, str]" = {}
        self._shards: "dict[str, list[int]]" = {}

    # ------------------------------------------------------------------
    # Membership
    # ------------------------------------------------------------------

    def add_shard(self, name: str) -> None:
        """Place ``name``'s vnodes; moves only ranges it now owns."""
        if name in self._shards:
            raise SdradError(f"shard {name!r} already on the ring")
        points = []
        for index in range(self.vnodes):
            point = _hash64(f"{name}#{index}".encode("utf-8"), self.seed)
            if point in self._owners_by_point:
                raise SdradError(
                    f"ring point collision for {name!r} vnode {index} — "
                    "choose a different ring seed"
                )
            points.append(point)
        # Commit only after every point cleared the collision check.
        for point in points:
            insort(self._points, point)
            self._owners_by_point[point] = name
        self._shards[name] = points

    def remove_shard(self, name: str) -> None:
        """Delete ``name``'s vnodes; every other assignment is untouched."""
        points = self._shards.pop(name, None)
        if points is None:
            raise SdradError(f"shard {name!r} is not on the ring")
        remove = set(points)
        self._points = [p for p in self._points if p not in remove]
        for point in points:
            del self._owners_by_point[point]

    @property
    def shards(self) -> "list[str]":
        return sorted(self._shards)

    def __contains__(self, name: str) -> bool:
        return name in self._shards

    def __len__(self) -> int:
        return len(self._shards)

    # ------------------------------------------------------------------
    # Lookup
    # ------------------------------------------------------------------

    def shard_for(self, key: bytes) -> str:
        """Owner of ``key``: first shard point clockwise of the key's hash."""
        points = self._points
        if not points:
            raise SdradError("ring is empty — no shard to own the key")
        index = bisect_right(points, _hash64(key, self.seed))
        if index == len(points):
            index = 0  # wrap: the lowest point owns the top arc
        return self._owners_by_point[points[index]]

    def plan(self, keys: "list[bytes]") -> "dict[str, list[bytes]]":
        """Group ``keys`` by owning shard, preserving per-shard key order.

        The scatter plan for a multi-key get: one entry per shard that owns
        at least one key, in first-touched order. Duplicate keys stay
        duplicated (they hash identically, so they land on the same shard).
        """
        out: "dict[str, list[bytes]]" = {}
        shard_for = self.shard_for
        for key in keys:
            out.setdefault(shard_for(key), []).append(key)
        return out

    def assignment(self, keys: "list[bytes]") -> "dict[bytes, str]":
        """Key -> owner map for a probe keyset (rebalance tests/metrics)."""
        return {key: self.shard_for(key) for key in keys}

    def share_of(self, name: str, probe_keys: "list[bytes]") -> float:
        """Fraction of ``probe_keys`` owned by ``name`` (balance checks)."""
        if name not in self._shards:
            raise SdradError(f"shard {name!r} is not on the ring")
        if not probe_keys:
            return 0.0
        owned = sum(1 for key in probe_keys if self.shard_for(key) == name)
        return owned / len(probe_keys)
