"""One fleet shard: a private runtime + memcached server behind the ring.

A shard models one node of the sharded fleet. Like the cluster's workers
(:mod:`repro.apps.cluster`), every shard has a *private*
:class:`~repro.sdrad.runtime.SdradRuntime` — nodes share no memory — while
all shards share one virtual clock (wall time is global) and, optionally,
one observability hub (a fleet shares a metrics endpoint).

The front-end talks to each shard over a single multiplexed connection
(``lb``), the way a memcached proxy does: per-connection isolation then
gives each shard exactly one long-lived parse domain for fleet traffic,
and the shard-side :class:`~repro.sdrad.watchdog.FaultWatchdog` quarantines
that *domain* when forwarded traffic keeps faulting — at which point the
shard refuses fleet requests and the health monitor fails it out of the
ring (see :mod:`repro.fleet.health`).
"""

from __future__ import annotations

import enum
from typing import TYPE_CHECKING, Optional

from ..apps.kvstore import KVStore
from ..apps.memcached_server import IsolationMode, MemcachedServer
from ..sdrad.policy import make_policy
from ..sdrad.runtime import SdradRuntime
from ..sdrad.watchdog import FaultWatchdog, WatchdogConfig
from ..sim.clock import VirtualClock
from ..sim.cost import DEFAULT_COST_MODEL, CostModel

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from ..obs.hub import Observability

#: The front-end's multiplexed connection id on every shard.
FRONTEND_CLIENT = "lb"


class ShardState(enum.Enum):
    """Process health only — ring membership is the fleet's book, not ours."""

    UP = "up"
    #: Killed; refuses traffic until the supervisor restarts it.
    DOWN = "down"


class Shard:
    """A single shard node: runtime, store, server, and health state."""

    def __init__(
        self,
        name: str,
        clock: VirtualClock,
        cost: CostModel = DEFAULT_COST_MODEL,
        obs: "Optional[Observability]" = None,
        isolation: IsolationMode = IsolationMode.PER_CONNECTION,
        arena_size: int = 4 * 1024 * 1024,
        watchdog_config: Optional[WatchdogConfig] = None,
        recovery_policy: Optional[str] = None,
    ) -> None:
        self.name = name
        self.clock = clock
        self.cost = cost
        self.obs = obs
        self.isolation = isolation
        self.arena_size = arena_size
        self.watchdog_config = watchdog_config
        #: Campaign-assigned recovery policy name (None = runtime default,
        #: i.e. plain rewind); every domain the shard's runtime executes
        #: without an explicit policy recovers under it.
        self.recovery_policy = recovery_policy
        self.state = ShardState.UP
        self.down_until = 0.0
        self.restarts = 0
        #: Virtual time this shard is busy until (per-shard queue; shards
        #: serve in parallel, so each keeps its own completion frontier).
        self.free_at = 0.0
        self._boot()

    def _boot(self) -> None:
        policy = (
            make_policy(self.recovery_policy)
            if self.recovery_policy is not None
            else None
        )
        self.runtime = SdradRuntime(
            clock=self.clock, cost=self.cost, obs=self.obs, default_policy=policy
        )
        self.store = KVStore(self.runtime, arena_size=self.arena_size)
        self.watchdog = FaultWatchdog(
            self.clock, self.watchdog_config, obs=self.obs
        )
        self.server = MemcachedServer(
            self.runtime,
            store=self.store,
            isolation=self.isolation,
            watchdog=self.watchdog,
        )
        self.server.connect(FRONTEND_CLIENT)

    # ------------------------------------------------------------------
    # Serving
    # ------------------------------------------------------------------

    @property
    def is_down(self) -> bool:
        """True while the node is dead (killed, not yet restarted)."""
        if self.state is ShardState.DOWN and self.clock.now >= self.down_until:
            # The supervisor restarted the process: fresh image, empty
            # cache. State goes back to UP; rejoining the ring is the
            # health monitor's call, not ours.
            self.restart()
        return self.state is ShardState.DOWN

    @property
    def is_quarantined(self) -> bool:
        """True while the shard-side watchdog refuses the fleet connection."""
        return self.watchdog.is_quarantined(FRONTEND_CLIENT)

    def handle(self, raw: bytes) -> bytes:
        """Serve one request on the fleet connection."""
        return self.server.handle(FRONTEND_CLIENT, raw)

    def handle_batch(self, raws: "list[bytes]") -> "list[bytes]":
        """Serve a pipeline of requests in one domain entry (amortised)."""
        return self.server.handle_batch(FRONTEND_CLIENT, raws)

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------

    def kill(self, outage_seconds: float) -> None:
        """Crash the node; the supervisor brings it back after the outage."""
        if outage_seconds <= 0:
            raise ValueError(
                f"outage must be positive, got {outage_seconds}"
            )
        self.state = ShardState.DOWN
        self.down_until = self.clock.now + outage_seconds
        if self.obs is not None:
            self.obs.event(
                "shard.kill", shard=self.name, outage=outage_seconds
            )

    def restart(self) -> None:
        """Reboot with a fresh process image — the cache comes back empty."""
        self.restarts += 1
        self.state = ShardState.UP
        self.down_until = 0.0
        self._boot()
        if self.obs is not None:
            self.obs.event("shard.restart", shard=self.name)

    def item_count(self) -> int:
        return self.store.item_count

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"Shard({self.name!r}, state={self.state.value}, "
            f"items={self.store.item_count})"
        )
