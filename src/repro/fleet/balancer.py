"""The fleet front-end: ring-routed scatter-gather over N shards.

This is the load balancer of the sharded fleet. Single-key operations
route by one ``O(log vnodes)`` ring lookup; a multi-key get is split into
**per-shard scatter batches** — one ``get k1 k2 ...`` wire request per
shard that owns at least one key — so each shard parses its sub-batch in
a single domain activation record and serves it through
:meth:`~repro.apps.kvstore.KVStore.get_many`'s batched kernel loads. The
gather step reassembles the per-shard responses into exactly the byte
stream a single shard would have produced for the same keys (tested
bit-for-bit), so sharding is invisible to clients.

Failure handling mirrors a production proxy: a request that lands on a
dead or watchdog-quarantined shard is answered with an error *and*
reported to the health monitor, which fails the shard out of the ring
once failures persist (see :mod:`repro.fleet.health`); the consistent
ring guarantees only the failed shard's ranges move.

For the wall-clock scaling bench the front-end can track **host time**
split into serial work (routing, request building, gathering — the
balancer's own CPU) and per-shard parallelisable work, of which each
scatter round contributes its *maximum* to the critical path: shards are
independent nodes, so a fleet's makespan for one scatter is the slowest
shard's sub-batch, not the sum. ``bench_fleet`` gates on throughput
computed over ``serial + critical`` — the honest fleet-level number a
load balancer in front of N real nodes would sustain.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from time import perf_counter
from typing import TYPE_CHECKING, Optional

from ..apps.memcached_server import IsolationMode
from ..errors import SdradError
from ..sdrad.watchdog import WatchdogConfig
from ..sim.clock import VirtualClock
from ..sim.cost import DEFAULT_COST_MODEL, CostModel
from .ring import DEFAULT_VNODES, HashRing
from .shard import Shard

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from ..obs.hub import Observability
    from .health import HealthMonitor

_NO_SHARD = b"SERVER_ERROR no shard available\r\n"
_SHARD_DOWN = b"SERVER_ERROR shard down\r\n"


@dataclass
class FleetMetrics:
    """Front-end accounting: ops, scatter shape, failover events."""

    ops: int = 0
    served: int = 0
    #: Faults/refusals/dead-shard answers (the op reached no healthy shard
    #: or came back SERVER_ERROR).
    errors: int = 0
    multigets: int = 0
    #: Per-shard sub-batches issued by scatter operations.
    scatter_batches: int = 0
    #: Keys carried by those sub-batches.
    scatter_keys: int = 0
    failovers: int = 0
    rejoins: int = 0
    per_shard_ops: "dict[str, int]" = field(default_factory=dict)


class Fleet:
    """Consistent-hash sharded memcached fleet behind one front-end."""

    def __init__(
        self,
        shards: int = 4,
        *,
        vnodes: int = DEFAULT_VNODES,
        seed: int = 0,
        clock: Optional[VirtualClock] = None,
        cost: CostModel = DEFAULT_COST_MODEL,
        obs: "Optional[Observability]" = None,
        isolation: IsolationMode = IsolationMode.PER_CONNECTION,
        arena_size: int = 4 * 1024 * 1024,
        watchdog_config: Optional[WatchdogConfig] = None,
        track_host_time: bool = False,
        recovery_policies: "Optional[dict[str, str]]" = None,
    ) -> None:
        if shards < 1:
            raise SdradError(f"fleet needs at least one shard, got {shards}")
        self.clock = clock if clock is not None else VirtualClock()
        self.cost = cost
        self.obs = obs
        if obs is not None:
            obs.bind_clock(self.clock)
        # Per-shard recovery-policy names from a campaign assignment; the
        # "default" key covers shards without their own entry (including
        # autoscaled ones created later).
        self._recovery_policies = dict(recovery_policies or {})
        self.ring = HashRing(vnodes=vnodes, seed=seed)
        # Route cache: key -> owning shard name, a memoised ``shard_for``.
        # Real proxies compile the ring into a route table and invalidate
        # it on membership change; here a dict turns the ~µs hash+bisect
        # into a ~100 ns hit on the Zipf-concentrated key population. Any
        # ring mutation clears it (correctness over reuse), and it is
        # capped so an adversarial key stream cannot grow it unboundedly.
        self._route_cache: "dict[bytes, str]" = {}
        self._route_cache_max = 1 << 20
        self.shards: "dict[str, Shard]" = {}
        for index in range(shards):
            self._add_shard(
                f"shard-{index}",
                isolation=isolation,
                arena_size=arena_size,
                watchdog_config=watchdog_config,
            )
        self._isolation = isolation
        self._arena_size = arena_size
        self._watchdog_config = watchdog_config
        self._next_index = shards
        self.metrics = FleetMetrics()
        self.health: "Optional[HealthMonitor]" = None
        #: ``(shard name, virtual service seconds)`` per sub-request of the
        #: most recent operation — the driver's queueing model reads this
        #: to place each sub-batch on its shard's own completion frontier.
        self.last_op_services: "list[tuple[str, float]]" = []
        #: Shards that failed to serve part of the most recent operation.
        self.last_op_failed: "list[str]" = []
        # Host-time accounting (bench only; a plain bool guard keeps the
        # serving path free of timer calls when disabled).
        self.track_host_time = track_host_time
        self.host_serial_s = 0.0
        self.host_critical_s = 0.0
        self.host_parallel_total_s = 0.0

    # ------------------------------------------------------------------
    # Membership
    # ------------------------------------------------------------------

    def _add_shard(self, name: str, **kwargs: object) -> Shard:
        policy = self._recovery_policies.get(
            name, self._recovery_policies.get("default")
        )
        shard = Shard(
            name,
            self.clock,
            cost=self.cost,
            obs=self.obs,
            recovery_policy=policy,
            **kwargs,
        )
        self.shards[name] = shard
        self.ring.add_shard(name)
        self._route_cache.clear()
        return shard

    def add_shard(self) -> Shard:
        """Autoscale up: place one new (empty) shard on the ring."""
        name = f"shard-{self._next_index}"
        self._next_index += 1
        shard = self._add_shard(
            name,
            isolation=self._isolation,
            arena_size=self._arena_size,
            watchdog_config=self._watchdog_config,
        )
        if self.obs is not None:
            self.obs.event("fleet.scale_up", shard=name, shards=len(self.ring))
            self.obs.registry.gauge("fleet_shards").set(len(self.ring))
        return shard

    def drain_shard(self) -> Optional[str]:
        """Autoscale down: remove the newest serving shard from the ring.

        Cache semantics make draining cheap: the drained shard's ranges
        move to their ring successors and refill on demand. Never drains
        below one serving shard.
        """
        serving = [name for name in self.ring.shards if name in self.shards]
        if len(serving) <= 1:
            return None
        name = max(serving, key=lambda n: int(n.rsplit("-", 1)[1]))
        self.ring.remove_shard(name)
        self._route_cache.clear()
        self.shards.pop(name)
        if self.obs is not None:
            self.obs.event("fleet.scale_down", shard=name, shards=len(self.ring))
            self.obs.registry.gauge("fleet_shards").set(len(self.ring))
        return name

    def fail_over(self, name: str) -> None:
        """Remove a failed shard's vnodes; only its ranges are reassigned."""
        if name not in self.ring:
            return
        self.ring.remove_shard(name)
        self._route_cache.clear()
        self.metrics.failovers += 1
        if self.obs is not None:
            self.obs.event("fleet.failover", shard=name, shards=len(self.ring))
            self.obs.registry.counter("fleet_failovers_total").increment()
            self.obs.registry.gauge("fleet_shards").set(len(self.ring))

    def rejoin(self, name: str) -> None:
        """Re-add a recovered shard; it reclaims exactly its old ranges."""
        if name in self.ring or name not in self.shards:
            return
        self.ring.add_shard(name)
        self._route_cache.clear()
        self.metrics.rejoins += 1
        if self.obs is not None:
            self.obs.event("fleet.rejoin", shard=name, shards=len(self.ring))
            self.obs.registry.counter("fleet_rejoins_total").increment()
            self.obs.registry.gauge("fleet_shards").set(len(self.ring))

    def serving_shards(self) -> "list[str]":
        return self.ring.shards

    # ------------------------------------------------------------------
    # Single-key operations
    # ------------------------------------------------------------------

    def _shard_name_for(self, key: bytes) -> str:
        """Ring lookup through the route cache (cleared on ring changes)."""
        cache = self._route_cache
        name = cache.get(key)
        if name is None:
            name = self.ring.shard_for(key)
            if len(cache) >= self._route_cache_max:
                cache.clear()
            cache[key] = name
        return name

    def _plan(self, keys: "list[bytes]") -> "dict[str, list[bytes]]":
        """Group keys by owning shard, preserving first-seen shard order."""
        plan: "dict[str, list[bytes]]" = {}
        cache = self._route_cache
        shard_for = self.ring.shard_for
        cache_max = self._route_cache_max
        for key in keys:
            name = cache.get(key)
            if name is None:
                name = shard_for(key)
                if len(cache) >= cache_max:
                    cache.clear()
                cache[key] = name
            bucket = plan.get(name)
            if bucket is None:
                plan[name] = [key]
            else:
                bucket.append(key)
        return plan

    def _route(self, key: bytes) -> Optional[Shard]:
        try:
            name = self._shard_name_for(key)
        except SdradError:
            return None
        return self.shards[name]

    def _serve_one(self, shard: Shard, raw: bytes) -> bytes:
        """One routed request with health reporting + service bookkeeping."""
        self.metrics.per_shard_ops[shard.name] = (
            self.metrics.per_shard_ops.get(shard.name, 0) + 1
        )
        if shard.is_down:
            self.last_op_failed.append(shard.name)
            if self.health is not None:
                self.health.on_failure(shard.name)
            return _SHARD_DOWN
        started = self.clock.now
        response = shard.handle(raw)
        self.last_op_services.append((shard.name, self.clock.now - started))
        if response.startswith(b"SERVER_ERROR"):
            self.last_op_failed.append(shard.name)
            if self.health is not None:
                self.health.on_failure(shard.name)
        elif self.health is not None:
            self.health.on_success(shard.name)
        return response

    def set(self, key: bytes, value: bytes, flags: int = 0) -> bytes:
        raw = b"set %s %d 0 %d\r\n%s\r\n" % (key, flags, len(value), value)
        return self._single(key, raw)

    def get(self, key: bytes) -> bytes:
        return self._single(key, b"get %s\r\n" % key)

    def delete(self, key: bytes) -> bytes:
        return self._single(key, b"delete %s\r\n" % key)

    def _single(self, key: bytes, raw: bytes) -> bytes:
        self.metrics.ops += 1
        self.last_op_services = []
        self.last_op_failed = []
        if self.track_host_time:
            t0 = perf_counter()
            shard = self._route(key)
            t1 = perf_counter()
            self.host_serial_s += t1 - t0
            if shard is None:
                self.metrics.errors += 1
                return _NO_SHARD
            response = self._serve_one(shard, raw)
            dt = perf_counter() - t1
            self.host_critical_s += dt
            self.host_parallel_total_s += dt
        else:
            shard = self._route(key)
            if shard is None:
                self.metrics.errors += 1
                return _NO_SHARD
            response = self._serve_one(shard, raw)
        if self.last_op_failed:
            self.metrics.errors += 1
        else:
            self.metrics.served += 1
        return response

    # ------------------------------------------------------------------
    # Scatter-gather multiget
    # ------------------------------------------------------------------

    def multiget(self, keys: "list[bytes]") -> bytes:
        """Serve ``get k1 k2 ...`` across shards; respond as one shard would.

        Scatter: one wire request per owning shard (one activation record
        per shard, not per key). Gather: per-shard ``VALUE`` blocks are
        reassembled in the *requested* key order and terminated with one
        ``END``, byte-identical to single-shard serving.
        """
        if not keys:
            raise SdradError("multiget needs at least one key")
        self.metrics.ops += 1
        self.metrics.multigets += 1
        self.last_op_services = []
        self.last_op_failed = []
        track = self.track_host_time
        t0 = perf_counter() if track else 0.0
        plan = self._plan(keys) if self.ring.shards else {}
        requests = [
            (name, b"get " + b" ".join(shard_keys) + b"\r\n")
            for name, shard_keys in plan.items()
        ]
        if track:
            t1 = perf_counter()
            self.host_serial_s += t1 - t0
        if not requests:
            self.metrics.errors += 1
            return _NO_SHARD
        self.metrics.scatter_batches += len(requests)
        self.metrics.scatter_keys += len(keys)

        responses = []
        if track:
            slowest = 0.0
            for name, raw in requests:
                ts = perf_counter()
                responses.append(self._serve_one(self.shards[name], raw))
                dt = perf_counter() - ts
                self.host_parallel_total_s += dt
                if dt > slowest:
                    slowest = dt
            self.host_critical_s += slowest
            t2 = perf_counter()
            merged = self._finish_multiget(keys, requests, responses)
            self.host_serial_s += perf_counter() - t2
        else:
            for name, raw in requests:
                responses.append(self._serve_one(self.shards[name], raw))
            merged = self._finish_multiget(keys, requests, responses)
        if self.last_op_failed:
            self.metrics.errors += 1
        else:
            self.metrics.served += 1
        return merged

    def _finish_multiget(
        self,
        keys: "list[bytes]",
        requests: "list[tuple[str, bytes]]",
        responses: "list[bytes]",
    ) -> bytes:
        # Single owning shard: its response already IS the single-shard
        # byte stream for these keys (same order, same END) — skip the
        # parse/reassemble round-trip entirely.
        if len(requests) == 1 and (
            responses[0].startswith(b"VALUE ") or responses[0] == b"END\r\n"
        ):
            return responses[0]
        return self._gather(keys, responses)

    @staticmethod
    def _parse_values(response: bytes, blocks: "dict[bytes, bytes]") -> None:
        """Split a multiget response into per-key ``VALUE`` blocks."""
        offset = 0
        while response.startswith(b"VALUE ", offset):
            line_end = response.index(b"\r\n", offset)
            _, key, _, length = response[offset:line_end].split(b" ")
            body_end = line_end + 2 + int(length)
            blocks[key] = response[offset : body_end + 2]
            offset = body_end + 2

    @classmethod
    def _gather(cls, keys: "list[bytes]", responses: "list[bytes]") -> bytes:
        """Merge per-shard multiget responses into request-key order."""
        blocks: "dict[bytes, bytes]" = {}
        for response in responses:
            if not response.startswith(b"VALUE ") and response != b"END\r\n":
                # Error from this shard (fault, quarantine, dead node):
                # its keys degrade to misses; the error itself was already
                # accounted via ``last_op_failed``.
                continue
            cls._parse_values(response, blocks)
        chunks = [blocks[key] for key in keys if key in blocks]
        chunks.append(b"END\r\n")
        return b"".join(chunks)

    def multiget_wave(self, batches: "list[list[bytes]]") -> "list[bytes]":
        """Serve many concurrent multigets as one coalesced scatter wave.

        An open-loop front-end always has a window of in-flight multigets;
        dispatching them one at a time pays the per-``handle`` activation
        fixed cost once per shard *per request*. A wave instead coalesces
        the window: every shard receives ONE ``handle_batch`` pipeline for
        the whole wave (one domain activation record per shard per wave).
        Within a shard's pipeline:

        * a multiget whose keys land entirely on that shard rides as its
          own ``get`` request — the response is returned to that client
          verbatim, no parsing (the single-shard fast path);
        * the split multigets' keys are merged into one bulk ``get``
          whose response is parsed into ``VALUE`` blocks — charged to
          that shard's parallel track, since it pipelines with slower
          shards' service — and reassembled per client in request-key
          order afterwards.

        Each returned response is byte-identical to serving that multiget
        alone (and to single-shard serving). Failed/down shards degrade
        their keys to misses exactly as :meth:`multiget` does.
        """
        if not batches:
            return []
        self.last_op_services = []
        self.last_op_failed = []
        self.metrics.ops += len(batches)
        self.metrics.multigets += len(batches)
        track = self.track_host_time
        t0 = perf_counter() if track else 0.0
        if not self.ring.shards:
            self.metrics.errors += len(batches)
            return [_NO_SHARD] * len(batches)
        # Serial: route every multiget, split per shard into whole-batch
        # requests (fast path) and a merged remainder.
        total_keys = 0
        whole: "dict[str, list[tuple[int, list[bytes]]]]" = {}
        split: "dict[str, list[tuple[int, list[bytes]]]]" = {}
        for index, keys in enumerate(batches):
            if not keys:
                raise SdradError("multiget needs at least one key")
            total_keys += len(keys)
            plan = self._plan(keys)
            target = whole if len(plan) == 1 else split
            for name, sub in plan.items():
                bucket = target.get(name)
                if bucket is None:
                    target[name] = [(index, sub)]
                else:
                    bucket.append((index, sub))
        self.metrics.scatter_keys += total_keys
        results: "list[Optional[bytes]]" = [None] * len(batches)
        blocks: "dict[bytes, bytes]" = {}
        failed: "set[int]" = set()
        if track:
            t1 = perf_counter()
            self.host_serial_s += t1 - t0
            slowest = 0.0
        # Parallel (per shard): one handle_batch pipeline + response split.
        for name in self.ring.shards:
            whole_entries = whole.get(name, ())
            split_entries = split.get(name, ())
            if not whole_entries and not split_entries:
                continue
            ts = perf_counter() if track else 0.0
            shard = self.shards[name]
            raws = [
                b"get " + b" ".join(sub) + b"\r\n" for _, sub in whole_entries
            ]
            if split_entries:
                merged: "list[bytes]" = []
                for _, sub in split_entries:
                    merged.extend(sub)
                raws.append(b"get " + b" ".join(merged) + b"\r\n")
            self.metrics.scatter_batches += len(raws)
            self.metrics.per_shard_ops[name] = (
                self.metrics.per_shard_ops.get(name, 0) + len(raws)
            )
            shard_failed = False
            if shard.is_down:
                shard_failed = True
                for index, _ in whole_entries:
                    failed.add(index)
                for index, _ in split_entries:
                    failed.add(index)
            else:
                started = self.clock.now
                responses = shard.handle_batch(raws)
                self.last_op_services.append(
                    (name, self.clock.now - started)
                )
                for (index, _), response in zip(whole_entries, responses):
                    if response.startswith(b"VALUE ") or response == b"END\r\n":
                        results[index] = response
                    else:
                        shard_failed = True
                        failed.add(index)
                if split_entries:
                    response = responses[-1]
                    if response.startswith(b"VALUE ") or response == b"END\r\n":
                        self._parse_values(response, blocks)
                    else:
                        shard_failed = True
                        for index, _ in split_entries:
                            failed.add(index)
            if shard_failed:
                self.last_op_failed.append(name)
                if self.health is not None:
                    self.health.on_failure(name)
            elif self.health is not None:
                self.health.on_success(name)
            if track:
                dt = perf_counter() - ts
                self.host_parallel_total_s += dt
                if dt > slowest:
                    slowest = dt
        if track:
            self.host_critical_s += slowest
            t2 = perf_counter()
        # Serial: reassemble each split multiget in request-key order.
        for index, keys in enumerate(batches):
            if results[index] is None:
                chunks = [blocks[key] for key in keys if key in blocks]
                chunks.append(b"END\r\n")
                results[index] = b"".join(chunks)
        if track:
            self.host_serial_s += perf_counter() - t2
        self.metrics.errors += len(failed)
        self.metrics.served += len(batches) - len(failed)
        return results  # type: ignore[return-value]

    # ------------------------------------------------------------------
    # Scatter pipelines (bulk writes ride handle_batch per shard)
    # ------------------------------------------------------------------

    def set_many(self, items: "list[tuple[bytes, bytes]]") -> int:
        """Store ``(key, value)`` pairs via one pipeline per owning shard.

        Returns the number of successfully stored items. Each shard parses
        its whole sub-pipeline in a single domain entry (``handle_batch``),
        so bulk loads pay one activation record per shard.
        """
        by_shard: "dict[str, list[bytes]]" = {}
        for key, value in items:
            name = self._shard_name_for(key)
            by_shard.setdefault(name, []).append(
                b"set %s 0 0 %d\r\n%s\r\n" % (key, len(value), value)
            )
        stored = 0
        for name, raws in by_shard.items():
            shard = self.shards[name]
            if shard.is_down:
                continue
            for response in shard.handle_batch(raws):
                if response == b"STORED\r\n":
                    stored += 1
        return stored

    # ------------------------------------------------------------------
    # Host-time accounting (bench support)
    # ------------------------------------------------------------------

    def reset_host_time(self) -> None:
        self.host_serial_s = 0.0
        self.host_critical_s = 0.0
        self.host_parallel_total_s = 0.0

    def host_time_snapshot(self) -> "dict[str, float]":
        """Serial vs parallel host CPU split since the last reset.

        ``makespan`` is the fleet's critical path: the balancer's serial
        work plus, per scatter round, the slowest shard's share — what a
        wall clock would read if the shards were real parallel nodes.
        """
        return {
            "serial_s": self.host_serial_s,
            "critical_s": self.host_critical_s,
            "parallel_total_s": self.host_parallel_total_s,
            "makespan_s": self.host_serial_s + self.host_critical_s,
        }

    # ------------------------------------------------------------------

    def total_items(self) -> int:
        return sum(shard.store.item_count for shard in self.shards.values())

    def availability(self) -> float:
        """Fraction of front-end ops fully served so far."""
        if not self.metrics.ops:
            return 1.0
        return self.metrics.served / self.metrics.ops
