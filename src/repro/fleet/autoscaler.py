"""Arrival-driven autoscaler: size the fleet against a target p99.

The autoscaler closes the loop between the open-loop arrival process and
the shard count. Each evaluation window it sees three facts — observed
arrival rate, observed mean service time, and the window's p99 latency —
and makes the classic capacity calculation:

* **demand**: ``rate x mean_service`` is the offered work in busy
  shard-seconds per second; dividing by ``utilization_target`` converts it
  into the shard count that keeps per-shard utilisation at the knee of
  the latency curve rather than past it.
* **SLO check**: if the window's p99 exceeds ``target_p99`` the fleet is
  already past the knee regardless of what the demand estimate says, so
  scale up by one.
* **hysteresis**: scale down only when *both* the demand estimate says the
  fleet is over-provisioned by more than one shard *and* p99 sits under
  ``scale_down_fraction`` of target; a ``cooldown`` gap between actions
  prevents flapping on a noisy window.

Decisions are pure functions of the window observations, so a seeded run
autoscales identically every time.
"""

from __future__ import annotations

import math
from dataclasses import dataclass


@dataclass
class AutoscalerConfig:
    """Scaling policy knobs."""

    #: The SLO the fleet is sized against (virtual seconds).
    target_p99: float = 2e-4
    min_shards: int = 1
    max_shards: int = 16
    #: Per-shard utilisation the demand estimate aims for.
    utilization_target: float = 0.6
    #: Scale down only while p99 is below this fraction of target.
    scale_down_fraction: float = 0.5
    #: Minimum virtual seconds between scaling actions.
    cooldown: float = 2.0

    def __post_init__(self) -> None:
        if self.target_p99 <= 0:
            raise ValueError(f"target p99 must be positive, got {self.target_p99}")
        if not 1 <= self.min_shards <= self.max_shards:
            raise ValueError(
                f"need 1 <= min_shards <= max_shards, got "
                f"{self.min_shards}..{self.max_shards}"
            )
        if not 0.0 < self.utilization_target <= 1.0:
            raise ValueError(
                f"utilisation target must be in (0, 1], got "
                f"{self.utilization_target}"
            )
        if not 0.0 < self.scale_down_fraction < 1.0:
            raise ValueError(
                f"scale-down fraction must be in (0, 1), got "
                f"{self.scale_down_fraction}"
            )
        if self.cooldown < 0:
            raise ValueError(f"cooldown cannot be negative, got {self.cooldown}")


class Autoscaler:
    """Pure decision engine: window observations in, shard delta out."""

    def __init__(self, config: "AutoscalerConfig" = None) -> None:  # type: ignore[assignment]
        self.config = config if config is not None else AutoscalerConfig()
        self._last_action = float("-inf")
        self.decisions: "list[tuple[float, int, int]]" = []

    def required_shards(self, arrival_rate: float, mean_service: float) -> int:
        """Shard count that keeps utilisation at the configured target."""
        if arrival_rate <= 0 or mean_service <= 0:
            return self.config.min_shards
        demand = arrival_rate * mean_service / self.config.utilization_target
        return max(
            self.config.min_shards,
            min(self.config.max_shards, math.ceil(demand)),
        )

    def evaluate(
        self,
        now: float,
        shard_count: int,
        arrival_rate: float,
        mean_service: float,
        window_p99: float,
    ) -> int:
        """Return the shard delta (+1, -1 or 0) for this window."""
        cfg = self.config
        if now - self._last_action < cfg.cooldown:
            return 0
        required = self.required_shards(arrival_rate, mean_service)
        delta = 0
        if shard_count < cfg.max_shards and (
            window_p99 > cfg.target_p99 or required > shard_count
        ):
            delta = 1
        elif (
            shard_count > cfg.min_shards
            and required < shard_count - 1
            and window_p99 < cfg.target_p99 * cfg.scale_down_fraction
        ):
            delta = -1
        if delta:
            self._last_action = now
            self.decisions.append((now, shard_count, delta))
        return delta
