"""Shard health checks, failover, and rejoin for the fleet.

Two detection paths feed the same failover decision, as in production
balancers:

* **In-band** — every routed request reports its outcome; a run of
  ``failure_threshold`` consecutive failures on one shard (dead node,
  watchdog-quarantined fleet connection, repeated parse faults) fails the
  shard out of the ring immediately, so detection latency under load is a
  handful of requests, not a probe interval.
* **Out-of-band** — :meth:`HealthMonitor.tick` probes every shard at
  ``probe_interval``; a shard that is down or quarantined while traffic is
  idle is still caught, and a *recovered* shard (restarted process,
  expired quarantine) is rejoined — reclaiming exactly the ranges it held
  before, by the consistent ring's minimal-disruption property.

Failover removes only the failed shard's vnodes, so surviving shards keep
every key they owned (tested); the failed shard's ranges spill to their
ring successors and refill on demand (cache semantics).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from .balancer import Fleet


@dataclass
class HealthConfig:
    """Failover policy knobs."""

    #: Consecutive in-band failures on one shard before failover.
    failure_threshold: int = 3
    #: Seconds between out-of-band probe sweeps.
    probe_interval: float = 0.5

    def __post_init__(self) -> None:
        if self.failure_threshold < 1:
            raise ValueError(
                f"failure threshold must be >= 1, got {self.failure_threshold}"
            )
        if self.probe_interval <= 0:
            raise ValueError(
                f"probe interval must be positive, got {self.probe_interval}"
            )


class HealthMonitor:
    """Tracks per-shard outcomes and drives failover/rejoin on the fleet."""

    def __init__(self, fleet: "Fleet", config: "HealthConfig" = None) -> None:  # type: ignore[assignment]
        self.fleet = fleet
        self.config = config if config is not None else HealthConfig()
        self._consecutive_failures: "dict[str, int]" = {}
        self._last_sweep = float("-inf")
        fleet.health = self

    # ------------------------------------------------------------------
    # In-band outcomes (reported by the front-end per routed request)
    # ------------------------------------------------------------------

    def on_success(self, name: str) -> None:
        self._consecutive_failures[name] = 0

    def on_failure(self, name: str) -> None:
        count = self._consecutive_failures.get(name, 0) + 1
        self._consecutive_failures[name] = count
        if count >= self.config.failure_threshold:
            self._consecutive_failures[name] = 0
            self.fleet.fail_over(name)

    # ------------------------------------------------------------------
    # Out-of-band probes
    # ------------------------------------------------------------------

    def tick(self, now: float) -> None:
        """Run a probe sweep if ``probe_interval`` has elapsed."""
        if now - self._last_sweep < self.config.probe_interval:
            return
        self._last_sweep = now
        fleet = self.fleet
        for name, shard in fleet.shards.items():
            healthy = not shard.is_down and not shard.is_quarantined
            if healthy and name not in fleet.ring:
                fleet.rejoin(name)
                self._consecutive_failures[name] = 0
            elif not healthy and name in fleet.ring:
                fleet.fail_over(name)
