"""Consistent-hash sharded fleet: scatter-gather serving at user scale.

The fleet subsystem scales the single-node memcached simulation out to N
shards behind a load-balancing front-end:

* :mod:`~repro.fleet.ring` — consistent-hash ring with virtual nodes;
  deterministic placement, minimal movement on membership change.
* :mod:`~repro.fleet.shard` — one shard node: private
  :class:`~repro.sdrad.runtime.SdradRuntime` + KVStore + memcached server
  behind a single multiplexed front-end connection.
* :mod:`~repro.fleet.balancer` — the front-end: ring-routed single-key
  ops and scatter-gather multigets (one activation record per shard).
* :mod:`~repro.fleet.health` — health checks, failover, rejoin.
* :mod:`~repro.fleet.autoscaler` — arrival-driven scaling against a
  target p99.
* :mod:`~repro.fleet.driver` — seeded end-to-end runs reporting latency
  percentiles, availability, and the sustainability ledger.
"""

from .autoscaler import Autoscaler, AutoscalerConfig
from .balancer import Fleet, FleetMetrics
from .driver import FleetRunConfig, FleetRunReport, run_fleet
from .health import HealthConfig, HealthMonitor
from .ring import DEFAULT_VNODES, HashRing
from .shard import FRONTEND_CLIENT, Shard, ShardState

__all__ = [
    "Autoscaler",
    "AutoscalerConfig",
    "DEFAULT_VNODES",
    "FRONTEND_CLIENT",
    "Fleet",
    "FleetMetrics",
    "FleetRunConfig",
    "FleetRunReport",
    "HashRing",
    "HealthConfig",
    "HealthMonitor",
    "Shard",
    "ShardState",
    "run_fleet",
]
