# Convenience targets for the SDRaD reproduction.

.PHONY: install test bench tables examples all

install:
	pip install -e . --no-build-isolation || python setup.py develop

test:
	pytest tests/

bench:
	pytest benchmarks/ --benchmark-only

tables:
	pytest benchmarks/ -s --benchmark-disable

examples:
	@for f in examples/*.py; do echo "== $$f =="; python $$f; done

all: install test bench
