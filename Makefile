# Convenience targets for the SDRaD reproduction.

.PHONY: install test bench bench-fast bench-obs bench-plans bench-fleet bench-backends bench-campaign campaign profile tables examples lint lint-domains lint-fixtures all

install:
	pip install -e . --no-build-isolation || python setup.py develop

test:
	pytest tests/

bench:
	pytest benchmarks/ --benchmark-only

# Wall-clock harness for the simulation itself (TLB fast path, access
# plans, re-entry cache, request batching, kvstore/memcached end-to-end,
# observability overhead, fleet scatter-gather scaling, isolation-backend
# substrates). Writes BENCH_PR10.json; fails on >25% drop in a within-file
# speedup ratio vs. the previous BENCH_*.json (ordered by schema, then PR
# number) — ratios, because each file is recorded on a different VM — and
# on a miss of the absolute targets (plans >= 10x, batched pipeline >= 3x
# baseline, obs overhead <= 1.05x, 8-shard multiget >= 3x single-shard,
# mpk backend >= 0.75x the default spelling).
bench-fast:
	PYTHONPATH=src python scripts/bench.py --out BENCH_PR10.json
	python scripts/check_bench_regression.py

# Just the observability-overhead bench plus the regression gate: proves
# the obs=None fast path keeps memcached_e2e throughput (the acceptance
# criterion for the obs subsystem) without re-running the full harness.
bench-obs:
	PYTHONPATH=src python scripts/bench.py --out BENCH_PR10.json \
		--only memcached_e2e,memcached_obs
	python scripts/check_bench_regression.py

# Just the access-plan tentpole benches: the compiled-plan speedup and the
# end-to-end pipeline it feeds, with the absolute targets enforced.
bench-plans:
	PYTHONPATH=src python scripts/bench.py --out BENCH_PR10.json \
		--only raw_access,access_plans,memcached_e2e
	python scripts/check_bench_regression.py

# The PR 7 tentpole bench: 1-vs-8-shard scatter-gather multiget scaling
# plus the seeded end-to-end fleet run (arrivals, failover, ledger), with
# the >= 3x absolute gate enforced.
bench-fleet:
	PYTHONPATH=src python scripts/bench.py --out BENCH_PR10.json \
		--only fleet
	python scripts/check_bench_regression.py

# The PR 8 tentpole bench: the memcached E1 serving mix on each isolation
# substrate (default/mpk/cheri/sfi), with the mpk-vs-default parity gate
# (>= 0.75x) enforced.
bench-backends:
	PYTHONPATH=src python scripts/bench.py --out BENCH_PR10.json \
		--only backends
	python scripts/check_bench_regression.py

# The PR 10 campaign bench: stratified sampling throughput plus one tiny
# seeded closed loop — informational (no absolute gate; correctness is
# pinned by the campaign-smoke golden fixture in CI).
bench-campaign:
	PYTHONPATH=src python scripts/bench.py --out BENCH_PR10.json \
		--only campaign
	python scripts/check_bench_regression.py

# The PR 10 closed loop at defaults: stratified Clopper–Pearson sampling
# over fault class x domain x phase x backend, factorial model fit,
# carbon-aware policy recommendation, and re-measured validation.
campaign:
	PYTHONPATH=src python -m repro campaign

# cProfile the hot request paths; prints the top-20 cumulative hotspots.
profile:
	PYTHONPATH=src python scripts/profile.py

tables:
	pytest benchmarks/ -s --benchmark-disable

examples:
	@for f in examples/*.py; do echo "== $$f =="; python $$f; done

# sdradlint: whole-program static verification of the SDRaD compartment
# invariants (R1 enter/exit pairing, R2 domain-heap escape, R3
# rewind-unsafe side effects, R4 unguarded WRPKRU gadgets, R5
# interprocedural heap escape, R6 MPK-only idioms outside capability
# guards, R7 FFI boundary contract). Exit 1 on any new finding. Uses the
# incremental summary cache (.sdradlint.cache.json); pass flags through
# scripts/lint_domains.py for --no-cache / --changed-only / --format sarif.
lint-domains:
	python scripts/lint_domains.py

# The linter's own test matrix: planted-violation and near-miss fixtures
# for every rule (exact rule+line markers), call-graph/SCC-summary unit
# tests, cache byte-identity tests, and the SARIF golden file.
lint-fixtures:
	PYTHONPATH=src python -m pytest -q \
		tests/test_analysis_fixtures.py \
		tests/test_analysis_callgraph.py \
		tests/test_analysis_cache.py

# General hygiene (ruff + mypy, configured in pyproject.toml). Both are
# optional: the targets skip with a notice when the tool is not in the
# container, so `make lint` never fails on a missing dependency — only
# on actual diagnostics. sdradlint always runs.
lint: lint-domains
	@command -v ruff >/dev/null 2>&1 \
		&& ruff check src/repro scripts tests \
		|| echo "lint: ruff not installed, skipping"
	@command -v mypy >/dev/null 2>&1 \
		&& mypy src/repro \
		|| echo "lint: mypy not installed, skipping"

all: install test bench
