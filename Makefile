# Convenience targets for the SDRaD reproduction.

.PHONY: install test bench bench-fast profile tables examples all

install:
	pip install -e . --no-build-isolation || python setup.py develop

test:
	pytest tests/

bench:
	pytest benchmarks/ --benchmark-only

# Wall-clock harness for the simulation itself (TLB fast path, re-entry
# cache, request batching, kvstore/memcached end-to-end). Writes
# BENCH_PR2.json and fails on >20% regression against the previous
# BENCH_*.json (ordered by schema, then PR number).
bench-fast:
	PYTHONPATH=src python scripts/bench.py --out BENCH_PR2.json
	python scripts/check_bench_regression.py

# cProfile the hot request paths; prints the top-20 cumulative hotspots.
profile:
	PYTHONPATH=src python scripts/profile.py

tables:
	pytest benchmarks/ -s --benchmark-disable

examples:
	@for f in examples/*.py; do echo "== $$f =="; python $$f; done

all: install test bench
