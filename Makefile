# Convenience targets for the SDRaD reproduction.

.PHONY: install test bench bench-fast tables examples all

install:
	pip install -e . --no-build-isolation || python setup.py develop

test:
	pytest tests/

bench:
	pytest benchmarks/ --benchmark-only

# Wall-clock harness for the simulation itself (TLB fast path, lazy scrub,
# kvstore end-to-end). Writes BENCH_PR1.json and fails on >20% regression
# against the previous BENCH_*.json.
bench-fast:
	PYTHONPATH=src python scripts/bench.py --out BENCH_PR1.json
	python scripts/check_bench_regression.py

tables:
	pytest benchmarks/ -s --benchmark-disable

examples:
	@for f in examples/*.py; do echo "== $$f =="; python $$f; done

all: install test bench
