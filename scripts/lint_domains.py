#!/usr/bin/env python
"""CI entry point for sdradlint, the SDRaD compartment linter.

Thin wrapper so the gate works from any checkout layout without an
installed package: it pins ``src/`` onto ``sys.path`` relative to this
file and chdirs to the repo root so reported paths (and the default
baseline location) are repo-relative. All CLI flags are forwarded to
``repro.analysis.__main__``::

    python scripts/lint_domains.py [paths] [--json] [--rules R1,R4] ...

Exit codes: 0 clean, 1 new findings, 2 parse/usage errors.
"""

import os
import sys

REPO_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
sys.path.insert(0, os.path.join(REPO_ROOT, "src"))

from repro.analysis.__main__ import main  # noqa: E402

if __name__ == "__main__":
    os.chdir(REPO_ROOT)
    raise SystemExit(main())
