#!/usr/bin/env python
"""Fail if the current bench results regressed vs. the previous PR's.

Compares the tracked throughput metrics in the newest ``BENCH_*.json``
against the previous one (lexicographic order — the files are named
``BENCH_PR<N>.json``, zero history is fine). A metric that dropped by more
than the threshold (default 20%) fails the check; improvements and new
metrics pass. Wall-clock numbers are noisy, hence the generous threshold —
this is a guard against accidentally reverting the fast path, not a
micro-benchmark gate.

Usage::

    python scripts/check_bench_regression.py [--dir .] [--threshold 0.20]
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path

#: (bench, path-within-bench) pairs whose ops/sec we track across PRs.
TRACKED = [
    ("raw_access", ("tlb_on", "ops_per_sec")),
    ("domain_switch", ("ops_per_sec",)),
    ("fault_rewind", ("lazy", "ops_per_sec")),
    ("kvstore_e2e", ("tlb_on", "ops_per_sec")),
]


def _dig(data: dict, path: tuple) -> float | None:
    node = data
    for key in path:
        if not isinstance(node, dict) or key not in node:
            return None
        node = node[key]
    return float(node) if isinstance(node, (int, float)) else None


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--dir", default=".", help="where the BENCH_*.json files live")
    parser.add_argument(
        "--threshold",
        type=float,
        default=0.20,
        help="max allowed fractional drop (default 0.20 = 20%%)",
    )
    args = parser.parse_args()

    files = sorted(Path(args.dir).glob("BENCH_*.json"))
    if not files:
        print("no BENCH_*.json files found — nothing to check")
        return 1
    current = files[-1]
    cur = json.loads(current.read_text())["benches"]
    if len(files) == 1:
        print(f"{current.name}: first benchmark file, no baseline to compare")
        return 0
    previous = files[-2]
    prev = json.loads(previous.read_text())["benches"]

    print(f"comparing {current.name} against {previous.name}")
    failed = False
    for bench, path in TRACKED:
        label = ".".join((bench,) + path[:-1]) or bench
        new = _dig(cur.get(bench, {}), path)
        old = _dig(prev.get(bench, {}), path)
        if new is None:
            print(f"  {label:28s} MISSING in {current.name}")
            failed = True
            continue
        if old is None:
            print(f"  {label:28s} {new:>14,.0f} ops/s  (new metric)")
            continue
        change = (new - old) / old
        status = "ok"
        if change < -args.threshold:
            status = f"REGRESSION (>{args.threshold:.0%} drop)"
            failed = True
        print(
            f"  {label:28s} {new:>14,.0f} ops/s  vs {old:>14,.0f}"
            f"  ({change:+.1%})  {status}"
        )
    if failed:
        print("bench regression check FAILED")
        return 1
    print("bench regression check passed")
    return 0


if __name__ == "__main__":
    sys.exit(main())
