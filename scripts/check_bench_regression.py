#!/usr/bin/env python
"""Fail if the current bench results regressed vs. the previous PR's.

Orders the ``BENCH_*.json`` files by their declared ``schema`` (and, for
ties, by the PR number embedded in the filename — NOT by lexicographic
filename sort, which would put ``BENCH_PR10`` before ``BENCH_PR2``), then
compares the newest file against the one before it. Only metrics present
in BOTH files are compared: a metric added by the newer schema is reported
as new, a metric the newer harness no longer emits is reported as retired,
and neither fails the check.

The *gate* (what can fail the check) is the set of within-file speedup
RATIOS — TLB on/off, lazy/eager rewind, batched vs. fast-path-off, re-entry
cache on/off. Each BENCH file is recorded on whatever VM the PR happened to
run on, and those VMs differ by 25%+ in absolute wall-clock throughput, so
comparing raw ops/sec across files mostly measures the hardware lottery. A
ratio taken between two measurements from the SAME file cancels the machine
out, and it is exactly what this gate exists to protect: accidentally
reverting a fast path drags its speedup toward 1.0x no matter how fast the
VM is. A ratio that dropped by more than the threshold (default 25%) fails.
The threshold is generous because even ratios drift with the host CPU —
the same commit measures the end-to-end TLB speedup anywhere from ~1.1x to
~1.4x depending on the recording VM's microarchitecture — while genuinely
reverting one of the big fast paths collapses its ratio by 30-70%. Absolute
ops/sec for the headline metrics are still printed for context, but they
inform rather than gate.

The newest file is additionally held to the absolute targets
(``ABSOLUTE_GATES``): compiled access plans >= 10x the plan-off path, the
batched pipeline >= 3x the fully-unoptimised within-file baseline, full
observability <= 1.05x wall clock on the serving pipeline, and (PR 7)
8-shard scatter-gather multiget >= 3x single-shard serving of the same
keys. These are within-file ratios checked against fixed
floors/ceilings, so they stay machine-independent while pinning the
contract each PR claims.

Usage::

    python scripts/check_bench_regression.py [--dir .] [--threshold 0.25]
"""

from __future__ import annotations

import argparse
import json
import re
import sys
from pathlib import Path

#: (bench, path-within-bench) pairs of within-file speedup ratios. These are
#: machine-independent, so a drop is a real fast-path regression: they GATE.
TRACKED_RATIOS = [
    ("raw_access", ("speedup",)),
    ("access_plans", ("speedup",)),
    ("fault_rewind", ("speedup",)),
    ("kvstore_e2e", ("speedup",)),
    ("memcached_e2e", ("batched_speedup",)),
    ("memcached_e2e", ("speedup_vs_fastpath_off",)),
    ("memcached_e2e", ("speedup_vs_baseline",)),
    ("domain_reentry", ("speedup",)),
    ("fleet", ("multiget_speedup_8x1",)),
]

#: (bench, path, op, limit) absolute targets checked on the NEWEST file only
#: — the PR 6 performance contract. These are within-file ratios too, so
#: they are machine-independent; unlike TRACKED_RATIOS they compare against
#: a fixed floor/ceiling instead of the previous file, and they skip
#: silently when the newest file predates the metric. ``memcached_obs``
#: ``overhead_full`` is deliberately NOT drop-gated above: it is a <=
#: ceiling (lower is better), so a "drop" toward 1.0 is an improvement.
ABSOLUTE_GATES = [
    ("access_plans", ("speedup",), ">=", 10.0),
    ("memcached_e2e", ("speedup_vs_baseline",), ">=", 3.0),
    ("memcached_obs", ("overhead_full",), "<=", 1.05),
    # PR 7: scatter-gather multiget over 8 shards must beat single-shard
    # serving of the same key sequences by >= 3x on the critical path.
    ("fleet", ("multiget_speedup_8x1",), ">=", 3.0),
    # PR 8: the explicit mpk backend spelling must stay within 25% of the
    # default — the pluggable-substrate indirection cannot tax the path
    # every earlier PR's ratios were recorded on.
    ("backends", ("mpk_vs_default",), ">=", 0.75),
]

#: (bench, path-within-bench) pairs of absolute ops/sec we print for context.
#: These depend on the VM each file was recorded on: they INFORM, never fail.
TRACKED_INFO = [
    ("raw_access", ("tlb_on", "ops_per_sec")),
    ("domain_switch", ("ops_per_sec",)),
    ("fault_rewind", ("lazy", "ops_per_sec")),
    ("kvstore_e2e", ("tlb_on", "ops_per_sec")),
    ("memcached_e2e", ("per_connection", "ops_per_sec")),
    ("memcached_e2e", ("batched", "ops_per_sec")),
    ("memcached_e2e", ("fastpath_off", "ops_per_sec")),
    ("domain_reentry", ("reentry_on", "ops_per_sec")),
    ("memcached_obs", ("obs_off", "ops_per_sec")),
    ("access_plans", ("plan_on", "ops_per_sec")),
    ("memcached_e2e", ("baseline", "ops_per_sec")),
    ("fleet", ("fleet_8shard", "keys_per_sec")),
    ("fleet", ("fleet_1shard", "keys_per_sec")),
    ("backends", ("mpk", "ops_per_sec")),
    ("backends", ("cheri", "ops_per_sec")),
    ("backends", ("sfi", "ops_per_sec")),
    # PR 10: stratified campaign sampling throughput — informational only;
    # the campaign's correctness is gated by the seeded golden fixture in
    # CI (campaign-smoke), not by wall clock.
    ("campaign", ("sampling", "ops_per_sec")),
]


def _dig(data: dict, path: tuple) -> float | None:
    node = data
    for key in path:
        if not isinstance(node, dict) or key not in node:
            return None
        node = node[key]
    return float(node) if isinstance(node, (int, float)) else None


def _order_key(entry: tuple[Path, dict]) -> tuple[int, int, str]:
    """Sort key: schema first (commit order), then embedded PR number.

    ``BENCH_PR10.json`` must sort after ``BENCH_PR2.json`` even though it
    sorts before it lexicographically, and a file whose schema says it is
    newer wins regardless of its name.
    """
    path, data = entry
    schema = data.get("schema")
    schema = schema if isinstance(schema, int) else 0
    match = re.search(r"(\d+)", path.stem)
    number = int(match.group(1)) if match else 0
    return (schema, number, path.name)


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--dir", default=".", help="where the BENCH_*.json files live")
    parser.add_argument(
        "--threshold",
        type=float,
        default=0.25,
        help="max allowed fractional drop (default 0.25 = 25%%)",
    )
    args = parser.parse_args()

    entries = []
    for path in Path(args.dir).glob("BENCH_*.json"):
        try:
            data = json.loads(path.read_text())
        except (OSError, ValueError) as exc:
            print(f"{path.name}: unreadable ({exc}) — skipping")
            continue
        if isinstance(data, dict) and isinstance(data.get("benches"), dict):
            entries.append((path, data))
        else:
            print(f"{path.name}: no 'benches' section — skipping")
    if not entries:
        print("no usable BENCH_*.json files found — nothing to check")
        return 1
    entries.sort(key=_order_key)
    current_path, current_data = entries[-1]
    if len(entries) == 1:
        print(f"{current_path.name}: first benchmark file, no baseline to compare")
        return 0
    previous_path, previous_data = entries[-2]
    cur = current_data["benches"]
    prev = previous_data["benches"]

    print(f"comparing {current_path.name} against {previous_path.name}")
    failed = False
    print("speedup ratios (machine-independent — these gate):")
    for bench, path in TRACKED_RATIOS:
        label = ".".join((bench,) + path)
        new = _dig(cur.get(bench, {}), path)
        old = _dig(prev.get(bench, {}), path)
        if new is None and old is None:
            continue  # tracked but emitted by neither file
        if old is None:
            print(f"  {label:36s} {new:>8.2f}x  (new metric)")
            continue
        if new is None:
            print(f"  {label:36s} retired (was {old:.2f}x)")
            continue
        change = (new - old) / old
        status = "ok"
        if change < -args.threshold:
            status = f"REGRESSION (>{args.threshold:.0%} drop)"
            failed = True
        print(
            f"  {label:36s} {new:>8.2f}x  vs {old:>6.2f}x"
            f"  ({change:+.1%})  {status}"
        )
    print("absolute targets (PR 6 contract, newest file only — these gate):")
    for bench, path, op, limit in ABSOLUTE_GATES:
        label = ".".join((bench,) + path)
        value = _dig(cur.get(bench, {}), path)
        if value is None:
            print(f"  {label:36s} absent (metric predates this file) — skipped")
            continue
        ok = value >= limit if op == ">=" else value <= limit
        status = "ok" if ok else f"FAILED (target {op} {limit}x)"
        if not ok:
            failed = True
        print(f"  {label:36s} {value:>8.2f}x  target {op} {limit}x  {status}")
    print("absolute throughput (depends on the recording VM — informational):")
    for bench, path in TRACKED_INFO:
        label = ".".join((bench,) + path[:-1]) or bench
        new = _dig(cur.get(bench, {}), path)
        old = _dig(prev.get(bench, {}), path)
        if new is None and old is None:
            continue
        if old is None:
            print(f"  {label:36s} {new:>14,.0f} ops/s  (new metric)")
            continue
        if new is None:
            print(f"  {label:36s} retired (was {old:,.0f} ops/s)")
            continue
        change = (new - old) / old
        print(
            f"  {label:36s} {new:>14,.0f} ops/s  vs {old:>14,.0f}"
            f"  ({change:+.1%})"
        )
    if failed:
        print("bench regression check FAILED")
        return 1
    print("bench regression check passed")
    return 0


if __name__ == "__main__":
    sys.exit(main())
