#!/usr/bin/env python
"""Fail if the current bench results regressed vs. the previous PR's.

Orders the ``BENCH_*.json`` files by their declared ``schema`` (and, for
ties, by the PR number embedded in the filename — NOT by lexicographic
filename sort, which would put ``BENCH_PR10`` before ``BENCH_PR2``), then
compares the newest file against the one before it. Only metrics present
in BOTH files are compared: a metric added by the newer schema is reported
as new, a metric the newer harness no longer emits is reported as retired,
and neither fails the check. A shared metric that dropped by more than the
threshold (default 20%) fails. Wall-clock numbers are noisy, hence the
generous threshold — this is a guard against accidentally reverting a fast
path, not a micro-benchmark gate.

Usage::

    python scripts/check_bench_regression.py [--dir .] [--threshold 0.20]
"""

from __future__ import annotations

import argparse
import json
import re
import sys
from pathlib import Path

#: (bench, path-within-bench) pairs whose ops/sec we track across PRs.
TRACKED = [
    ("raw_access", ("tlb_on", "ops_per_sec")),
    ("domain_switch", ("ops_per_sec",)),
    ("fault_rewind", ("lazy", "ops_per_sec")),
    ("kvstore_e2e", ("tlb_on", "ops_per_sec")),
    ("memcached_e2e", ("per_connection", "ops_per_sec")),
    ("memcached_e2e", ("batched", "ops_per_sec")),
    ("memcached_e2e", ("fastpath_off", "ops_per_sec")),
    ("domain_reentry", ("reentry_on", "ops_per_sec")),
]


def _dig(data: dict, path: tuple) -> float | None:
    node = data
    for key in path:
        if not isinstance(node, dict) or key not in node:
            return None
        node = node[key]
    return float(node) if isinstance(node, (int, float)) else None


def _order_key(entry: tuple[Path, dict]) -> tuple[int, int, str]:
    """Sort key: schema first (commit order), then embedded PR number.

    ``BENCH_PR10.json`` must sort after ``BENCH_PR2.json`` even though it
    sorts before it lexicographically, and a file whose schema says it is
    newer wins regardless of its name.
    """
    path, data = entry
    schema = data.get("schema")
    schema = schema if isinstance(schema, int) else 0
    match = re.search(r"(\d+)", path.stem)
    number = int(match.group(1)) if match else 0
    return (schema, number, path.name)


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--dir", default=".", help="where the BENCH_*.json files live")
    parser.add_argument(
        "--threshold",
        type=float,
        default=0.20,
        help="max allowed fractional drop (default 0.20 = 20%%)",
    )
    args = parser.parse_args()

    entries = []
    for path in Path(args.dir).glob("BENCH_*.json"):
        try:
            data = json.loads(path.read_text())
        except (OSError, ValueError) as exc:
            print(f"{path.name}: unreadable ({exc}) — skipping")
            continue
        if isinstance(data, dict) and isinstance(data.get("benches"), dict):
            entries.append((path, data))
        else:
            print(f"{path.name}: no 'benches' section — skipping")
    if not entries:
        print("no usable BENCH_*.json files found — nothing to check")
        return 1
    entries.sort(key=_order_key)
    current_path, current_data = entries[-1]
    if len(entries) == 1:
        print(f"{current_path.name}: first benchmark file, no baseline to compare")
        return 0
    previous_path, previous_data = entries[-2]
    cur = current_data["benches"]
    prev = previous_data["benches"]

    print(f"comparing {current_path.name} against {previous_path.name}")
    failed = False
    for bench, path in TRACKED:
        label = ".".join((bench,) + path[:-1]) or bench
        new = _dig(cur.get(bench, {}), path)
        old = _dig(prev.get(bench, {}), path)
        if new is None and old is None:
            continue  # tracked but emitted by neither file
        if old is None:
            print(f"  {label:28s} {new:>14,.0f} ops/s  (new metric)")
            continue
        if new is None:
            print(f"  {label:28s} retired (was {old:,.0f} ops/s)")
            continue
        change = (new - old) / old
        status = "ok"
        if change < -args.threshold:
            status = f"REGRESSION (>{args.threshold:.0%} drop)"
            failed = True
        print(
            f"  {label:28s} {new:>14,.0f} ops/s  vs {old:>14,.0f}"
            f"  ({change:+.1%})  {status}"
        )
    if failed:
        print("bench regression check FAILED")
        return 1
    print("bench regression check passed")
    return 0


if __name__ == "__main__":
    sys.exit(main())
