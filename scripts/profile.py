#!/usr/bin/env python
"""cProfile the end-to-end hot paths and print the top hotspots.

Profiles the same loops ``scripts/bench.py`` measures — the Memcached
retrofit end-to-end (per-connection isolation, set/get mix through the
unsafe parser) and the bare domain enter/exit cycle — and prints the
top-N functions by *cumulative* time. This is where every perf PR should
start: the wall-clock bottleneck moves as fast paths land (PR 1 moved it
from permission checks into domain entry/exit and the parsers), and the
profile is the evidence of where it sits now.

Usage::

    PYTHONPATH=src python scripts/profile.py [--requests 20000] [--top 20]
        [--bench kvstore_e2e|domain_reentry|both] [--batched]
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path

# This file is named profile.py, which would shadow the stdlib ``profile``
# module cProfile imports — drop the scripts/ dir from the import path
# before importing cProfile.
_HERE = Path(__file__).resolve().parent
sys.path[:] = [p for p in sys.path if Path(p or ".").resolve() != _HERE]
sys.path.insert(0, str(_HERE.parent / "src"))

import cProfile  # noqa: E402
import pstats  # noqa: E402

from repro.apps.memcached_server import IsolationMode, MemcachedServer
from repro.sdrad.constants import DomainFlags
from repro.sdrad.runtime import SdradRuntime


def _memcached_requests() -> list[bytes]:
    requests = []
    for i in range(16):
        value = b"v" * 64
        requests.append(b"set key%d 0 0 %d\r\n%s\r\n" % (i, len(value), value))
        requests.append(b"get key%d\r\n" % i)
    return requests


def profile_kvstore_e2e(n_requests: int, batched: bool) -> cProfile.Profile:
    runtime = SdradRuntime()
    server = MemcachedServer(runtime, isolation=IsolationMode.PER_CONNECTION)
    server.connect("profile-client")
    requests = _memcached_requests()

    profiler = cProfile.Profile()
    if batched:
        n_batches = n_requests // len(requests)
        profiler.enable()
        for _ in range(n_batches):
            server.handle_batch("profile-client", requests)
        profiler.disable()
    else:
        profiler.enable()
        for i in range(n_requests):
            server.handle("profile-client", requests[i % len(requests)])
        profiler.disable()
    return profiler


def profile_domain_reentry(n_entries: int) -> cProfile.Profile:
    runtime = SdradRuntime()
    domain = runtime.domain_init(flags=DomainFlags.RETURN_TO_PARENT)

    def body(handle):
        return None

    profiler = cProfile.Profile()
    profiler.enable()
    for _ in range(n_entries):
        runtime.execute(domain.udi, body)
    profiler.disable()
    return profiler


def report(profiler: cProfile.Profile, title: str, top: int) -> None:
    print(f"\n=== {title}: top {top} by cumulative time ===")
    stats = pstats.Stats(profiler, stream=sys.stdout)
    stats.strip_dirs().sort_stats("cumulative").print_stats(top)


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--requests", type=int, default=20000)
    parser.add_argument("--top", type=int, default=20)
    parser.add_argument(
        "--bench",
        choices=("kvstore_e2e", "domain_reentry", "both"),
        default="both",
    )
    parser.add_argument(
        "--batched",
        action="store_true",
        help="profile the pipelined (handle_batch) request path",
    )
    args = parser.parse_args()

    if args.bench in ("kvstore_e2e", "both"):
        label = "memcached/kvstore e2e" + (" (batched)" if args.batched else "")
        report(
            profile_kvstore_e2e(args.requests, args.batched), label, args.top
        )
    if args.bench in ("domain_reentry", "both"):
        report(
            profile_domain_reentry(args.requests),
            "domain enter/exit cycle",
            args.top,
        )
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
